//! The experiment harness: dumbbell + senders + receivers → metrics.
//!
//! Every congestion experiment in the paper is an instance of the same
//! shape — N on/off senders over the Figure 1 dumbbell, measured for
//! throughput (over on-times), bottleneck queueing delay, and loss — so
//! this module builds that shape once. Callers differ only in how each
//! sender is *provisioned* (which controller factory and which session
//! hook), which is exactly the axis the paper varies: default Cubic,
//! Phi-tuned Cubic, mixed deployments, Remy variants.

use phi_sim::engine::{Agent, BudgetExceeded, RunBudget, SchedStats, Simulator};
use phi_sim::fluid::{FluidFlowPlan, FluidSim};
use phi_sim::packet::{wire, AgentId, FlowId, LinkId, NodeId};
use phi_sim::par::ParallelSimulator;
use phi_sim::queue::{Capacity, DisciplineSpec};
use phi_sim::switch::{SwitchSpec, SwitchStats};
use phi_sim::time::{Dur, Time};
use phi_sim::topology::{dumbbell, Dumbbell, DumbbellSpec};
use phi_tcp::cubic::{steady_state_rate_bps, Cubic, CubicParams};
use phi_tcp::dctcp::{Dctcp, DctcpParams};
use phi_tcp::hook::{DegradingHook, NoHook, SessionHook};
use phi_tcp::receiver::TcpReceiver;
use phi_tcp::report::{FlowReport, RunMetrics};
use phi_tcp::sender::{CcFactory, SenderConfig, TcpSender};
use phi_workload::{FlowSource, IncastConfig, IncastSource, OnOffConfig, OnOffSource, SeedRng};
use serde::{Deserialize, Serialize};

use crate::context::{ContextStore, PathKey, StoreConfig};
use crate::crash::{HaHook, HaPlane, HaPlaneSet, HaReport, HaSpec, ServerCrashPlan};
use crate::hooks::{fault_counters, shared, FaultPlan, FaultyHook, PracticalHook, SharedStore};
use crate::policy::PolicyTable;
use crate::runpool::{derive_seed, RunPool};

/// The path key all senders of one dumbbell share (they all traverse the
/// single bottleneck, per the §2.1 shared-path assumption).
pub const DUMBBELL_PATH: PathKey = PathKey(1);

/// Queueing discipline installed on the bottleneck pair (access links
/// always run drop-tail; hosts never congest them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BottleneckQueue {
    /// Classic drop-tail FIFO — the paper's (and the Internet's) default.
    DropTail,
    /// RED active queue management, for the §3.1 incentives ablation.
    Red,
}

/// Everything that defines one experiment run except sender provisioning.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// The network.
    pub dumbbell: DumbbellSpec,
    /// The on/off workload each sender runs.
    pub workload: OnOffConfig,
    /// Simulated duration.
    pub duration: Dur,
    /// Root seed; run `i` of an n-run experiment uses
    /// [`derive_seed`]`(seed, i)`.
    pub seed: u64,
    /// Duplicate-ACK threshold for all senders.
    pub dupack_threshold: u32,
    /// Context-store configuration for Phi-provisioned senders.
    pub store: StoreConfig,
    /// Bottleneck queueing discipline.
    pub queue: BottleneckQueue,
    /// Replicated context plane with deterministic server-crash
    /// injection, for HA-provisioned senders. `None` (the default, and
    /// what every pre-existing spec deserializes to) runs the classic
    /// single shared store and draws nothing from the crash RNG stream,
    /// so established run digests are untouched.
    #[serde(default)]
    pub ha: Option<HaSpec>,
    /// Flow-level (fluid) fast path. `None` (the default, and what every
    /// pre-existing spec deserializes to) runs the packet-level engine
    /// untouched — the golden trace digests only ever see the packet
    /// path. `Some` routes the run through `phi_sim::fluid` for
    /// 100×–1000× the flow count at the cost of packet realism; see
    /// DESIGN.md §"Hybrid flow-level simulation" for when that trade is
    /// valid.
    #[serde(default)]
    pub fluid: Option<FluidSpec>,
    /// Domain count for the conservative parallel engine. `None` (the
    /// default, and what every pre-existing spec deserializes to) runs
    /// the classic serial engine with its historical FIFO event keys, so
    /// established run digests are untouched. `Some(k)` partitions the
    /// topology into (at most) `k` domains and runs the windowed barrier
    /// protocol; results are bit-identical for every `k`, including
    /// `Some(1)`, but differ from `None` (content-derived event keys
    /// assign different packet ids).
    #[serde(default)]
    pub domains: Option<u32>,
    /// Run budget: hard caps on events, simulated time, and wall-clock
    /// time, for supervised sweeps whose cells must not run away. `None`
    /// (the default, and what every pre-existing spec deserializes to)
    /// runs un-budgeted through the historical pop loop, so established
    /// run digests are untouched. A budget-terminated run returns
    /// partial results with [`RunResult::terminated`] set; supervised
    /// aggregation excludes such cells (see `supervise`).
    #[serde(default)]
    pub budget: Option<RunBudget>,
    /// Shared-buffer switch model installed on *both* aggregation
    /// routers: per-port virtual queues drawing from one pool under
    /// Dynamic-Threshold admission, with optional ECN marking and PFC
    /// (see `phi_sim::switch`). `None` (the default, and what every
    /// pre-existing spec deserializes to) keeps the classic per-link
    /// drop-tail islands and touches no established digest. When set,
    /// each router egress queue is given a byte capacity equal to the
    /// pool, so shared-pool admission — not the inner FIFO — is the
    /// binding drop decision.
    #[serde(default)]
    pub switch: Option<SwitchSpec>,
    /// Incast workload override: each sender becomes one fan-in worker
    /// sending fixed blocks in synchronized rounds toward its receiver
    /// (`workers` must equal the dumbbell's `pairs`; `rounds` bounds
    /// each sender's `max_flows`). `None` (the default) keeps the
    /// on/off workload in [`ExperimentSpec::workload`].
    #[serde(default)]
    pub incast: Option<IncastConfig>,
}

/// Configuration of the fluid fast path (see [`ExperimentSpec::fluid`]).
///
/// The solver has no packets, so congestion control appears only as a
/// per-flow rate cap: the long-run Cubic rate at the topology RTT under
/// `ref_loss` ([`steady_state_rate_bps`]), clipped by the access links.
/// Fluid mode always models homogeneous Cubic with these parameters —
/// the provisioner passed to [`run_experiment`] is *not* consulted
/// (per-sender hooks and factories are packet-path concepts).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FluidSpec {
    /// Cubic parameters for the steady-state rate cap.
    pub params: CubicParams,
    /// Reference per-segment loss probability for the rate cap, in
    /// (0, 1). The default 1e-4 makes the cap bind only for flows whose
    /// fair share exceeds what Cubic could sustain on a lightly lossy
    /// path — on a congested bottleneck the max-min share binds first.
    pub ref_loss: f64,
    /// Add the closed-form slow-start ramp to completion times (and to
    /// the pacing of each sender's next flow). Without it every flow
    /// finishes as if it started at full rate, which overstates goodput
    /// for short flows.
    pub slow_start_model: bool,
    /// Fraction of the bottleneck's payload capacity the transport
    /// actually converts into goodput when the link congests, in
    /// (0, 1]. Ideal max-min sharing would be 1.0; real Cubic on a
    /// drop-tail queue loses throughput to the sawtooth (the average
    /// window is (4 − β)/4 of the peak), to retransmissions, and to
    /// synchronized multi-flow backoff. The default is calibrated
    /// against this repository's packet engine on the validation
    /// dumbbells (see `tests/e2e_fluid.rs`); it only matters when the
    /// bottleneck is the binding constraint.
    pub efficiency: f64,
}

impl Default for FluidSpec {
    fn default() -> Self {
        FluidSpec {
            params: CubicParams::default(),
            ref_loss: 1e-4,
            slow_start_model: true,
            efficiency: 0.75,
        }
    }
}

impl ExperimentSpec {
    /// A spec over the paper dumbbell with `pairs` senders.
    pub fn new(pairs: usize, workload: OnOffConfig, duration: Dur, seed: u64) -> Self {
        let dumbbell = DumbbellSpec::paper(pairs);
        let store = StoreConfig {
            // The provider knows its own egress capacity.
            capacity_bps: Some(dumbbell.bottleneck_bps as f64),
            ..StoreConfig::default()
        };
        ExperimentSpec {
            dumbbell,
            workload,
            duration,
            seed,
            dupack_threshold: 3,
            store,
            queue: BottleneckQueue::DropTail,
            ha: None,
            fluid: None,
            domains: None,
            budget: None,
            switch: None,
            incast: None,
        }
    }

    /// The same spec routed through the conservative parallel engine
    /// with (at most) `k` domains.
    pub fn with_domains(mut self, k: u32) -> Self {
        self.domains = Some(k);
        self
    }

    /// The same spec routed through the fluid fast path with default
    /// [`FluidSpec`] settings.
    pub fn with_fluid(mut self) -> Self {
        self.fluid = Some(FluidSpec::default());
        self
    }

    /// The same spec with a run budget installed (see
    /// [`ExperimentSpec::budget`]).
    pub fn with_budget(mut self, budget: RunBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// The same spec with a shared-buffer switch installed on both
    /// aggregation routers (see [`ExperimentSpec::switch`]).
    pub fn with_switch(mut self, switch: SwitchSpec) -> Self {
        self.switch = Some(switch);
        self
    }

    /// The same spec with the incast fan-in workload (see
    /// [`ExperimentSpec::incast`]). Panics if `incast.workers` does not
    /// match the dumbbell's pair count — one worker per sender.
    pub fn with_incast(mut self, incast: IncastConfig) -> Self {
        assert_eq!(
            incast.workers as usize, self.dumbbell.pairs,
            "incast workers must equal dumbbell pairs"
        );
        self.incast = Some(incast);
        self
    }

    /// Base (unloaded) RTT in milliseconds.
    pub fn base_rtt_ms(&self) -> f64 {
        self.dumbbell.rtt.as_millis_f64()
    }
}

/// Hands a provisioner what it needs to build one sender's controller
/// factory and hook.
pub struct ProvisionCtx<'a> {
    /// Sender index in `0..pairs`.
    pub index: usize,
    /// The built network (bottleneck link id, node ids, …).
    pub net: &'a Dumbbell,
    /// The run's shared context store.
    pub store: &'a SharedStore,
    /// Path key for this sender's traffic.
    pub path: PathKey,
    /// A per-sender random stream (fork of the run seed, independent of
    /// the workload streams) for stochastic provisioning such as fault
    /// injection. Fork it further by label before drawing.
    pub rng: SeedRng,
    /// The run's replicated crash-injected context planes (one per
    /// shard; a single-element set unless the spec shards the plane),
    /// when the spec carries an [`ExperimentSpec::ha`] section (clones
    /// share state).
    pub ha: Option<HaPlaneSet>,
}

/// What a provisioner returns for one sender.
pub struct Provisioned {
    /// Congestion-controller factory (fed the lookup snapshot, if any).
    pub factory: CcFactory,
    /// Session hook (NoHook for unmodified senders).
    pub hook: Box<dyn SessionHook>,
}

/// Result of one run.
pub struct RunResult {
    /// Aggregate metrics in the paper's units (includes partial reports
    /// of still-running connections, so long-running workloads measure).
    pub metrics: RunMetrics,
    /// Completed-flow reports, per sender.
    pub per_sender: Vec<Vec<FlowReport>>,
    /// Partial report of each sender's in-progress connection at the
    /// deadline, if it had delivered anything.
    pub partials: Vec<Option<FlowReport>>,
    /// Base RTT of the topology, ms.
    pub base_rtt_ms: f64,
    /// Final state of the run's shared context store.
    pub store: ContextStore,
    /// Events the simulator processed (determinism checks, perf metrics).
    pub events: u64,
    /// Scheduler-level accounting for the run (summed across domains on
    /// partitioned runs; the conservation identity holds for the sum).
    pub sched: SchedStats,
    /// What the crash-injected HA plane did, when the spec carried an
    /// unsharded one ([`HaSpec::shards`] absent or `count <= 1`).
    pub ha: Option<HaReport>,
    /// Per-shard HA reports, in shard order, when the spec sharded the
    /// plane ([`HaSpec::shards`] with `count > 1`); `None` otherwise.
    pub ha_shards: Option<Vec<HaReport>>,
    /// Which budget cap (if any) cut the run short. `Some` means the
    /// metrics cover only the portion simulated before the cap hit —
    /// partial data, tagged so aggregation can exclude it.
    pub terminated: Option<BudgetExceeded>,
    /// Per-switch backpressure stats for the `[left, right]` aggregation
    /// routers, when the spec installed a shared-buffer switch
    /// ([`ExperimentSpec::switch`]); `None` otherwise.
    pub switch_stats: Option<[SwitchStats; 2]>,
}

impl RunResult {
    /// Aggregate metrics over the subset of senders selected by `keep`.
    ///
    /// Queueing delay, loss, and utilization are shared-network quantities
    /// and stay as measured; throughput and RTT are recomputed over the
    /// subset (used to split modified vs unmodified senders in Figure 4).
    pub fn metrics_for(&self, keep: impl Fn(usize) -> bool) -> RunMetrics {
        let mut subset: Vec<FlowReport> = self
            .per_sender
            .iter()
            .enumerate()
            .filter(|(i, _)| keep(*i))
            .flat_map(|(_, r)| r.iter().cloned())
            .collect();
        subset.extend(
            self.partials
                .iter()
                .enumerate()
                .filter(|(i, _)| keep(*i))
                .filter_map(|(_, p)| p.clone()),
        );
        RunMetrics::from_reports(
            &subset,
            self.metrics.queueing_delay_ms,
            self.metrics.loss_rate,
            self.metrics.utilization,
        )
    }
}

/// Run one experiment; `provision` is called once per sender.
///
/// When the spec selects the fluid fast path ([`ExperimentSpec::fluid`])
/// the run goes through the flow-level solver instead of the packet
/// engine and `provision` is not consulted — fluid mode models
/// homogeneous Cubic via [`FluidSpec::params`].
pub fn run_experiment(
    spec: &ExperimentSpec,
    mut provision: impl FnMut(ProvisionCtx<'_>) -> Provisioned,
) -> RunResult {
    if let Some(fluid) = &spec.fluid {
        return run_fluid(spec, fluid);
    }
    let net = dumbbell(&spec.dumbbell);
    let bottleneck_ids = [net.bottleneck, net.reverse];
    let routers = [net.left_router, net.right_router];
    let queue_kind = spec.queue;
    let switch_pool = spec.switch.as_ref().map(|s| s.pool_bytes);
    // Routed through the serializable DisciplineSpec so the serial and
    // partitioned engines build bit-identical queues from one recipe.
    let disciplines = move |id, link: &phi_sim::topology::LinkSpec| {
        if let Some(pool) = switch_pool {
            if routers.contains(&link.from) {
                // Switch-governed egress: the shared pool is the only
                // admission authority, so the inner FIFO must never be
                // the binding constraint.
                return DisciplineSpec::DropTail.build(Capacity::Bytes(pool));
            }
        }
        let is_bottleneck = bottleneck_ids.contains(&id);
        match (queue_kind, is_bottleneck) {
            (BottleneckQueue::Red, true) => DisciplineSpec::RedGentle.build(link.capacity),
            _ => DisciplineSpec::DropTail.build(link.capacity),
        }
    };
    let mut sim = match spec.domains {
        Some(k) => Engine::Par(ParallelSimulator::with_disciplines(
            net.topology.clone(),
            k,
            disciplines,
        )),
        None => Engine::Serial(Box::new(Simulator::with_disciplines(
            net.topology.clone(),
            disciplines,
        ))),
    };
    if let Some(sw) = spec.switch {
        sim.install_switch(net.left_router, sw);
        sim.install_switch(net.right_router, sw);
    }
    if let Some(incast) = &spec.incast {
        assert_eq!(
            incast.workers as usize, spec.dumbbell.pairs,
            "incast workers must equal dumbbell pairs"
        );
    }
    let store = shared(ContextStore::new(spec.store));
    let root = SeedRng::new(spec.seed);
    // Fork the crash stream only when a plan exists: specs without an HA
    // section must replay bit-for-bit against their pre-HA digests. An
    // unsharded plane keeps the original `server-crash` fork for the
    // same reason; only a sharded spec consumes the per-shard streams.
    let ha_planes = spec.ha.as_ref().map(|ha| match ha.shards {
        Some(sh) if sh.count > 1 => HaPlaneSet::new(
            (0..sh.count)
                .map(|s| {
                    let mut shard_spec = ha.clone();
                    if s != sh.crash_shard {
                        shard_spec.plan = ServerCrashPlan::none();
                    }
                    HaPlane::new(
                        spec.store,
                        &shard_spec,
                        root.fork_indexed("server-crash-shard", u64::from(s)),
                        spec.duration,
                    )
                })
                .collect(),
        ),
        _ => HaPlaneSet::single(HaPlane::new(
            spec.store,
            ha,
            root.fork("server-crash"),
            spec.duration,
        )),
    });

    let mut sender_ids = Vec::with_capacity(spec.dumbbell.pairs);
    for i in 0..spec.dumbbell.pairs {
        let Provisioned { factory, hook } = provision(ProvisionCtx {
            index: i,
            net: &net,
            store: &store,
            path: DUMBBELL_PATH,
            rng: root.fork_indexed("provision", i as u64),
            ha: ha_planes.clone(),
        });
        let mut cfg = SenderConfig::new(net.receivers[i], 80, 10);
        cfg.dupack_threshold = spec.dupack_threshold;
        cfg.flow_id_base = (i as u64) << 32;
        // Incast workers draw from their own label ("worker") so adding
        // the fan-in model never perturbs the on/off streams.
        let source: FlowSource = match spec.incast {
            Some(incast) => {
                cfg.max_flows = Some(incast.rounds);
                IncastSource::new(incast, root.fork_indexed("worker", i as u64)).into()
            }
            None => OnOffSource::new(spec.workload, root.fork_indexed("sender", i as u64)).into(),
        };
        let id = sim.add_agent(
            net.senders[i],
            10,
            Box::new(TcpSender::new(cfg, source, factory, hook)),
        );
        sim.add_agent(net.receivers[i], 80, Box::new(TcpReceiver::new()));
        sender_ids.push(id);
    }

    if let Some(budget) = spec.budget {
        sim.set_budget(budget);
    }
    let deadline = Time::ZERO + spec.duration;
    sim.run_until(deadline);
    let terminated = sim.termination();

    let per_sender: Vec<Vec<FlowReport>> = sender_ids
        .iter()
        .map(|&id| {
            sim.agent_as::<TcpSender>(id)
                .expect("sender agent")
                .reports()
                .to_vec()
        })
        .collect();
    let partials: Vec<Option<FlowReport>> = sender_ids
        .iter()
        .map(|&id| {
            sim.agent_as::<TcpSender>(id)
                .expect("sender agent")
                .partial_report(deadline)
        })
        .collect();

    let bn = sim.link_stats(net.bottleneck);
    let elapsed = spec.duration;
    let mut all: Vec<FlowReport> = per_sender.iter().flatten().cloned().collect();
    all.extend(partials.iter().filter_map(|p| p.clone()));
    let metrics = RunMetrics::from_reports(
        &all,
        bn.mean_queue_wait() * 1e3,
        bn.loss_rate(),
        bn.utilization(elapsed),
    );

    let store = store.lock().expect("context store").clone();
    let (ha, ha_shards) = match ha_planes {
        Some(set) if set.shard_count() > 1 => (None, Some(set.reports())),
        Some(set) => (Some(set.plane(0).report_summary()), None),
        None => (None, None),
    };
    let switch_stats = spec.switch.map(|_| {
        [
            sim.switch_stats(net.left_router),
            sim.switch_stats(net.right_router),
        ]
    });
    RunResult {
        metrics,
        per_sender,
        partials,
        base_rtt_ms: spec.base_rtt_ms(),
        store,
        events: sim.events_processed(),
        sched: sim.sched_stats(),
        ha,
        ha_shards,
        terminated,
        switch_stats,
    }
}

/// The packet engine behind one harness run: the classic serial simulator
/// (FIFO event keys, the historical digests) or the domain-partitioned
/// parallel engine, chosen by [`ExperimentSpec::domains`]. Only the five
/// calls the harness makes are delegated.
enum Engine {
    Serial(Box<Simulator>),
    Par(ParallelSimulator),
}

impl Engine {
    fn add_agent(&mut self, node: NodeId, port: u16, agent: Box<dyn Agent>) -> AgentId {
        match self {
            Engine::Serial(s) => s.add_agent(node, port, agent),
            Engine::Par(p) => p.add_agent(node, port, agent),
        }
    }

    fn run_until(&mut self, deadline: Time) -> Time {
        match self {
            Engine::Serial(s) => s.run_until(deadline),
            Engine::Par(p) => p.run_until(deadline),
        }
    }

    fn set_budget(&mut self, budget: RunBudget) {
        match self {
            Engine::Serial(s) => s.set_budget(budget),
            Engine::Par(p) => p.set_budget(budget),
        }
    }

    fn termination(&self) -> Option<BudgetExceeded> {
        match self {
            Engine::Serial(s) => s.termination(),
            Engine::Par(p) => p.termination(),
        }
    }

    fn agent_as<T: Agent>(&self, id: AgentId) -> Option<&T> {
        match self {
            Engine::Serial(s) => s.agent_as(id),
            Engine::Par(p) => p.agent_as(id),
        }
    }

    fn install_switch(&mut self, node: NodeId, spec: SwitchSpec) {
        match self {
            Engine::Serial(s) => s.install_switch(node, spec),
            Engine::Par(p) => p.install_switch(node, spec),
        }
    }

    fn switch_stats(&self, node: NodeId) -> SwitchStats {
        match self {
            Engine::Serial(s) => s.switch_stats(node),
            Engine::Par(p) => p.switch_stats(node),
        }
    }

    fn link_stats(&self, link: LinkId) -> &phi_sim::stats::LinkStats {
        match self {
            Engine::Serial(s) => s.link_stats(link),
            Engine::Par(p) => p.link_stats(link),
        }
    }

    fn events_processed(&self) -> u64 {
        match self {
            Engine::Serial(s) => s.events_processed(),
            Engine::Par(p) => p.events_processed(),
        }
    }

    fn sched_stats(&self) -> SchedStats {
        match self {
            Engine::Serial(s) => s.sched_stats(),
            Engine::Par(p) => p.sched_stats(),
        }
    }
}

/// Closed-form slow-start ramp: how much longer than `bytes / rate` a
/// window-doubling transport takes to move `bytes` when its steady rate
/// is `rate_bps`. Models rounds of `iw·2^j` segments until the window
/// covers the share's bandwidth-delay product, then service at `rate`;
/// a flow that fits inside the ramp completes at the end of the round
/// that acks its last byte (so a one-segment flow costs one RTT, as in
/// the packet engine where `end` is the final ACK's arrival).
fn slow_start_penalty(bytes: u64, rate_bps: f64, rtt_secs: f64, iw_bytes: f64) -> Dur {
    if rate_bps <= 0.0 || !rate_bps.is_finite() || rtt_secs <= 0.0 || iw_bytes <= 0.0 {
        return Dur::ZERO;
    }
    let rate_bytes = rate_bps / 8.0;
    let fluid_fct = bytes as f64 / rate_bytes;
    let share_bdp = rate_bytes * rtt_secs;
    let mut window = iw_bytes;
    let mut sent = 0.0;
    let mut ramp_secs = 0.0;
    while window < share_bdp {
        if sent + window >= bytes as f64 {
            // Completes inside this round; the closing ACK lands at the
            // round's end.
            return Dur::from_secs_f64((ramp_secs + rtt_secs - fluid_fct).max(0.0));
        }
        sent += window;
        ramp_secs += rtt_secs;
        window *= 2.0;
    }
    // Ramp done (possibly instantly, for iw >= the share's BDP); the
    // remainder moves at the steady rate.
    let model_fct = ramp_secs + (bytes as f64 - sent).max(0.0) / rate_bytes;
    Dur::from_secs_f64((model_fct - fluid_fct).max(0.0))
}

/// The fluid fast path behind [`run_experiment`]: same spec, same seeded
/// workload streams (each sender's flow sizes and gaps are drawn from
/// the identical `fork_indexed("sender", i)` stream the packet path
/// uses, so both engines run the *same flows*), but service is fluid
/// max-min sharing of the bottleneck instead of packets. Loss and
/// queueing delay are structurally zero in the result; utilization is
/// the bottleneck's service integral scaled back to wire bytes.
fn run_fluid(spec: &ExperimentSpec, fluid: &FluidSpec) -> RunResult {
    // The fluid links carry application payload; fold per-segment header
    // overhead into the capacity so goodput comparisons line up.
    let payload_frac = f64::from(wire::MSS) / f64::from(wire::FULL_SEGMENT);
    let rtt_secs = spec.dumbbell.rtt.as_secs_f64();

    let efficiency = fluid.efficiency.clamp(f64::MIN_POSITIVE, 1.0);
    let mut fsim = FluidSim::new();
    let bottleneck = fsim.add_link(spec.dumbbell.bottleneck_bps as f64 * payload_frac * efficiency);
    let cubic_cap = steady_state_rate_bps(
        &fluid.params,
        rtt_secs,
        fluid.ref_loss,
        f64::from(wire::MSS),
    );
    let cap = (spec.dumbbell.access_bps as f64 * payload_frac).min(cubic_cap);
    let class = fsim.add_class(vec![bottleneck], cap);

    let root = SeedRng::new(spec.seed);
    for i in 0..spec.dumbbell.pairs {
        let mut source = OnOffSource::new(spec.workload, root.fork_indexed("sender", i as u64));
        fsim.add_sender(
            class,
            Box::new(move || {
                let plan = source.next_flow();
                FluidFlowPlan {
                    bytes: (plan.bytes).max(1),
                    off_ns: plan.off_ns,
                }
            }),
        );
    }
    if fluid.slow_start_model {
        let iw_bytes = fluid.params.init_window * f64::from(wire::MSS);
        fsim.set_start_penalty(Box::new(move |bytes, rate_bps| {
            slow_start_penalty(bytes, rate_bps, rtt_secs, iw_bytes)
        }));
    }

    let deadline = Time::ZERO + spec.duration;
    fsim.run_until(deadline);

    let census = fsim.census();
    debug_assert!(
        census.conserved(1e-6),
        "fluid byte-conservation violated: {census:?}"
    );

    // Reports in the packet path's shape: flow ids mirror the sender
    // config's `(i << 32) + flow_index`, RTT is the (queue-free) base
    // RTT, and the loss/retransmit counters are structurally zero.
    let pairs = spec.dumbbell.pairs;
    let mut per_sender: Vec<Vec<FlowReport>> = vec![Vec::new(); pairs];
    let to_report = |sender: usize, index: u64, bytes: u64, start: Time, end: Time| FlowReport {
        flow: FlowId(((sender as u64) << 32) + index),
        bytes,
        segments: bytes.div_ceil(u64::from(wire::MSS)),
        start,
        end,
        min_rtt: Some(spec.dumbbell.rtt),
        mean_rtt_ms: spec.dumbbell.rtt.as_millis_f64(),
        rtt_samples: bytes.div_ceil(u64::from(wire::MSS)),
        retransmits: 0,
        timeouts: 0,
        recoveries: 0,
        aborted: false,
        idle_restarts: 0,
    };
    for rec in fsim.records() {
        per_sender[rec.sender].push(to_report(
            rec.sender, rec.index, rec.bytes, rec.start, rec.end,
        ));
    }
    let partials: Vec<Option<FlowReport>> = (0..pairs)
        .map(|s| {
            fsim.partial(s)
                .map(|p| to_report(p.sender, p.index, p.bytes, p.start, p.end))
        })
        .collect();

    let mut all: Vec<FlowReport> = per_sender.iter().flatten().cloned().collect();
    all.extend(partials.iter().filter_map(|p| p.clone()));
    let wire_bits = fsim.link_served_bytes(bottleneck) / payload_frac * 8.0;
    let utilization = (wire_bits
        / (spec.dumbbell.bottleneck_bps as f64 * spec.duration.as_secs_f64().max(1e-12)))
    .min(1.0);
    let metrics = RunMetrics::from_reports(&all, 0.0, 0.0, utilization);

    RunResult {
        metrics,
        per_sender,
        partials,
        base_rtt_ms: spec.base_rtt_ms(),
        store: ContextStore::new(spec.store),
        events: fsim.events(),
        // The fluid solver has no event scheduler; all-zero still
        // satisfies the conservation identity.
        sched: SchedStats::default(),
        ha: None,
        ha_shards: None,
        // The fluid solver integrates to the deadline in near-constant
        // work per flow; budgets are a packet-path concern and are not
        // applied here.
        terminated: None,
        // Switches are a packet-path concept; fluid runs install none.
        switch_stats: None,
    }
}

/// Provision every sender as unmodified Cubic with fixed `params`
/// (the §2.2.1 "simplified setting": one parameter set for the whole run).
pub fn provision_cubic(params: CubicParams) -> impl Fn(ProvisionCtx<'_>) -> Provisioned + Sync {
    move |_| Provisioned {
        factory: Box::new(move |_| Box::new(Cubic::new(params))),
        hook: Box::new(NoHook),
    }
}

/// Provision every sender as DCTCP with fixed `params` (no session
/// hook): the datacenter baseline for the backpressure scenarios. DCTCP
/// senders mark their segments ECN-capable, so a spec with an
/// ECN-enabled [`ExperimentSpec::switch`] feeds them the marked-fraction
/// signal; without a switch they behave like a NewReno-flavored sender.
pub fn provision_dctcp(params: DctcpParams) -> impl Fn(ProvisionCtx<'_>) -> Provisioned + Sync {
    move |_| Provisioned {
        factory: Box::new(move |_| Box::new(Dctcp::new(params))),
        hook: Box::new(NoHook),
    }
}

/// Provision every sender as a Phi sender: practical hook (lookup/report
/// against the run's shared store) and parameters drawn from `policy` at
/// each connection start (§2.2.2's realization).
pub fn provision_cubic_phi(policy: PolicyTable) -> impl Fn(ProvisionCtx<'_>) -> Provisioned + Sync {
    move |ctx| {
        let policy = policy.clone();
        Provisioned {
            factory: Box::new(move |snap| {
                let params = match snap {
                    Some(s) => policy.params_for(s),
                    None => CubicParams::default(),
                };
                Box::new(Cubic::new(params))
            }),
            hook: Box::new(PracticalHook::new(ctx.store.clone(), ctx.path)),
        }
    }
}

/// [`provision_cubic_phi`] behind a faulty context plane: each sender's
/// practical hook is wrapped in a [`FaultyHook`] injecting faults per
/// `plan` (from a per-sender fork of the run seed, so fault draws never
/// shift the workload streams) and a
/// [`phi_tcp::hook::DegradingHook`] enforcing fallback to vanilla
/// behaviour whenever a lookup is lost. The §2.2.2 degradation arm.
pub fn provision_cubic_phi_faulty(
    policy: PolicyTable,
    plan: FaultPlan,
) -> impl Fn(ProvisionCtx<'_>) -> Provisioned + Sync {
    move |ctx| {
        let policy = policy.clone();
        let counters = fault_counters();
        Provisioned {
            factory: Box::new(move |snap| {
                let params = match snap {
                    Some(s) => policy.params_for(s),
                    None => CubicParams::default(),
                };
                Box::new(Cubic::new(params))
            }),
            hook: Box::new(DegradingHook::new(FaultyHook::new(
                PracticalHook::new(ctx.store.clone(), ctx.path),
                plan,
                ctx.rng.fork("faults"),
                counters,
            ))),
        }
    }
}

/// [`provision_cubic_phi`] against the replicated, crash-injected
/// context plane: each sender's lookups and reports go to the run's
/// [`HaPlane`] (primary + backup with replication lag and epoch-fenced
/// failover) instead of the always-up shared store. While a failover is
/// in flight, lookups return no context and the
/// [`phi_tcp::hook::DegradingHook`] wrapper drops the sender back to
/// vanilla behaviour — the §2.2.2 degradation arm under server crashes.
///
/// Requires [`ExperimentSpec::ha`] to be set; panics otherwise (a
/// missing plan means the caller wanted [`provision_cubic_phi`]).
pub fn provision_cubic_phi_ha(
    policy: PolicyTable,
) -> impl Fn(ProvisionCtx<'_>) -> Provisioned + Sync {
    move |ctx| {
        let policy = policy.clone();
        let plane = ctx
            .ha
            .as_ref()
            .expect("provision_cubic_phi_ha requires ExperimentSpec::ha")
            .plane_for(ctx.path)
            .clone();
        Provisioned {
            factory: Box::new(move |snap| {
                let params = match snap {
                    Some(s) => policy.params_for(s),
                    None => CubicParams::default(),
                };
                Box::new(Cubic::new(params))
            }),
            hook: Box::new(DegradingHook::new(HaHook::new(plane, ctx.path))),
        }
    }
}

/// Provision a Figure 4 mixed deployment: senders with even index are
/// "modified" (fixed `tuned` parameters, Phi reporting), odd ones run the
/// defaults. Returns whether index `i` is modified via [`is_modified`].
pub fn provision_mixed(tuned: CubicParams) -> impl Fn(ProvisionCtx<'_>) -> Provisioned + Sync {
    move |ctx| {
        if is_modified(ctx.index) {
            Provisioned {
                factory: Box::new(move |_| Box::new(Cubic::new(tuned))),
                hook: Box::new(PracticalHook::new(ctx.store.clone(), ctx.path)),
            }
        } else {
            Provisioned {
                factory: Box::new(|_| Box::new(Cubic::new(CubicParams::default()))),
                hook: Box::new(NoHook),
            }
        }
    }
}

/// Mixed-deployment group of sender `i`: true = modified half.
pub fn is_modified(i: usize) -> bool {
    i.is_multiple_of(2)
}

/// Run `n` repetitions of the same experiment (run `i` gets seed
/// [`derive_seed`]`(spec.seed, i)`) on the [`RunPool::from_env`] pool.
pub fn run_repeated(
    spec: &ExperimentSpec,
    n: usize,
    provision: impl Fn(ProvisionCtx<'_>) -> Provisioned + Sync,
) -> Vec<RunResult> {
    run_repeated_on(&RunPool::from_env(), spec, n, provision)
}

/// [`run_repeated`] on an explicit pool. Results are bit-identical for
/// any worker count: each run's seed depends only on its index, and the
/// pool returns results in run order.
pub fn run_repeated_on(
    pool: &RunPool,
    spec: &ExperimentSpec,
    n: usize,
    provision: impl Fn(ProvisionCtx<'_>) -> Provisioned + Sync,
) -> Vec<RunResult> {
    pool.run(n, |i| {
        let mut s = spec.clone();
        s.seed = derive_seed(spec.seed, i as u64);
        run_experiment(&s, &provision)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec(pairs: usize, mean_on: f64, mean_off: f64, secs: u64) -> ExperimentSpec {
        let mut spec = ExperimentSpec::new(
            pairs,
            OnOffConfig {
                mean_on_bytes: mean_on,
                mean_off_secs: mean_off,
                deterministic: false,
            },
            Dur::from_secs(secs),
            42,
        );
        // Smaller topology for faster tests.
        spec.dumbbell.bottleneck_bps = 10_000_000;
        spec.dumbbell.rtt = Dur::from_millis(60);
        spec
    }

    #[test]
    fn default_cubic_runs_and_completes_flows() {
        let spec = quick_spec(4, 300_000.0, 1.0, 20);
        let r = run_experiment(&spec, provision_cubic(CubicParams::default()));
        assert!(r.metrics.flows_completed > 10, "{:?}", r.metrics);
        assert!(r.metrics.throughput_mbps > 0.1);
        assert!(r.metrics.utilization > 0.05);
        assert_eq!(r.per_sender.len(), 4);
        assert!(r.per_sender.iter().all(|v| !v.is_empty()));
    }

    #[test]
    fn same_seed_same_result_different_seed_differs() {
        let spec = quick_spec(3, 200_000.0, 1.0, 15);
        let a = run_experiment(&spec, provision_cubic(CubicParams::default()));
        let b = run_experiment(&spec, provision_cubic(CubicParams::default()));
        assert_eq!(a.events, b.events);
        assert_eq!(a.metrics.flows_completed, b.metrics.flows_completed);
        assert_eq!(a.metrics.bytes, b.metrics.bytes);

        let mut spec2 = spec.clone();
        spec2.seed = 43;
        let c = run_experiment(&spec2, provision_cubic(CubicParams::default()));
        assert_ne!(a.events, c.events);
    }

    #[test]
    fn phi_senders_populate_the_store() {
        let spec = quick_spec(4, 300_000.0, 1.0, 20);
        let r = run_experiment(&spec, provision_cubic_phi(PolicyTable::reference()));
        let (lookups, reports) = r.store.traffic_counters(DUMBBELL_PATH);
        assert!(lookups > 0, "no lookups recorded");
        assert!(reports > 0, "no reports recorded");
        // Lookups run ahead of reports by at most the in-flight count.
        assert!(lookups >= reports);
        let ctx = r.store.peek(DUMBBELL_PATH, spec.duration.as_nanos());
        assert!(ctx.utilization > 0.0, "store learned nothing");
    }

    #[test]
    fn workload_arrivals_independent_of_scheme() {
        // The whole point of forked RNG streams: changing the congestion
        // controller must not change which flows arrive (their sizes).
        let spec = quick_spec(3, 200_000.0, 1.0, 15);
        let a = run_experiment(&spec, provision_cubic(CubicParams::default()));
        let b = run_experiment(&spec, provision_cubic(CubicParams::tuned(16.0, 64.0, 0.2)));
        // Compare the byte-size of the first flow of each sender.
        for (ra, rb) in a.per_sender.iter().zip(&b.per_sender) {
            if let (Some(fa), Some(fb)) = (ra.first(), rb.first()) {
                assert_eq!(fa.bytes, fb.bytes, "workload changed with scheme");
            }
        }
    }

    #[test]
    fn metrics_subset_splits_groups() {
        let spec = quick_spec(4, 200_000.0, 1.0, 15);
        let r = run_experiment(&spec, provision_mixed(CubicParams::tuned(16.0, 64.0, 0.2)));
        let modified = r.metrics_for(is_modified);
        let unmodified = r.metrics_for(|i| !is_modified(i));
        assert_eq!(
            modified.flows_completed + unmodified.flows_completed,
            r.metrics.flows_completed
        );
        // Shared-network quantities are identical across the split.
        assert_eq!(modified.queueing_delay_ms, unmodified.queueing_delay_ms);
        assert_eq!(modified.loss_rate, unmodified.loss_rate);
    }

    #[test]
    fn ideal_oracle_lookups_track_live_utilization() {
        use crate::hooks::IdealOracleHook;
        use std::sync::{Arc, Mutex};

        let spec = quick_spec(6, 400_000.0, 0.5, 20);
        // Record every snapshot the factory receives from the oracle.
        let seen: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
        let seen_in = seen.clone();
        let result = run_experiment(&spec, move |ctx| {
            let rate = ctx.net.topology.link(ctx.net.bottleneck).rate_bps;
            let oracle =
                IdealOracleHook::new(ctx.net.bottleneck, rate, ctx.net.senders.len() as u32);
            let seen = seen_in.clone();
            Provisioned {
                factory: Box::new(move |snap| {
                    if let Some(s) = snap {
                        seen.lock().unwrap().push(s.utilization);
                    }
                    Box::new(Cubic::new(CubicParams::default()))
                }),
                hook: Box::new(oracle),
            }
        });
        assert!(result.metrics.flows_completed > 10);
        let snaps = seen.lock().unwrap();
        // Every connection start consulted the oracle...
        assert!(
            snaps.len() as u64 >= result.metrics.flows_completed,
            "{} snapshots for {} flows",
            snaps.len(),
            result.metrics.flows_completed
        );
        // ...readings are valid fractions...
        assert!(snaps.iter().all(|u| (0.0..=1.0).contains(u)));
        // ...and once the network is busy, later lookups see real load
        // (the live feed, not a frozen zero).
        let late_max = snaps[snaps.len() / 2..]
            .iter()
            .fold(0.0f64, |a, &b| a.max(b));
        assert!(late_max > 0.1, "oracle never saw load: max {late_max}");
    }

    #[test]
    fn red_bottleneck_keeps_queueing_lower_under_load() {
        // Same heavy workload on drop-tail vs RED: AQM should trade a
        // little early loss for substantially less standing queue.
        let mut spec = quick_spec(10, 400_000.0, 0.5, 20);
        let droptail = run_experiment(&spec, provision_cubic(CubicParams::default()));
        spec.queue = BottleneckQueue::Red;
        let red = run_experiment(&spec, provision_cubic(CubicParams::default()));
        assert!(
            red.metrics.queueing_delay_ms < droptail.metrics.queueing_delay_ms,
            "RED queueing {:.1} ms should undercut drop-tail {:.1} ms",
            red.metrics.queueing_delay_ms,
            droptail.metrics.queueing_delay_ms
        );
        // Both still move real traffic.
        assert!(red.metrics.throughput_mbps > 0.3);
    }

    #[test]
    fn fluid_mode_runs_the_same_flows_as_the_packet_path() {
        let spec = quick_spec(4, 300_000.0, 1.0, 20);
        let packet = run_experiment(&spec, provision_cubic(CubicParams::default()));
        let fluid = run_experiment(
            &spec.clone().with_fluid(),
            provision_cubic(CubicParams::default()),
        );
        // Same seeded workload streams → the first flows carry identical
        // byte counts in both engines.
        for (pa, fa) in packet.per_sender.iter().zip(&fluid.per_sender) {
            if let (Some(p), Some(f)) = (pa.first(), fa.first()) {
                assert_eq!(p.bytes, f.bytes, "fluid drew a different workload");
                assert_eq!(p.flow, f.flow, "flow-id convention diverged");
            }
        }
        // Structural properties of the fluid result.
        assert_eq!(fluid.metrics.loss_rate, 0.0);
        assert_eq!(fluid.metrics.queueing_delay_ms, 0.0);
        assert!(fluid.metrics.flows_completed > 0);
        assert!(fluid.metrics.utilization > 0.0 && fluid.metrics.utilization <= 1.0);
        // Far fewer events than the packet engine for the same traffic.
        assert!(
            fluid.events * 10 < packet.events,
            "fluid {} vs packet {} events",
            fluid.events,
            packet.events
        );
    }

    #[test]
    fn fluid_mode_is_deterministic_and_seed_sensitive() {
        let spec = quick_spec(3, 200_000.0, 1.0, 15).with_fluid();
        let a = run_experiment(&spec, provision_cubic(CubicParams::default()));
        let b = run_experiment(&spec, provision_cubic(CubicParams::default()));
        assert_eq!(a.events, b.events);
        assert_eq!(a.metrics.bytes, b.metrics.bytes);
        assert_eq!(
            a.metrics.throughput_mbps.to_bits(),
            b.metrics.throughput_mbps.to_bits()
        );
        let mut spec2 = spec.clone();
        spec2.seed = 43;
        let c = run_experiment(&spec2, provision_cubic(CubicParams::default()));
        assert_ne!(a.metrics.bytes, c.metrics.bytes);
    }

    #[test]
    fn fluid_runs_are_worker_count_invariant() {
        let spec = quick_spec(2, 150_000.0, 1.0, 10).with_fluid();
        let serial = run_repeated_on(
            &RunPool::serial(),
            &spec,
            4,
            provision_cubic(CubicParams::default()),
        );
        let parallel = run_repeated_on(
            &RunPool::new(4),
            &spec,
            4,
            provision_cubic(CubicParams::default()),
        );
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.events, b.events);
            assert_eq!(a.metrics.bytes, b.metrics.bytes);
            assert_eq!(
                a.metrics.throughput_mbps.to_bits(),
                b.metrics.throughput_mbps.to_bits()
            );
        }
    }

    #[test]
    fn slow_start_penalty_costs_an_rtt_for_a_tiny_flow() {
        // One segment at any rate: the model charges one RTT (send, then
        // the closing ACK), minus the negligible fluid service time.
        let d = slow_start_penalty(1_000, 1e6, 0.06, 2.0 * 1448.0);
        let fluid_fct = 1_000.0 / (1e6 / 8.0);
        assert!((d.as_secs_f64() - (0.06 - fluid_fct)).abs() < 1e-9);
        // A long flow at a modest rate spends a few RTTs ramping.
        let d = slow_start_penalty(10_000_000, 5e6, 0.06, 2.0 * 1448.0);
        assert!(d.as_secs_f64() > 0.0);
        assert!(d.as_secs_f64() < 1.0, "penalty unreasonably large: {d}");
        // Degenerate inputs cost nothing.
        assert_eq!(slow_start_penalty(1_000, 0.0, 0.06, 2896.0), Dur::ZERO);
        assert_eq!(
            slow_start_penalty(1_000, f64::INFINITY, 0.06, 2896.0),
            Dur::ZERO
        );
    }

    #[test]
    fn run_repeated_varies_seed() {
        let spec = quick_spec(2, 150_000.0, 1.0, 10);
        let runs = run_repeated(&spec, 3, provision_cubic(CubicParams::default()));
        assert_eq!(runs.len(), 3);
        // Different seeds → different event counts (with overwhelming odds).
        assert!(runs.windows(2).any(|w| w[0].events != w[1].events));
    }

    #[test]
    fn run_repeated_is_worker_count_invariant() {
        let spec = quick_spec(2, 150_000.0, 1.0, 10);
        let serial = run_repeated_on(
            &RunPool::serial(),
            &spec,
            4,
            provision_cubic(CubicParams::default()),
        );
        let parallel = run_repeated_on(
            &RunPool::new(4),
            &spec,
            4,
            provision_cubic(CubicParams::default()),
        );
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.events, b.events);
            assert_eq!(a.metrics.bytes, b.metrics.bytes);
            assert_eq!(a.metrics.flows_completed, b.metrics.flows_completed);
            // Floating-point results must match to the bit, not just
            // approximately: same seed, same event order, same arithmetic.
            assert_eq!(
                a.metrics.throughput_mbps.to_bits(),
                b.metrics.throughput_mbps.to_bits()
            );
            assert_eq!(
                a.metrics.queueing_delay_ms.to_bits(),
                b.metrics.queueing_delay_ms.to_bits()
            );
        }
    }
}
