//! # phi-core — the Phi system
//!
//! The paper's contribution (*Rethinking Networking for "Five Computers"*,
//! HotNets '18): **information sharing and coordination across the senders
//! of a large cloud provider**, realized with minimal overhead — one
//! context lookup when a connection starts and one report when it ends.
//!
//! What lives here:
//!
//! * [`context`] — the congestion context (utilization `u`, queue `q`,
//!   competing senders `n`) and the store that estimates it from sender
//!   lookups/reports (§2.2.2).
//! * [`hooks`] — in-simulation session hooks: the practical
//!   lookup-at-start/report-at-end design, and the idealized live oracle.
//! * [`crash`] — deterministic server-crash injection: a seeded
//!   [`crash::ServerCrashPlan`] drives an in-sim primary/backup context
//!   plane ([`crash::HaPlane`]) through epoch-fenced failovers.
//! * [`policy`] — the shared-knowledge table mapping context →
//!   recommended Cubic parameters (§2.2.1).
//! * [`optimizer`] — Table 2 parameter sweeps, the `P_l` objective argmax,
//!   and the Figure 3 leave-one-out stability analysis.
//! * [`mod@power`] — network power `P = r/d`, the paper's loss-extended
//!   `P_l = r(1−l)/d`, and Remy's `log(P)`.
//! * [`harness`] — the dumbbell experiment runner every figure uses.
//! * [`runpool`] — deterministic parallel fan-out of independent runs
//!   (`PHI_JOBS` workers, bit-identical results for any worker count),
//!   plus panic-isolating supervision with same-seed retry and
//!   quarantine.
//! * [`journal`] — the durable sweep journal: append-only, versioned,
//!   CRC-framed records of completed runs; torn tails truncate and
//!   corrupt records quarantine individually.
//! * [`supervise`] — resumable supervised sweeps on top of the three
//!   above: budgets, retries, journal replay, and aggregation that
//!   excludes quarantined/terminated cells.
//! * [`priority`] — cross-flow prioritization with a TCP-friendly ensemble
//!   (§3.3, MulTCP-weighted AIMD).
//! * [`adapt`] — informed adaptation without cooperation (§3.2): jitter
//!   buffer sizing and duplicate-ACK threshold tuning from shared data.
//! * [`privacy`] — additive secret-sharing aggregation, the §3.1 building
//!   block for a cross-provider "network weather" barometer that reveals
//!   only the aggregate.
//! * [`shard`] — the sharded context store: N independent shards keyed
//!   by a stable hash of the path, observably equivalent to the classic
//!   store (paths never interact), each shard with its own lock,
//!   replication log, and failover epoch in the server.
//! * [`wire`] / [`server`] — a real context server: length-prefixed binary
//!   protocol (single and batch frames), threaded TCP service, blocking
//!   client with a write-behind report buffer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapt;
pub mod context;
pub mod crash;
pub mod harness;
pub mod hooks;
pub mod journal;
pub mod optimizer;
pub mod policy;
pub mod power;
pub mod priority;
pub mod privacy;
pub mod runpool;
pub mod server;
pub mod shard;
pub mod supervise;
pub mod wire;

pub use context::{ContextStore, FlowSummary, PathKey, SnapshotError, StoreConfig};
pub use crash::{
    CrashCounters, HaHook, HaPlane, HaPlaneSet, HaReport, HaSpec, ServerCrashPlan, ShardedHa,
};
pub use harness::{
    is_modified, provision_cubic, provision_cubic_phi, provision_cubic_phi_faulty,
    provision_cubic_phi_ha, provision_mixed, run_experiment, run_repeated, run_repeated_on,
    ExperimentSpec, FluidSpec, ProvisionCtx, Provisioned, RunResult, DUMBBELL_PATH,
};
pub use hooks::{
    fault_counters, shared, summarize, FaultCounters, FaultPlan, FaultyHook, Flap, IdealOracleHook,
    PracticalHook, SharedFaultCounters, SharedStore,
};
pub use journal::{Journal, Recovery, RunRecord};
pub use optimizer::{
    leave_one_out, policy_from_sweeps, sweep_cubic, sweep_cubic_on, LeaveOneOutRow, SweepOutcome,
    SweepResult, SweepSpec,
};
pub use policy::{PolicyEntry, PolicyTable};
pub use power::{log_power, power, power_loss, score, Objective};
pub use runpool::{derive_seed, panic_message, RunFailure, RunOutcome, RunPool};
pub use server::{
    sync_store, ClientConfig, ClientError, ContextClient, ContextServer, HaOptions,
    ResilienceConfig, ResilienceStats, ResilientClient, ServerConfig, ServerStats, SyncStore,
    WriteBehindConfig,
};
pub use shard::{shard_index, ShardedStore};
pub use supervise::{
    run_repeated_supervised, CompletedCell, SupervisorConfig, SweepReport, TerminatedCell,
};
pub use wire::{ErrorCode, ReplOp, Role};
