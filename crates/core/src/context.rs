//! The shared congestion context and the store that maintains it.
//!
//! The paper characterizes the *congestion context* of a path by three
//! quantities (§2.2.2): bottleneck **utilization** `u`, **queue occupancy**
//! `q`, and the number of **competing senders** `n`. A per-domain *context
//! server* maintains these from minimal sender traffic: one **lookup** when
//! a connection starts and one **report** when it ends.
//!
//! [`ContextStore`] is that repository, independent of any transport or
//! clock source (timestamps are plain nanoseconds so the same store backs
//! both the in-simulation hooks and the real TCP server):
//!
//! * `n` — connections that have looked up but not yet reported;
//! * `u` — windowed aggregate of reported delivery rates divided by the
//!   path's capacity (configured, or learned as the largest windowed rate
//!   ever observed);
//! * `q` — an EWMA of reported RTT inflation (mean RTT − min RTT), the
//!   same signal Remy's delay feature uses.
//!
//! The estimates are exactly as fresh as connection turnover — that is the
//! paper's deliberate practicality trade-off, quantified by the
//! `exp_ablation` bench.

use std::collections::{HashMap, VecDeque};

use phi_tcp::hook::ContextSnapshot;
use serde::{Deserialize, Serialize};

/// Identifies one network path class (e.g. a destination /24) whose flows
/// are assumed to share a bottleneck (§2.1's spatio-temporal granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PathKey(pub u64);

/// What a sender reports when a connection ends — the wire-level subset of
/// a `FlowReport`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowSummary {
    /// Bytes the connection delivered.
    pub bytes: u64,
    /// Connection duration, nanoseconds.
    pub duration_ns: u64,
    /// Mean RTT over the connection, milliseconds.
    pub mean_rtt_ms: f64,
    /// Minimum RTT over the connection, milliseconds.
    pub min_rtt_ms: f64,
    /// Segments retransmitted.
    pub retransmits: u32,
    /// RTO episodes.
    pub timeouts: u32,
}

/// Store configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StoreConfig {
    /// Sliding window over which delivery rates are aggregated, nanoseconds.
    pub window_ns: u64,
    /// Known path capacity in bits/s; `None` learns it as the maximum
    /// windowed aggregate rate observed.
    pub capacity_bps: Option<f64>,
    /// EWMA smoothing for the queue-inflation estimate.
    pub queue_alpha: f64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            window_ns: 10_000_000_000, // 10 s
            capacity_bps: None,
            queue_alpha: 0.3,
        }
    }
}

/// Per-path shared state.
#[derive(Debug, Clone, PartialEq)]
struct PathState {
    /// Connections that looked up but have not reported back.
    active: u32,
    /// Recent reports: (end_ns, bytes, duration_ns).
    recent: VecDeque<(u64, u64, u64)>,
    /// EWMA of RTT inflation, ms.
    queue_ms: Option<f64>,
    /// Smallest RTT ever reported, ms.
    min_rtt_ms: Option<f64>,
    /// Learned capacity (max windowed rate), bits/s.
    learned_capacity: f64,
    /// Total reports folded in.
    reports: u64,
    /// Total lookups served.
    lookups: u64,
    /// Windowed loss signal: (retransmits, segments-ish) from reports.
    retx_ewma: Option<f64>,
}

impl PathState {
    fn new() -> Self {
        PathState {
            active: 0,
            recent: VecDeque::new(),
            queue_ms: None,
            min_rtt_ms: None,
            learned_capacity: 0.0,
            reports: 0,
            lookups: 0,
            retx_ewma: None,
        }
    }

    /// Aggregate delivery rate over `[now - window, now]`, bits/s.
    fn windowed_rate(&self, now_ns: u64, window_ns: u64) -> f64 {
        let horizon = now_ns.saturating_sub(window_ns);
        let mut bits = 0.0;
        for &(end, bytes, dur) in &self.recent {
            if end <= horizon {
                continue;
            }
            let start = end.saturating_sub(dur);
            let overlap_start = start.max(horizon);
            let overlap_end = end.min(now_ns);
            if overlap_end <= overlap_start {
                continue;
            }
            let frac = if dur == 0 {
                1.0
            } else {
                (overlap_end - overlap_start) as f64 / dur as f64
            };
            bits += bytes as f64 * 8.0 * frac;
        }
        let denom_ns = window_ns.min(now_ns.max(1));
        bits / (denom_ns as f64 / 1e9)
    }

    fn prune(&mut self, now_ns: u64, window_ns: u64) {
        let horizon = now_ns.saturating_sub(window_ns);
        while let Some(&(end, _, _)) = self.recent.front() {
            if end <= horizon {
                self.recent.pop_front();
            } else {
                break;
            }
        }
    }
}

/// The context server's repository of shared per-path state.
///
/// ```
/// use phi_core::context::{ContextStore, FlowSummary, PathKey, StoreConfig};
///
/// let mut store = ContextStore::new(StoreConfig {
///     window_ns: 10_000_000_000,
///     capacity_bps: Some(10_000_000.0), // the provider knows its capacity
///     queue_alpha: 0.3,
/// });
/// let path = PathKey(42);
///
/// // A connection starts: look up the context (and register as active).
/// let ctx = store.lookup(path, 1_000_000_000);
/// assert_eq!(ctx.competing, 0);
///
/// // ...it transfers 5 MB in 4 s, then reports back.
/// store.report(path, 5_000_000_000, &FlowSummary {
///     bytes: 5_000_000,
///     duration_ns: 4_000_000_000,
///     mean_rtt_ms: 170.0,
///     min_rtt_ms: 150.0,
///     retransmits: 0,
///     timeouts: 0,
/// });
///
/// // The next connection sees the shared picture.
/// let ctx = store.peek(path, 5_000_000_000);
/// assert!(ctx.utilization > 0.3); // 40 Mbit over a 10 s window on 10 Mbit/s
/// assert!((ctx.queue_ms - 20.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ContextStore {
    cfg: StoreConfig,
    paths: HashMap<PathKey, PathState>,
}

impl ContextStore {
    /// An empty store.
    pub fn new(cfg: StoreConfig) -> Self {
        ContextStore {
            cfg,
            paths: HashMap::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }

    /// Serve a connection-start lookup: returns the current context for
    /// `path` and registers one more active sender on it.
    pub fn lookup(&mut self, path: PathKey, now_ns: u64) -> ContextSnapshot {
        let snap = self.peek(path, now_ns);
        let st = self.paths.entry(path).or_insert_with(PathState::new);
        st.active += 1;
        st.lookups += 1;
        snap
    }

    /// Read the current context without registering a sender (monitoring).
    pub fn peek(&self, path: PathKey, now_ns: u64) -> ContextSnapshot {
        let Some(st) = self.paths.get(&path) else {
            return ContextSnapshot {
                utilization: 0.0,
                queue_ms: 0.0,
                competing: 0,
            };
        };
        let rate = st.windowed_rate(now_ns, self.cfg.window_ns);
        let capacity = self
            .cfg
            .capacity_bps
            .unwrap_or(st.learned_capacity)
            .max(1.0);
        ContextSnapshot {
            utilization: (rate / capacity).clamp(0.0, 1.0),
            queue_ms: st.queue_ms.unwrap_or(0.0),
            competing: st.active,
        }
    }

    /// Fold in a connection-end report and release its active slot.
    pub fn report(&mut self, path: PathKey, now_ns: u64, summary: &FlowSummary) {
        let window = self.cfg.window_ns;
        let alpha = self.cfg.queue_alpha;
        let capacity_cfgd = self.cfg.capacity_bps.is_some();
        let st = self.paths.entry(path).or_insert_with(PathState::new);
        st.active = st.active.saturating_sub(1);
        st.reports += 1;
        st.recent
            .push_back((now_ns, summary.bytes, summary.duration_ns));
        st.prune(now_ns, window);

        // Queue estimate: RTT inflation over the path minimum (§2.2.2 —
        // "the difference between the current RTT and the minimum RTT would
        // give an indication of q").
        if summary.min_rtt_ms > 0.0 {
            st.min_rtt_ms = Some(match st.min_rtt_ms {
                None => summary.min_rtt_ms,
                Some(m) => m.min(summary.min_rtt_ms),
            });
        }
        if let Some(base) = st.min_rtt_ms {
            if summary.mean_rtt_ms > 0.0 {
                let inflation = (summary.mean_rtt_ms - base).max(0.0);
                st.queue_ms = Some(match st.queue_ms {
                    None => inflation,
                    Some(q) => q + alpha * (inflation - q),
                });
            }
        }

        // Loss signal.
        let seg_estimate = (summary.bytes / 1448).max(1) as f64;
        let retx_frac = f64::from(summary.retransmits) / seg_estimate;
        st.retx_ewma = Some(match st.retx_ewma {
            None => retx_frac,
            Some(r) => r + alpha * (retx_frac - r),
        });

        if !capacity_cfgd {
            let rate = st.windowed_rate(now_ns, window);
            st.learned_capacity = st.learned_capacity.max(rate);
        }
    }

    /// Recent retransmission fraction on `path` (loss-rate proxy).
    pub fn loss_signal(&self, path: PathKey) -> Option<f64> {
        self.paths.get(&path).and_then(|s| s.retx_ewma)
    }

    /// Lifetime (lookups, reports) counters for `path`.
    pub fn traffic_counters(&self, path: PathKey) -> (u64, u64) {
        self.paths
            .get(&path)
            .map(|s| (s.lookups, s.reports))
            .unwrap_or((0, 0))
    }

    /// Number of paths with state.
    pub fn path_count(&self) -> usize {
        self.paths.len()
    }

    /// A dashboard snapshot: every known path with its current context,
    /// sorted by utilization (busiest first).
    pub fn snapshot(&self, now_ns: u64) -> Vec<(PathKey, ContextSnapshot)> {
        let mut out: Vec<(PathKey, ContextSnapshot)> = self
            .paths
            .keys()
            .map(|&k| (k, self.peek(k, now_ns)))
            .collect();
        out.sort_by(|a, b| {
            b.1.utilization
                .total_cmp(&a.1.utilization)
                .then(a.0.cmp(&b.0))
        });
        out
    }

    /// Serialize the complete store state — configuration, every path's
    /// aggregates, registrations and counters — plus the server's
    /// `epoch`, into a versioned binary blob.
    ///
    /// Paths are written in key order, so the encoding is a pure
    /// function of the state: byte-identical stores produce
    /// byte-identical blobs (which is what lets e2e tests digest them).
    /// [`ContextStore::decode_snapshot`] inverts it losslessly.
    pub fn encode_snapshot(&self, epoch: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.paths.len() * 96);
        out.push(SNAPSHOT_VERSION);
        out.extend_from_slice(&epoch.to_be_bytes());
        out.extend_from_slice(&self.cfg.window_ns.to_be_bytes());
        match self.cfg.capacity_bps {
            Some(cap) => {
                out.push(1);
                out.extend_from_slice(&cap.to_bits().to_be_bytes());
            }
            None => out.push(0),
        }
        out.extend_from_slice(&self.cfg.queue_alpha.to_bits().to_be_bytes());

        let mut keys: Vec<PathKey> = self.paths.keys().copied().collect();
        keys.sort_unstable();
        out.extend_from_slice(&(keys.len() as u32).to_be_bytes());
        for key in keys {
            let st = &self.paths[&key];
            out.extend_from_slice(&key.0.to_be_bytes());
            out.extend_from_slice(&st.active.to_be_bytes());
            out.extend_from_slice(&st.reports.to_be_bytes());
            out.extend_from_slice(&st.lookups.to_be_bytes());
            out.extend_from_slice(&st.learned_capacity.to_bits().to_be_bytes());
            let flags = u8::from(st.queue_ms.is_some())
                | u8::from(st.min_rtt_ms.is_some()) << 1
                | u8::from(st.retx_ewma.is_some()) << 2;
            out.push(flags);
            for v in [st.queue_ms, st.min_rtt_ms, st.retx_ewma]
                .into_iter()
                .flatten()
            {
                out.extend_from_slice(&v.to_bits().to_be_bytes());
            }
            out.extend_from_slice(&(st.recent.len() as u32).to_be_bytes());
            for &(end, bytes, dur) in &st.recent {
                out.extend_from_slice(&end.to_be_bytes());
                out.extend_from_slice(&bytes.to_be_bytes());
                out.extend_from_slice(&dur.to_be_bytes());
            }
        }
        out
    }

    /// Restore a store (and the epoch it was snapshotted at) from a blob
    /// produced by [`ContextStore::encode_snapshot`].
    ///
    /// A blob from a *future* format version yields
    /// [`SnapshotError::UnsupportedVersion`] — a clean typed error, never
    /// a partially-applied store.
    pub fn decode_snapshot(blob: &[u8]) -> Result<(ContextStore, u64), SnapshotError> {
        let mut r = SnapReader { buf: blob, at: 0 };
        let version = r.u8()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let epoch = r.u64()?;
        let window_ns = r.u64()?;
        let capacity_bps = match r.u8()? {
            0 => None,
            1 => Some(r.f64()?),
            _ => return Err(SnapshotError::Malformed("capacity flag")),
        };
        let queue_alpha = r.f64()?;
        let n_paths = r.u32()? as usize;
        let mut paths = HashMap::with_capacity(n_paths);
        for _ in 0..n_paths {
            let key = PathKey(r.u64()?);
            let active = r.u32()?;
            let reports = r.u64()?;
            let lookups = r.u64()?;
            let learned_capacity = r.f64()?;
            let flags = r.u8()?;
            if flags & !0b111 != 0 {
                return Err(SnapshotError::Malformed("unknown path flags"));
            }
            let queue_ms = if flags & 1 != 0 { Some(r.f64()?) } else { None };
            let min_rtt_ms = if flags & 2 != 0 { Some(r.f64()?) } else { None };
            let retx_ewma = if flags & 4 != 0 { Some(r.f64()?) } else { None };
            let n_recent = r.u32()? as usize;
            // Guard against a corrupt count asking for more entries than
            // the remaining bytes could possibly hold.
            if r.remaining() < n_recent.saturating_mul(24) {
                return Err(SnapshotError::Truncated);
            }
            let mut recent = VecDeque::with_capacity(n_recent);
            for _ in 0..n_recent {
                recent.push_back((r.u64()?, r.u64()?, r.u64()?));
            }
            if paths
                .insert(
                    key,
                    PathState {
                        active,
                        recent,
                        queue_ms,
                        min_rtt_ms,
                        learned_capacity,
                        reports,
                        lookups,
                        retx_ewma,
                    },
                )
                .is_some()
            {
                return Err(SnapshotError::Malformed("duplicate path key"));
            }
        }
        if r.remaining() != 0 {
            return Err(SnapshotError::Malformed("trailing bytes"));
        }
        Ok((
            ContextStore {
                cfg: StoreConfig {
                    window_ns,
                    capacity_bps,
                    queue_alpha,
                },
                paths,
            },
            epoch,
        ))
    }
}

/// Version byte leading every snapshot blob. Independent of the wire
/// protocol version: the blob may be written to disk and restored by a
/// later build.
pub const SNAPSHOT_VERSION: u8 = 1;

/// Why a snapshot blob could not be restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The blob was written by a format version this build doesn't know.
    UnsupportedVersion(u8),
    /// The blob ends before the structure it promises.
    Truncated,
    /// A field holds an impossible value.
    Malformed(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v}")
            }
            SnapshotError::Truncated => write!(f, "truncated snapshot"),
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Bounds-checked big-endian reader over a snapshot blob.
struct SnapReader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl SnapReader<'_> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    fn take<const N: usize>(&mut self) -> Result<[u8; N], SnapshotError> {
        let end = self.at.checked_add(N).ok_or(SnapshotError::Truncated)?;
        if end > self.buf.len() {
            return Err(SnapshotError::Truncated);
        }
        let mut out = [0u8; N];
        out.copy_from_slice(&self.buf[self.at..end]);
        self.at = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take::<1>()?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_be_bytes(self.take::<4>()?))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_be_bytes(self.take::<8>()?))
    }

    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(u64::from_be_bytes(self.take::<8>()?)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    fn summary(bytes: u64, dur_s: f64, mean_rtt: f64, min_rtt: f64) -> FlowSummary {
        FlowSummary {
            bytes,
            duration_ns: (dur_s * 1e9) as u64,
            mean_rtt_ms: mean_rtt,
            min_rtt_ms: min_rtt,
            retransmits: 0,
            timeouts: 0,
        }
    }

    #[test]
    fn empty_store_returns_zero_context() {
        let mut s = ContextStore::new(StoreConfig::default());
        let c = s.lookup(PathKey(1), SEC);
        assert_eq!(c.utilization, 0.0);
        assert_eq!(c.queue_ms, 0.0);
        assert_eq!(c.competing, 0);
    }

    #[test]
    fn lookups_count_competing_senders() {
        let mut s = ContextStore::new(StoreConfig::default());
        s.lookup(PathKey(1), SEC);
        s.lookup(PathKey(1), SEC);
        let c = s.lookup(PathKey(1), SEC);
        // Two earlier lookups still active.
        assert_eq!(c.competing, 2);
        // Reports release slots.
        s.report(PathKey(1), 2 * SEC, &summary(1_000_000, 1.0, 160.0, 150.0));
        let c = s.peek(PathKey(1), 2 * SEC);
        assert_eq!(c.competing, 2); // 3 active - 1 reported
    }

    #[test]
    fn utilization_against_configured_capacity() {
        let mut s = ContextStore::new(StoreConfig {
            window_ns: 10 * SEC,
            capacity_bps: Some(10_000_000.0),
            queue_alpha: 0.3,
        });
        // One connection delivered 5_000_000 bytes over the last 4 s
        // = 40 Mbit over a 10 s window = 4 Mbit/s = 40% of 10 Mbit/s.
        s.lookup(PathKey(7), 6 * SEC);
        s.report(PathKey(7), 10 * SEC, &summary(5_000_000, 4.0, 160.0, 150.0));
        let c = s.peek(PathKey(7), 10 * SEC);
        assert!((c.utilization - 0.4).abs() < 0.01, "u = {}", c.utilization);
    }

    #[test]
    fn old_reports_age_out() {
        let mut s = ContextStore::new(StoreConfig {
            window_ns: 10 * SEC,
            capacity_bps: Some(10_000_000.0),
            queue_alpha: 0.3,
        });
        s.report(PathKey(1), 10 * SEC, &summary(5_000_000, 4.0, 160.0, 150.0));
        assert!(s.peek(PathKey(1), 10 * SEC).utilization > 0.3);
        // 30 s later the report is outside the window.
        assert_eq!(s.peek(PathKey(1), 40 * SEC).utilization, 0.0);
    }

    #[test]
    fn partial_window_overlap_prorates() {
        let mut s = ContextStore::new(StoreConfig {
            window_ns: 10 * SEC,
            capacity_bps: Some(8_000_000.0),
            queue_alpha: 0.3,
        });
        // Connection ran 0..20 s, delivering 20 Mbytes (8 Mbit/s).
        // At t=20 s, only 10 s of it overlaps a 10 s window: rate = 8 Mbit/s.
        s.report(
            PathKey(1),
            20 * SEC,
            &summary(20_000_000, 20.0, 160.0, 150.0),
        );
        let c = s.peek(PathKey(1), 20 * SEC);
        assert!((c.utilization - 1.0).abs() < 0.01, "u = {}", c.utilization);
    }

    #[test]
    fn queue_estimate_is_rtt_inflation_ewma() {
        let mut s = ContextStore::new(StoreConfig::default());
        let p = PathKey(2);
        s.report(p, SEC, &summary(1_000_000, 1.0, 170.0, 150.0)); // inflation 20
        let c = s.peek(p, SEC);
        assert!((c.queue_ms - 20.0).abs() < 1e-9);
        s.report(p, 2 * SEC, &summary(1_000_000, 1.0, 190.0, 150.0)); // inflation 40
        let c = s.peek(p, 2 * SEC);
        // EWMA(0.3): 20 + 0.3*(40-20) = 26.
        assert!((c.queue_ms - 26.0).abs() < 1e-9, "q = {}", c.queue_ms);
    }

    #[test]
    fn min_rtt_is_global_min_across_reports() {
        let mut s = ContextStore::new(StoreConfig::default());
        let p = PathKey(3);
        s.report(p, SEC, &summary(1_000, 0.1, 200.0, 180.0));
        s.report(p, 2 * SEC, &summary(1_000, 0.1, 200.0, 150.0));
        // Third report's inflation is measured against min 150.
        s.report(p, 3 * SEC, &summary(1_000, 0.1, 165.0, 160.0));
        let c = s.peek(p, 3 * SEC);
        assert!(c.queue_ms > 0.0);
    }

    #[test]
    fn capacity_learned_from_peak_rate() {
        let mut s = ContextStore::new(StoreConfig {
            window_ns: 10 * SEC,
            capacity_bps: None,
            queue_alpha: 0.3,
        });
        let p = PathKey(4);
        // Peak epoch: 12.5 Mbyte in the window = 10 Mbit/s.
        s.report(p, 10 * SEC, &summary(12_500_000, 10.0, 160.0, 150.0));
        // Quiet epoch much later: 1.25 Mbyte = 1 Mbit/s → u should be ~0.1.
        s.report(p, 100 * SEC, &summary(1_250_000, 10.0, 160.0, 150.0));
        let c = s.peek(p, 100 * SEC);
        assert!(
            (c.utilization - 0.1).abs() < 0.03,
            "u = {} (learned capacity should pin to peak)",
            c.utilization
        );
    }

    #[test]
    fn loss_signal_tracks_retransmit_fraction() {
        let mut s = ContextStore::new(StoreConfig::default());
        let p = PathKey(5);
        assert_eq!(s.loss_signal(p), None);
        let mut sm = summary(1_448_000, 1.0, 160.0, 150.0); // 1000 segments
        sm.retransmits = 40;
        s.report(p, SEC, &sm);
        let l = s.loss_signal(p).unwrap();
        assert!((l - 0.04).abs() < 1e-9, "loss {l}");
    }

    #[test]
    fn snapshot_lists_paths_busiest_first() {
        let mut s = ContextStore::new(StoreConfig {
            window_ns: 10 * SEC,
            capacity_bps: Some(10_000_000.0),
            queue_alpha: 0.3,
        });
        s.report(PathKey(1), 10 * SEC, &summary(1_000_000, 4.0, 160.0, 150.0));
        s.report(PathKey(2), 10 * SEC, &summary(8_000_000, 4.0, 160.0, 150.0));
        s.lookup(PathKey(3), 10 * SEC);
        let snap = s.snapshot(10 * SEC);
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].0, PathKey(2), "busiest first");
        assert!(snap[0].1.utilization > snap[1].1.utilization);
        assert_eq!(snap[2].1.utilization, 0.0);
    }

    fn populated_store() -> ContextStore {
        let mut s = ContextStore::new(StoreConfig {
            window_ns: 10 * SEC,
            capacity_bps: Some(10_000_000.0),
            queue_alpha: 0.3,
        });
        s.lookup(PathKey(1), SEC);
        s.lookup(PathKey(1), 2 * SEC);
        s.report(PathKey(1), 3 * SEC, &summary(5_000_000, 2.0, 170.0, 150.0));
        s.lookup(PathKey(9), 4 * SEC);
        let mut sm = summary(1_448_000, 1.0, 200.0, 180.0);
        sm.retransmits = 12;
        s.report(PathKey(9), 5 * SEC, &sm);
        s.lookup(PathKey(u64::MAX), 6 * SEC);
        s
    }

    #[test]
    fn snapshot_roundtrips_losslessly() {
        let store = populated_store();
        let blob = store.encode_snapshot(7);
        let (back, epoch) = ContextStore::decode_snapshot(&blob).expect("decode");
        assert_eq!(epoch, 7);
        assert_eq!(back, store);
        // And the restored store serves identical contexts.
        for key in [PathKey(1), PathKey(9), PathKey(u64::MAX)] {
            assert_eq!(back.peek(key, 6 * SEC), store.peek(key, 6 * SEC));
        }
        // Deterministic encoding: same state, same bytes.
        assert_eq!(store.encode_snapshot(7), blob);
    }

    #[test]
    fn empty_store_snapshot_roundtrips() {
        let store = ContextStore::new(StoreConfig::default());
        let (back, epoch) = ContextStore::decode_snapshot(&store.encode_snapshot(1)).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(back, store);
    }

    #[test]
    fn future_snapshot_version_is_a_typed_error() {
        let mut blob = populated_store().encode_snapshot(3);
        blob[0] = SNAPSHOT_VERSION + 1;
        assert_eq!(
            ContextStore::decode_snapshot(&blob),
            Err(SnapshotError::UnsupportedVersion(SNAPSHOT_VERSION + 1))
        );
    }

    #[test]
    fn truncated_snapshot_is_a_typed_error() {
        let blob = populated_store().encode_snapshot(3);
        for cut in [0, 1, 5, blob.len() / 2, blob.len() - 1] {
            let err = ContextStore::decode_snapshot(&blob[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated | SnapshotError::UnsupportedVersion(_)
                ),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut blob = populated_store().encode_snapshot(3);
        blob.push(0);
        assert_eq!(
            ContextStore::decode_snapshot(&blob),
            Err(SnapshotError::Malformed("trailing bytes"))
        );
    }

    #[test]
    fn paths_are_independent() {
        let mut s = ContextStore::new(StoreConfig::default());
        s.lookup(PathKey(1), SEC);
        s.report(PathKey(2), SEC, &summary(1_000_000, 1.0, 170.0, 150.0));
        assert_eq!(s.peek(PathKey(1), SEC).queue_ms, 0.0);
        assert_eq!(s.peek(PathKey(2), SEC).competing, 0);
        assert_eq!(s.path_count(), 2);
        assert_eq!(s.traffic_counters(PathKey(1)), (1, 0));
        assert_eq!(s.traffic_counters(PathKey(2)), (0, 1));
    }
}
