//! Informed adaptation without cooperation (§3.2).
//!
//! When the majority of senders do not cooperate, FIFO queueing means the
//! congestion state itself cannot be improved — but a minority that shares
//! information can still *adapt* to the observed network better than a
//! blind host:
//!
//! * [`JitterBufferAdvisor`] — initialize (and keep updating) an A/V
//!   jitter buffer from the delay-variation distribution observed by
//!   *other* connections to the same place, instead of starting from a
//!   guess.
//! * [`ReorderingAdvisor`] — raise the duplicate-ACK threshold above 3
//!   when the shared experience says reordering is common (spurious fast
//!   retransmits), and keep it low when it isn't.

use serde::{Deserialize, Serialize};

/// A bounded reservoir of delay-variation samples with quantile queries.
///
/// Keeps the most recent `capacity` samples (ring buffer); quantiles are
/// computed exactly over the retained window — the right behaviour for a
/// "network weather" signal where old samples should age out.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JitterBufferAdvisor {
    samples: Vec<f64>,
    capacity: usize,
    next: usize,
    /// Safety margin multiplier applied to the recommended percentile.
    margin: f64,
}

impl JitterBufferAdvisor {
    /// An advisor retaining up to `capacity` samples with a safety
    /// `margin` multiplier (e.g. 1.2 = 20 % headroom).
    pub fn new(capacity: usize, margin: f64) -> Self {
        assert!(capacity >= 8, "capacity too small to be meaningful");
        assert!(margin >= 1.0, "margin must not shrink the estimate");
        JitterBufferAdvisor {
            samples: Vec::with_capacity(capacity),
            capacity,
            next: 0,
            margin,
        }
    }

    /// Record one delay-variation sample (milliseconds), e.g. the RTT
    /// inflation a finished connection reported.
    pub fn record(&mut self, jitter_ms: f64) {
        if !jitter_ms.is_finite() || jitter_ms < 0.0 {
            return;
        }
        if self.samples.len() < self.capacity {
            self.samples.push(jitter_ms);
        } else {
            self.samples[self.next] = jitter_ms;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of retained samples, if any.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(sorted[idx])
    }

    /// Recommended initial jitter-buffer depth in milliseconds: the 95th
    /// percentile of observed delay variation times the safety margin.
    /// `None` until there is shared experience to draw on.
    pub fn recommend_ms(&self) -> Option<f64> {
        self.quantile(0.95).map(|p| p * self.margin)
    }
}

/// Observations about packet reordering, aggregated across connections.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ReorderingStats {
    /// Fast-retransmit episodes observed.
    pub recoveries: u64,
    /// Of those, episodes later revealed spurious (the "lost" segment
    /// arrived anyway — receivers count these as duplicate data segments).
    pub spurious: u64,
}

/// Tunes the duplicate-ACK threshold from shared reordering experience.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ReorderingAdvisor {
    /// Spurious fraction above which the threshold is raised one step.
    pub step_threshold: f64,
    /// Ceiling for the recommended threshold.
    pub max_threshold: u32,
}

impl Default for ReorderingAdvisor {
    fn default() -> Self {
        ReorderingAdvisor {
            step_threshold: 0.05,
            max_threshold: 8,
        }
    }
}

impl ReorderingAdvisor {
    /// Recommended duplicate-ACK threshold given shared `stats`.
    ///
    /// Starts from the classic 3 and adds one step for each factor-of-two
    /// the spurious fraction exceeds `step_threshold`, capped at
    /// `max_threshold`. With few observations (< 20 recoveries) it stays
    /// at 3 — no evidence, no deviation.
    pub fn recommend(&self, stats: &ReorderingStats) -> u32 {
        if stats.recoveries < 20 {
            return 3;
        }
        let frac = stats.spurious as f64 / stats.recoveries as f64;
        if frac < self.step_threshold {
            return 3;
        }
        let steps = (frac / self.step_threshold).log2().floor() as u32 + 1;
        (3 + steps).min(self.max_threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_advisor_tracks_p95() {
        let mut a = JitterBufferAdvisor::new(1024, 1.0);
        assert!(a.recommend_ms().is_none());
        for i in 0..100 {
            a.record(i as f64); // 0..99 ms uniformly
        }
        let rec = a.recommend_ms().unwrap();
        assert!((rec - 94.0).abs() <= 1.0, "p95 of 0..99 ≈ 94, got {rec}");
        assert_eq!(a.len(), 100);
    }

    #[test]
    fn jitter_margin_applies() {
        let mut a = JitterBufferAdvisor::new(64, 1.5);
        for _ in 0..50 {
            a.record(10.0);
        }
        assert!((a.recommend_ms().unwrap() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn jitter_ring_ages_out_old_samples() {
        let mut a = JitterBufferAdvisor::new(8, 1.0);
        for _ in 0..8 {
            a.record(100.0);
        }
        // Overwrite the whole ring with small samples.
        for _ in 0..8 {
            a.record(1.0);
        }
        assert!((a.recommend_ms().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn jitter_rejects_garbage() {
        let mut a = JitterBufferAdvisor::new(8, 1.0);
        a.record(f64::NAN);
        a.record(-5.0);
        a.record(f64::INFINITY);
        assert!(a.is_empty());
    }

    #[test]
    fn reordering_advisor_defaults_to_three() {
        let adv = ReorderingAdvisor::default();
        // No evidence.
        assert_eq!(
            adv.recommend(&ReorderingStats {
                recoveries: 5,
                spurious: 5
            }),
            3
        );
        // Low reordering.
        assert_eq!(
            adv.recommend(&ReorderingStats {
                recoveries: 1000,
                spurious: 10
            }),
            3
        );
    }

    #[test]
    fn reordering_advisor_scales_with_prevalence() {
        let adv = ReorderingAdvisor::default();
        let at = |spurious| {
            adv.recommend(&ReorderingStats {
                recoveries: 1000,
                spurious,
            })
        };
        let mild = at(60); // 6 %
        let heavy = at(400); // 40 %
        assert!(mild > 3);
        assert!(heavy > mild);
        assert!(heavy <= adv.max_threshold);
    }

    #[test]
    fn reordering_advisor_caps() {
        let adv = ReorderingAdvisor {
            step_threshold: 0.01,
            max_threshold: 6,
        };
        let rec = adv.recommend(&ReorderingStats {
            recoveries: 1000,
            spurious: 990,
        });
        assert_eq!(rec, 6);
    }
}
