//! A real context server over TCP, and its blocking clients.
//!
//! The in-simulation hooks talk to a [`crate::context::ContextStore`]
//! directly; a production Phi deployment runs one (or a few) context
//! servers per domain. [`ContextServer`] is that service: a threaded TCP
//! server speaking the [`crate::wire`] protocol over a store shared with
//! `parking_lot::RwLock`. It is deliberately runtime-agnostic (std::net +
//! threads): the request rate is one lookup + one report per *connection*
//! of the data plane, so a handful of OS threads is ample, and the library
//! stays free of any async-runtime dependency.
//!
//! Lifecycle: [`ContextServer::start`] binds and serves;
//! [`ContextServer::shutdown`] stops accepting, unblocks handlers via read
//! timeouts, and joins every thread.
//!
//! ## Failure model (the §2.2.2 resilience contract)
//!
//! The paper's practical design *assumes* the context plane can be stale
//! or unavailable: a sender must behave no worse than vanilla TCP when the
//! server is slow, flapping, or gone. The client side therefore enforces
//! three rules:
//!
//! 1. **Deadline** — every [`ContextClient`] call returns within its
//!    configured [`ClientConfig::request_deadline`] (reads *and* writes
//!    are bounded), failing with [`ClientError::Deadline`] rather than
//!    blocking the sender.
//! 2. **Poisoning** — any mid-request I/O or framing failure leaves the
//!    connection in an unknown state (the request may already be on the
//!    wire, its reply still in flight), so the connection is *poisoned*:
//!    every later call fails fast with [`ClientError::Poisoned`] instead
//!    of pairing a stale reply with a fresh request. Reconnect to recover.
//! 3. **Degradation** — [`ResilientClient`] wraps reconnection with
//!    bounded retries, exponential backoff with deterministic jitter, and
//!    a circuit breaker; on any exhausted failure it returns "no context"
//!    (`None`) so the caller falls back to default behaviour.
//!
//! The server sheds load instead of queueing it: past
//! [`ServerConfig::max_connections`] concurrent connections, a new
//! connection is answered with one `ERROR 503` (overload) frame and
//! closed, and [`ServerStats::rejected`] counts the shed connections.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use phi_tcp::hook::ContextSnapshot;

use crate::context::{ContextStore, FlowSummary, PathKey, SnapshotError, StoreConfig};
use crate::shard::shard_index;
use crate::wire::{code, encode, DecodeError, Decoder, Message, ReplOp, Role};

/// A thread-safe context store handle, shared by server handlers and any
/// in-process instrumentation.
pub type SyncStore = Arc<RwLock<ContextStore>>;

/// Wrap a store for cross-thread sharing.
pub fn sync_store(store: ContextStore) -> SyncStore {
    Arc::new(RwLock::new(store))
}

/// Server-side counters, readable while running.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted and served.
    pub connections: AtomicU64,
    /// Connections shed with an overload error frame (cap reached).
    pub rejected: AtomicU64,
    /// Lookup requests served (a batch query adds one per path).
    pub lookups: AtomicU64,
    /// Reports accepted (a batch report adds one per item).
    pub reports: AtomicU64,
    /// Protocol errors answered.
    pub protocol_errors: AtomicU64,
    /// Requests rejected with `409 FENCED` (stale epoch or not primary).
    pub fenced: AtomicU64,
    /// Replicated ops applied (as a backup).
    pub repl_applied: AtomicU64,
    /// Full snapshot syncs accepted (as a backup).
    pub repl_syncs: AtomicU64,
    /// Deltas + snapshots this server shipped to backups (as a primary).
    pub repl_sent: AtomicU64,
}

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Concurrent connections served before new ones are shed with an
    /// overload frame. Bounds handler threads and protects the store.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 1024,
        }
    }
}

/// High-availability settings for [`ContextServer::start_ha`]. Kept out
/// of [`ServerConfig`] so plain single-server deployments are untouched.
#[derive(Debug, Clone)]
pub struct HaOptions {
    /// Fencing token this server starts at. A restarted server must pass
    /// an epoch strictly greater than the one it crashed at (restore it
    /// from the snapshot blob and add one).
    pub epoch: u64,
    /// Role at startup. A [`Role::Backup`] fences every client request
    /// until promoted or until a higher-epoch primary syncs it.
    pub role: Role,
    /// Backup servers a primary streams deltas to. Empty = no replication.
    pub backups: Vec<SocketAddr>,
    /// Timeouts for the replication client connections.
    pub repl_client: ClientConfig,
}

impl Default for HaOptions {
    fn default() -> Self {
        HaOptions {
            epoch: 1,
            role: Role::Primary,
            backups: Vec::new(),
            repl_client: ClientConfig::default(),
        }
    }
}

const ROLE_PRIMARY_U8: u8 = 1;
const ROLE_BACKUP_U8: u8 = 2;

/// Epoch + role, shared between the accept loop, every handler, and the
/// replication thread. The epoch is the *fencing token*: all mutating
/// traffic (client requests on a primary, replication on a backup)
/// carries it, and the lower side always loses.
#[derive(Debug)]
struct HaShared {
    epoch: AtomicU64,
    role: AtomicU8,
}

impl HaShared {
    fn new(epoch: u64, role: Role) -> Self {
        HaShared {
            epoch: AtomicU64::new(epoch),
            role: AtomicU8::new(role_to_u8(role)),
        }
    }

    fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    fn role(&self) -> Role {
        role_from_u8(self.role.load(Ordering::Acquire))
    }

    fn set(&self, epoch: u64, role: Role) {
        self.epoch.store(epoch, Ordering::Release);
        self.role.store(role_to_u8(role), Ordering::Release);
    }
}

fn role_to_u8(role: Role) -> u8 {
    match role {
        Role::Primary => ROLE_PRIMARY_U8,
        Role::Backup => ROLE_BACKUP_U8,
    }
}

fn role_from_u8(v: u8) -> Role {
    if v == ROLE_PRIMARY_U8 {
        Role::Primary
    } else {
        Role::Backup
    }
}

/// Entries the replication thread has not yet confirmed on every backup.
/// Appends happen *while the handler holds the store write lock*, so a
/// snapshot taken under the store read lock together with this lock is
/// consistent with a log position (`next_seq - 1`).
#[derive(Debug, Default)]
struct ReplLog {
    next_seq: u64,
    entries: VecDeque<(u64, ReplOp)>,
}

/// Entries kept before the oldest are dropped; a backup that has fallen
/// further behind than this is resynced with a full snapshot.
const MAX_REPL_LOG: usize = 4096;

impl ReplLog {
    fn append(&mut self, op: ReplOp) {
        self.next_seq += 1;
        self.entries.push_back((self.next_seq, op));
        while self.entries.len() > MAX_REPL_LOG {
            self.entries.pop_front();
        }
    }

    /// Drop entries every synced backup has acknowledged.
    fn prune(&mut self, acked: u64) {
        while self.entries.front().is_some_and(|&(seq, _)| seq <= acked) {
            self.entries.pop_front();
        }
    }
}

/// One shard of the serving state: its own store (behind its own lock),
/// its own replication log, and its own fencing epoch/role — so shards
/// fail over independently and never contend on each other's locks.
/// A classic single-store server is exactly a one-shard server.
#[derive(Clone)]
struct ShardState {
    store: SyncStore,
    ha: Arc<HaShared>,
    log: Arc<Mutex<ReplLog>>,
}

/// Which shard serves `path`. Every route in the server goes through
/// this, so a path's store, log entries, and fencing epoch always live
/// together on one shard.
fn shard_for(shards: &[ShardState], path: PathKey) -> &ShardState {
    &shards[shard_index(path, shards.len())]
}

/// A running context server.
pub struct ContextServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    repl_thread: Option<std::thread::JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    stats: Arc<ServerStats>,
    shards: Arc<Vec<ShardState>>,
}

/// How long handler reads block before re-checking the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Decrements the active-connection gauge when a handler exits, however
/// it exits.
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

impl ContextServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// requests against `store` with default [`ServerConfig`]. Timestamps
    /// handed to the store are nanoseconds since server start.
    pub fn start(addr: impl ToSocketAddrs, store: SyncStore) -> std::io::Result<ContextServer> {
        Self::start_with(addr, store, ServerConfig::default())
    }

    /// [`ContextServer::start`] with explicit tuning.
    pub fn start_with(
        addr: impl ToSocketAddrs,
        store: SyncStore,
        config: ServerConfig,
    ) -> std::io::Result<ContextServer> {
        Self::start_ha(addr, store, config, HaOptions::default())
    }

    /// Start a replica: serve at `ha.epoch` in `ha.role`, streaming state
    /// deltas to `ha.backups` (when primary). A plain
    /// [`ContextServer::start`] is exactly `start_ha` with the default
    /// [`HaOptions`] — a lone primary at epoch 1.
    pub fn start_ha(
        addr: impl ToSocketAddrs,
        store: SyncStore,
        config: ServerConfig,
        ha: HaOptions,
    ) -> std::io::Result<ContextServer> {
        let shard = ShardState {
            store,
            ha: Arc::new(HaShared::new(ha.epoch, ha.role)),
            log: Arc::new(Mutex::new(ReplLog::default())),
        };
        let repl = (!ha.backups.is_empty()).then_some((ha.backups, ha.repl_client));
        Self::launch(addr, vec![shard], config, repl)
    }

    /// Start a sharded server: `shards` independent stores (at least one),
    /// each configured with `cfg` and carrying its own lock, replication
    /// log, and fencing epoch. Requests route by
    /// [`shard_index`]`(path, shards)`, so batch traffic for disjoint
    /// paths never serializes on one lock. Every shard starts as a lone
    /// primary at epoch 1; for a sharded deployment with backups, use
    /// [`ContextServer::start_sharded_ha`].
    pub fn start_sharded(
        addr: impl ToSocketAddrs,
        cfg: StoreConfig,
        config: ServerConfig,
        shards: usize,
    ) -> std::io::Result<ContextServer> {
        Self::start_sharded_ha(addr, cfg, config, shards, HaOptions::default())
    }

    /// Start a sharded replica: `shards` independent stores, each serving
    /// at `ha.epoch` in `ha.role`, with every shard streamed to every
    /// address in `ha.backups`. Shard state syncs with the shard-scoped
    /// SHARD_SNAPSHOT_SYNC frame (falling back to the legacy whole-store
    /// frame when `shards == 1`), so a backup must be started with the
    /// *same* shard count — the delta stream routes by path and the two
    /// sides must agree on `shard_index`.
    pub fn start_sharded_ha(
        addr: impl ToSocketAddrs,
        cfg: StoreConfig,
        config: ServerConfig,
        shards: usize,
        ha: HaOptions,
    ) -> std::io::Result<ContextServer> {
        let shards = (0..shards.max(1))
            .map(|_| ShardState {
                store: sync_store(ContextStore::new(cfg)),
                ha: Arc::new(HaShared::new(ha.epoch, ha.role)),
                log: Arc::new(Mutex::new(ReplLog::default())),
            })
            .collect();
        let repl = (!ha.backups.is_empty()).then_some((ha.backups, ha.repl_client));
        Self::launch(addr, shards, config, repl)
    }

    fn launch(
        addr: impl ToSocketAddrs,
        shards: Vec<ShardState>,
        config: ServerConfig,
        repl: Option<(Vec<SocketAddr>, ClientConfig)>,
    ) -> std::io::Result<ContextServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let stats = Arc::new(ServerStats::default());
        let active = Arc::new(AtomicUsize::new(0));
        let started = Instant::now();
        let shards = Arc::new(shards);

        let accept_thread = {
            let shutdown = shutdown.clone();
            let handlers = handlers.clone();
            let stats = stats.clone();
            let shards = shards.clone();
            std::thread::Builder::new()
                .name("phi-ctx-accept".into())
                .spawn(move || {
                    while !shutdown.load(Ordering::Acquire) {
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                reap_finished(&handlers);
                                if active.load(Ordering::Acquire) >= config.max_connections {
                                    stats.rejected.fetch_add(1, Ordering::Relaxed);
                                    shed_connection(stream);
                                    continue;
                                }
                                stats.connections.fetch_add(1, Ordering::Relaxed);
                                active.fetch_add(1, Ordering::AcqRel);
                                let guard = ConnGuard(active.clone());
                                let shutdown = shutdown.clone();
                                let stats = stats.clone();
                                let shards = shards.clone();
                                let handle = std::thread::Builder::new()
                                    .name("phi-ctx-conn".into())
                                    .spawn(move || {
                                        let _guard = guard;
                                        handle_connection(stream, shards, stats, shutdown, started)
                                    })
                                    .expect("spawn handler thread");
                                handlers.lock().push(handle);
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(POLL_INTERVAL);
                            }
                            Err(_) => break,
                        }
                    }
                })
                .expect("spawn accept thread")
        };

        // Replication: one thread streams every shard to every backup.
        let repl_thread = repl.map(|(backups, repl_client)| {
            let shutdown = shutdown.clone();
            let stats = stats.clone();
            let shards = shards.clone();
            std::thread::Builder::new()
                .name("phi-ctx-repl".into())
                .spawn(move || replicate_to_backups(&backups, repl_client, shards, stats, shutdown))
                .expect("spawn replication thread")
        });

        Ok(ContextServer {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
            repl_thread,
            handlers,
            stats,
            shards,
        })
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live server counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The fencing epoch this server currently serves at — for a sharded
    /// server, the *lowest* epoch across shards (the conservative answer
    /// a health probe should see).
    pub fn epoch(&self) -> u64 {
        self.shards.iter().map(|s| s.ha.epoch()).min().unwrap_or(1)
    }

    /// The role this server currently plays: primary only if *every*
    /// shard is primary (a single-shard server is just that shard).
    pub fn role(&self) -> Role {
        if self.shards.iter().all(|s| s.ha.role() == Role::Primary) {
            Role::Primary
        } else {
            Role::Backup
        }
    }

    /// Number of independent shards this server serves (1 unless started
    /// with [`ContextServer::start_sharded`]).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shard `shard`'s fencing epoch.
    pub fn epoch_of(&self, shard: usize) -> u64 {
        self.shards[shard].ha.epoch()
    }

    /// Shard `shard`'s role.
    pub fn role_of(&self, shard: usize) -> Role {
        self.shards[shard].ha.role()
    }

    /// Promote this server to primary at `epoch`. Fails (returns `false`)
    /// unless `epoch` is strictly greater than the current one on *every*
    /// shard — the new epoch is what fences the deposed primary, so
    /// reusing the old value would invite split-brain.
    pub fn promote(&self, epoch: u64) -> bool {
        if self.shards.iter().any(|s| epoch <= s.ha.epoch()) {
            return false;
        }
        for s in self.shards.iter() {
            s.ha.set(epoch, Role::Primary);
        }
        true
    }

    /// Promote one shard to primary at `epoch` (strictly greater than the
    /// shard's current epoch). Shards fence independently, so promoting
    /// one never touches the others.
    pub fn promote_shard(&self, shard: usize, epoch: u64) -> bool {
        let ha = &self.shards[shard].ha;
        if epoch <= ha.epoch() {
            return false;
        }
        ha.set(epoch, Role::Primary);
        true
    }

    /// The full store state as a versioned snapshot blob (tagged with the
    /// current epoch) — what an operator persists before a planned
    /// restart, and what [`crate::context::ContextStore::decode_snapshot`]
    /// restores. On a sharded server this is shard 0; persist every shard
    /// with [`ContextServer::shard_snapshot_blob`].
    pub fn snapshot_blob(&self) -> Vec<u8> {
        self.shard_snapshot_blob(0)
    }

    /// Shard `shard`'s state as a snapshot blob tagged with *that shard's*
    /// epoch (shards fail over independently, so each blob carries its own
    /// fencing token).
    pub fn shard_snapshot_blob(&self, shard: usize) -> Vec<u8> {
        let s = &self.shards[shard];
        s.store.read().encode_snapshot(s.ha.epoch())
    }

    /// Shard `shard`'s unpruned replication log (sequence + op), for tests
    /// asserting that batch and single frames produce identical deltas.
    #[cfg(test)]
    fn repl_entries(&self, shard: usize) -> Vec<(u64, ReplOp)> {
        self.shards[shard]
            .log
            .lock()
            .entries
            .iter()
            .cloned()
            .collect()
    }

    /// Stop accepting, drain handlers, and join all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.repl_thread.take() {
            let _ = t.join();
        }
        let handlers = std::mem::take(&mut *self.handlers.lock());
        for h in handlers {
            let _ = h.join();
        }
    }
}

impl Drop for ContextServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Join handler threads that already returned, so long-lived servers with
/// connection churn don't accumulate an unbounded handle list.
fn reap_finished(handlers: &Mutex<Vec<std::thread::JoinHandle<()>>>) {
    let finished: Vec<_> = {
        let mut live = handlers.lock();
        let mut finished = Vec::new();
        let mut i = 0;
        while i < live.len() {
            if live[i].is_finished() {
                finished.push(live.swap_remove(i));
            } else {
                i += 1;
            }
        }
        finished
    };
    for h in finished {
        let _ = h.join();
    }
}

/// Turn away a connection at the cap: one overload frame, then close.
/// Best-effort and bounded — the accept loop must never block on a slow
/// or unreachable peer.
fn shed_connection(stream: TcpStream) {
    let mut stream = stream;
    let _ = stream.set_write_timeout(Some(POLL_INTERVAL));
    let _ = stream.write_all(&encode(&Message::Error {
        code: code::OVERLOADED,
        message: "server overloaded: connection cap reached".into(),
    }));
}

/// Apply a full-state snapshot blob to one shard, with the same epoch
/// fence as every other mutating path: stale epochs bounce with 409, an
/// equal epoch is refused while the shard itself is primary (two
/// primaries at one epoch must never both accept state).
fn apply_snapshot_sync(sh: &ShardState, epoch: u64, blob: &[u8], stats: &ServerStats) -> Message {
    if epoch < sh.ha.epoch() || (epoch == sh.ha.epoch() && sh.ha.role() == Role::Primary) {
        return fenced_reply(&sh.ha, stats, "snapshot sync from a stale epoch");
    }
    match ContextStore::decode_snapshot(blob) {
        Ok((restored, _blob_epoch)) => {
            sh.ha.set(epoch, Role::Backup);
            stats.repl_syncs.fetch_add(1, Ordering::Relaxed);
            *sh.store.write() = restored;
            Message::ReportOk
        }
        Err(SnapshotError::UnsupportedVersion(v)) => {
            stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            Message::Error {
                code: code::UNSUPPORTED,
                message: format!("snapshot version {v} not supported"),
            }
        }
        Err(e) => {
            stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            Message::Error {
                code: code::BAD_REQUEST,
                message: format!("bad snapshot blob: {e}"),
            }
        }
    }
}

/// One `409 FENCED` reply, naming the epoch the server is actually at so
/// the rejected peer can tell "I'm stale" from "you're a backup".
fn fenced_reply(ha: &HaShared, stats: &ServerStats, why: &str) -> Message {
    stats.fenced.fetch_add(1, Ordering::Relaxed);
    Message::Error {
        code: code::FENCED,
        message: format!("{why} (serving epoch {} as {:?})", ha.epoch(), ha.role()),
    }
}

fn handle_connection(
    stream: TcpStream,
    shards: Arc<Vec<ShardState>>,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
    started: Instant,
) {
    let mut stream = stream;
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut decoder = Decoder::new();
    let mut buf = [0u8; 4096];

    while !shutdown.load(Ordering::Acquire) {
        match stream.read(&mut buf) {
            Ok(0) => return, // peer closed
            Ok(n) => decoder.extend(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
        loop {
            let now_ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            let reply = match decoder.next() {
                // -- client data path: primary only ---------------------
                Ok(Message::Lookup { path }) => {
                    let sh = shard_for(&shards, path);
                    if sh.ha.role() != Role::Primary {
                        fenced_reply(&sh.ha, &stats, "lookup refused")
                    } else {
                        stats.lookups.fetch_add(1, Ordering::Relaxed);
                        let snap = {
                            let mut st = sh.store.write();
                            let snap = st.lookup(path, now_ns);
                            // Append under the store write lock so the log
                            // order matches the store's mutation order.
                            sh.log.lock().append(ReplOp::Lookup { path, now_ns });
                            snap
                        };
                        Message::Context(snap)
                    }
                }
                Ok(Message::Report { path, summary }) => {
                    let sh = shard_for(&shards, path);
                    if sh.ha.role() != Role::Primary {
                        fenced_reply(&sh.ha, &stats, "report refused")
                    } else {
                        stats.reports.fetch_add(1, Ordering::Relaxed);
                        {
                            let mut st = sh.store.write();
                            st.report(path, now_ns, &summary);
                            sh.log.lock().append(ReplOp::Report {
                                path,
                                now_ns,
                                summary,
                            });
                        }
                        Message::ReportOk
                    }
                }
                // -- batch data path: N items, one frame, one reply -----
                // Fencing is all-or-nothing: if any item's shard is not
                // primary the whole batch is refused *before* anything is
                // applied, so the client never has to untangle a
                // partially accepted frame.
                Ok(Message::BatchReport(items)) => {
                    let n = shards.len();
                    let fenced = items
                        .iter()
                        .map(|&(p, _)| shard_index(p, n))
                        .find(|&s| shards[s].ha.role() != Role::Primary);
                    match fenced {
                        Some(s) => fenced_reply(&shards[s].ha, &stats, "batch report refused"),
                        None => {
                            stats
                                .reports
                                .fetch_add(items.len() as u64, Ordering::Relaxed);
                            // Group by shard, then apply each shard's items
                            // in arrival order under ONE write lock — the
                            // log this produces is exactly what the same
                            // items sent as single frames would produce,
                            // so snapshot-then-delta catch-up can't tell
                            // batches from singles.
                            let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); n];
                            for (k, &(p, _)) in items.iter().enumerate() {
                                by_shard[shard_index(p, n)].push(k);
                            }
                            for (s, idxs) in by_shard.iter().enumerate() {
                                if idxs.is_empty() {
                                    continue;
                                }
                                let sh = &shards[s];
                                let mut st = sh.store.write();
                                let mut log = sh.log.lock();
                                for &k in idxs {
                                    let (path, summary) = items[k];
                                    st.report(path, now_ns, &summary);
                                    log.append(ReplOp::Report {
                                        path,
                                        now_ns,
                                        summary,
                                    });
                                }
                            }
                            Message::ReportOk
                        }
                    }
                }
                Ok(Message::BatchQuery(paths)) => {
                    let n = shards.len();
                    let fenced = paths
                        .iter()
                        .map(|&p| shard_index(p, n))
                        .find(|&s| shards[s].ha.role() != Role::Primary);
                    match fenced {
                        Some(s) => fenced_reply(&shards[s].ha, &stats, "batch query refused"),
                        None => {
                            stats
                                .lookups
                                .fetch_add(paths.len() as u64, Ordering::Relaxed);
                            // Read-only: peeks never register competing
                            // flows, so nothing is logged or replicated.
                            let snaps = paths
                                .iter()
                                .map(|&p| shard_for(&shards, p).store.read().peek(p, now_ns))
                                .collect();
                            Message::BatchReply(snaps)
                        }
                    }
                }
                Ok(Message::Snapshot { limit }) => {
                    if shards.iter().any(|s| s.ha.role() != Role::Primary) {
                        // The dashboard view spans every shard, so it is
                        // only served when all of them are primary.
                        fenced_reply(&shards[0].ha, &stats, "snapshot refused")
                    } else {
                        let mut paths: Vec<(PathKey, ContextSnapshot)> = shards
                            .iter()
                            .flat_map(|s| s.store.read().snapshot(now_ns))
                            .collect();
                        paths.sort_by(|(ka, a), (kb, b)| {
                            b.utilization.total_cmp(&a.utilization).then(ka.cmp(kb))
                        });
                        paths.truncate(usize::from(limit).min(crate::wire::MAX_SNAPSHOT_PATHS));
                        Message::Paths(paths)
                    }
                }
                // -- health/handshake: answered in any role -------------
                // A sharded server answers with its most conservative
                // view: the lowest shard epoch, primary only if every
                // shard is (a probe must not trust a half-deposed server).
                Ok(Message::EpochQuery) => Message::Epoch {
                    epoch: shards.iter().map(|s| s.ha.epoch()).min().unwrap_or(1),
                    role: if shards.iter().all(|s| s.ha.role() == Role::Primary) {
                        Role::Primary
                    } else {
                        Role::Backup
                    },
                },
                // -- replication stream: epoch-fenced, per shard --------
                Ok(Message::Replicate { epoch, seq: _, op }) => {
                    let path = match &op {
                        ReplOp::Lookup { path, .. } | ReplOp::Report { path, .. } => *path,
                    };
                    let sh = shard_for(&shards, path);
                    match epoch.cmp(&sh.ha.epoch()) {
                        std::cmp::Ordering::Less => {
                            fenced_reply(&sh.ha, &stats, "replication from a deposed primary")
                        }
                        std::cmp::Ordering::Equal if sh.ha.role() == Role::Primary => {
                            // Two primaries at one epoch must never both
                            // accept traffic; the replicator self-deposes
                            // on this reply.
                            fenced_reply(&sh.ha, &stats, "already primary at this epoch")
                        }
                        _ => {
                            // A (possibly newer) primary's delta: adopt
                            // its epoch, stay/become backup, apply. Only
                            // the op's own shard is touched — a delta for
                            // one shard can never depose another.
                            sh.ha.set(epoch, Role::Backup);
                            stats.repl_applied.fetch_add(1, Ordering::Relaxed);
                            let mut st = sh.store.write();
                            match op {
                                ReplOp::Lookup { path, now_ns } => {
                                    st.lookup(path, now_ns);
                                }
                                ReplOp::Report {
                                    path,
                                    now_ns,
                                    summary,
                                } => st.report(path, now_ns, &summary),
                            }
                            Message::ReportOk
                        }
                    }
                }
                Ok(Message::SnapshotSync { epoch, blob }) if shards.len() > 1 => {
                    // A whole-store snapshot blob cannot be split across
                    // shards without inventing state. Sharded receivers
                    // take SHARD_SNAPSHOT_SYNC, one blob per shard.
                    let _ = (epoch, blob);
                    stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    Message::Error {
                        code: code::UNSUPPORTED,
                        message: "whole-store snapshot sync addresses a single-shard \
                                  replica; sync a sharded server shard by shard with \
                                  SHARD_SNAPSHOT_SYNC"
                            .into(),
                    }
                }
                Ok(Message::SnapshotSync { epoch, blob }) => {
                    apply_snapshot_sync(&shards[0], epoch, &blob, &stats)
                }
                Ok(Message::ShardSnapshotSync { shard, epoch, blob }) => {
                    match shards.get(shard as usize) {
                        None => {
                            stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                            Message::Error {
                                code: code::BAD_REQUEST,
                                message: format!(
                                    "shard {shard} out of range ({} shards)",
                                    shards.len()
                                ),
                            }
                        }
                        Some(sh) => apply_snapshot_sync(sh, epoch, &blob, &stats),
                    }
                }
                Ok(other) => {
                    stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    Message::Error {
                        code: code::BAD_REQUEST,
                        message: format!("unexpected message: {other:?}"),
                    }
                }
                Err(DecodeError::Incomplete) => break,
                Err(e) if e.is_recoverable() => {
                    // Forward compatibility: a well-delimited frame of an
                    // unknown (future) type. The stream is still aligned,
                    // so answer 501 and keep serving the connection.
                    stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    Message::Error {
                        code: code::UNSUPPORTED,
                        message: e.to_string(),
                    }
                }
                Err(e) => {
                    stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    let _ = stream.write_all(&encode(&Message::Error {
                        code: code::MALFORMED,
                        message: e.to_string(),
                    }));
                    return; // framing is broken; drop the connection
                }
            };
            if stream.write_all(&encode(&reply)).is_err() {
                return;
            }
        }
    }
}

/// State of one primary → backup replication link.
struct BackupLink {
    addr: SocketAddr,
    conn: Option<ContextClient>,
    /// Highest log seq this backup has acknowledged, per shard. `None`
    /// until that shard's full snapshot sync establishes a baseline.
    acked: Vec<Option<u64>>,
}

/// The primary's replication loop: keep every backup within one snapshot
/// plus a tail of deltas of every shard's live store. Runs until
/// shutdown; a backup's `409 FENCED` reply (or a heartbeat revealing a
/// newer epoch) deposes the affected shard — role := backup, so that
/// shard can never again feed clients stale context — while the other
/// shards keep replicating.
///
/// Single-shard deployments sync with the legacy whole-store
/// SNAPSHOT_SYNC frame (old backups stay syncable); multi-shard
/// deployments use SHARD_SNAPSHOT_SYNC per shard, which requires the
/// backup to be sharded identically (the delta stream routes by path, so
/// shard counts must agree end to end).
fn replicate_to_backups(
    backups: &[SocketAddr],
    client_cfg: ClientConfig,
    shards: Arc<Vec<ShardState>>,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
) {
    let n = shards.len();
    let mut links: Vec<BackupLink> = backups
        .iter()
        .map(|&addr| BackupLink {
            addr,
            conn: None,
            acked: vec![None; n],
        })
        .collect();

    while !shutdown.load(Ordering::Acquire) {
        if shards.iter().all(|s| s.ha.role() != Role::Primary) {
            // Deposed (or started as a backup) on every shard: nothing to
            // stream. Stay alive — a later `promote()` resumes.
            std::thread::sleep(Duration::from_millis(5));
            continue;
        }
        // Shards deposed during this pass; their baselines are cleared on
        // *every* link so a re-promotion starts with full resyncs.
        let mut deposed: Vec<usize> = Vec::new();
        for link in &mut links {
            if link.conn.is_none() {
                link.conn = ContextClient::connect_with(link.addr, client_cfg).ok();
                link.acked = vec![None; n]; // new connection: new baseline
                if link.conn.is_none() {
                    continue;
                }
            }

            let mut sent_any = false;
            for (s, sh) in shards.iter().enumerate() {
                if sh.ha.role() != Role::Primary || deposed.contains(&s) {
                    continue;
                }
                let epoch = sh.ha.epoch();

                // A backup with no baseline for this shard — or one that
                // fell behind the pruned log — gets a full snapshot
                // consistent with a log position: both locks held while
                // reading (store read lock blocks mutators, which append
                // under the write lock).
                let needs_sync = {
                    let log = sh.log.lock();
                    match link.acked[s] {
                        None => true,
                        Some(acked) => log
                            .entries
                            .front()
                            .is_some_and(|&(front, _)| front > acked + 1),
                    }
                };
                if needs_sync {
                    let (blob, sync_seq) = {
                        let st = sh.store.read();
                        let log = sh.log.lock();
                        (st.encode_snapshot(epoch), log.next_seq)
                    };
                    let msg = if n == 1 {
                        Message::SnapshotSync { epoch, blob }
                    } else {
                        Message::ShardSnapshotSync {
                            shard: s as u32,
                            epoch,
                            blob,
                        }
                    };
                    match send_repl(link, &msg) {
                        ReplSend::Acked => {
                            stats.repl_sent.fetch_add(1, Ordering::Relaxed);
                            link.acked[s] = Some(sync_seq);
                            sent_any = true;
                        }
                        ReplSend::Fenced => {
                            sh.ha.set(epoch, Role::Backup);
                            deposed.push(s);
                            continue;
                        }
                        ReplSend::Failed => break,
                    }
                }

                // Stream the delta tail.
                loop {
                    let next = {
                        let log = sh.log.lock();
                        let acked = link.acked[s].unwrap_or(0);
                        log.entries.iter().find(|&&(seq, _)| seq > acked).cloned()
                    };
                    let Some((seq, op)) = next else { break };
                    match send_repl(link, &Message::Replicate { epoch, seq, op }) {
                        ReplSend::Acked => {
                            stats.repl_sent.fetch_add(1, Ordering::Relaxed);
                            link.acked[s] = Some(seq);
                            sent_any = true;
                        }
                        ReplSend::Fenced => {
                            sh.ha.set(epoch, Role::Backup);
                            deposed.push(s);
                            break;
                        }
                        ReplSend::Failed => break,
                    }
                }
                if link.conn.is_none() {
                    break; // transport died; retry this link next pass
                }
            }

            // Idle heartbeat: an EpochQuery reveals a promoted backup
            // even when no client traffic is generating deltas. The reply
            // carries the backup's most conservative (lowest) epoch, so
            // any primary shard below it has certainly been superseded.
            if !sent_any {
                if let Some(conn) = link.conn.as_mut() {
                    match conn.request(&Message::EpochQuery) {
                        Ok(Message::Epoch { epoch: theirs, .. }) => {
                            for (s, sh) in shards.iter().enumerate() {
                                if sh.ha.role() == Role::Primary
                                    && theirs > sh.ha.epoch()
                                    && !deposed.contains(&s)
                                {
                                    sh.ha.set(sh.ha.epoch(), Role::Backup);
                                    deposed.push(s);
                                }
                            }
                        }
                        Ok(_) => {}
                        Err(_) => link.conn = None,
                    }
                }
            }
        }

        for &s in &deposed {
            for link in &mut links {
                link.acked[s] = None;
            }
        }

        // Entries every live backup has confirmed are dead weight.
        for (s, sh) in shards.iter().enumerate() {
            if links.iter().all(|l| l.acked[s].is_some()) {
                if let Some(min_acked) = links.iter().filter_map(|l| l.acked[s]).min() {
                    sh.log.lock().prune(min_acked);
                }
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

enum ReplSend {
    Acked,
    Fenced,
    Failed,
}

fn send_repl(link: &mut BackupLink, msg: &Message) -> ReplSend {
    let Some(conn) = link.conn.as_mut() else {
        return ReplSend::Failed;
    };
    match conn.request(msg) {
        Ok(Message::ReportOk) => ReplSend::Acked,
        Ok(Message::Error { code: c, .. }) if c == code::FENCED => ReplSend::Fenced,
        Ok(_) | Err(_) => {
            link.conn = None;
            ReplSend::Failed
        }
    }
}

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure. The connection is poisoned.
    Io(std::io::Error),
    /// The request's deadline expired before a full reply arrived. The
    /// request may still be on the wire, so the connection is poisoned.
    Deadline,
    /// A previous request on this connection failed mid-flight; the
    /// stream may hold a stale reply, so every call fails until the
    /// caller reconnects.
    Poisoned,
    /// The server answered with a protocol error frame (clean reply; the
    /// connection stays usable unless the server closed it).
    Server {
        /// Error code from the server (see [`crate::wire::code`]).
        code: u16,
        /// Error detail from the server.
        message: String,
    },
    /// The server replied with a well-delimited frame of a type this
    /// build doesn't know (a newer peer). The stream stayed aligned, so
    /// the connection is *not* poisoned — but the reply is unusable.
    Unsupported(u8),
    /// The reply could not be decoded or had the wrong type. The framing
    /// state is unknown, so the connection is poisoned.
    Protocol(String),
}

impl ClientError {
    /// Whether this failure leaves the connection in an unknown state.
    fn poisons(&self) -> bool {
        matches!(
            self,
            ClientError::Io(_)
                | ClientError::Deadline
                | ClientError::Protocol(_)
                | ClientError::Poisoned
        )
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Deadline => write!(f, "request deadline exceeded"),
            ClientError::Poisoned => write!(f, "connection poisoned by an earlier failure"),
            ClientError::Server { code, message } => write!(f, "server error {code}: {message}"),
            ClientError::Unsupported(t) => write!(f, "unsupported reply type {t}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        if matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ) {
            ClientError::Deadline
        } else {
            ClientError::Io(e)
        }
    }
}

/// Client tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Budget for establishing the TCP connection.
    pub connect_timeout: Duration,
    /// Budget for one whole request (write + read); covers a stalled
    /// server in *either* direction.
    pub request_deadline: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            request_deadline: Duration::from_secs(5),
        }
    }
}

/// Tuning for the client-side write-behind report buffer.
///
/// Reports are end-of-connection telemetry, not queries: nothing blocks
/// on their reply. Buffering them and shipping one
/// [`Message::BatchReport`] amortizes codec and syscall cost the same
/// way the replication delta stream does. The cost is staleness, and
/// that cost is *bounded*: a buffered report is flushed no later than
/// the first `buffer_report`/`flush_reports` call after the oldest entry
/// turns `max_age` old, and no more than `max_items` reports are ever
/// held. On a flush failure the buffer is dropped, not retried — a dead
/// context plane degrades to lost telemetry, never to memory growth or
/// a stalled sender.
#[derive(Debug, Clone, Copy)]
pub struct WriteBehindConfig {
    /// Buffered reports that force a flush (also the largest batch ever
    /// sent; capped by [`crate::wire::MAX_BATCH_ITEMS`]).
    pub max_items: usize,
    /// Staleness bound: how old the oldest buffered report may be before
    /// the next buffering call flushes.
    pub max_age: Duration,
}

impl Default for WriteBehindConfig {
    fn default() -> Self {
        WriteBehindConfig {
            max_items: 64,
            max_age: Duration::from_millis(100),
        }
    }
}

impl WriteBehindConfig {
    fn effective_max_items(&self) -> usize {
        self.max_items.clamp(1, crate::wire::MAX_BATCH_ITEMS)
    }
}

/// A blocking context-server client: one TCP connection, synchronous
/// request/response — matching the one-lookup-one-report cadence of the
/// practical design.
///
/// Every call returns within [`ClientConfig::request_deadline`]. After
/// any mid-request failure the connection is poisoned (see the module
/// docs); callers that want automatic reconnection and degradation use
/// [`ResilientClient`].
pub struct ContextClient {
    stream: TcpStream,
    decoder: Decoder,
    config: ClientConfig,
    poisoned: bool,
    write_behind: WriteBehindConfig,
    pending: Vec<(PathKey, FlowSummary)>,
    /// When the oldest entry in `pending` was buffered (the staleness
    /// clock).
    oldest: Option<Instant>,
}

impl ContextClient {
    /// Connect to a context server with default [`ClientConfig`].
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<ContextClient> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connect to a context server with explicit timeouts.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> std::io::Result<ContextClient> {
        let mut last_err = None;
        let mut stream = None;
        for addr in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&addr, config.connect_timeout) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let stream = match stream {
            Some(s) => s,
            None => {
                return Err(last_err.unwrap_or_else(|| {
                    std::io::Error::new(std::io::ErrorKind::InvalidInput, "no addresses resolved")
                }))
            }
        };
        stream.set_nodelay(true)?;
        // Both directions are bounded: a stalled server with a full
        // socket buffer must not block the sender on write any more than
        // a silent one may block it on read.
        stream.set_read_timeout(Some(config.request_deadline))?;
        stream.set_write_timeout(Some(config.request_deadline))?;
        Ok(ContextClient {
            stream,
            decoder: Decoder::new(),
            config,
            poisoned: false,
            write_behind: WriteBehindConfig::default(),
            pending: Vec::new(),
            oldest: None,
        })
    }

    /// Replace the write-behind tuning (applies to subsequent
    /// [`ContextClient::buffer_report`] calls; already-buffered reports
    /// keep their staleness clock).
    pub fn set_write_behind(&mut self, cfg: WriteBehindConfig) {
        self.write_behind = cfg;
    }

    /// Whether an earlier failure poisoned this connection (all further
    /// calls fail fast until the caller reconnects).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    fn request(&mut self, msg: &Message) -> Result<Message, ClientError> {
        if self.poisoned {
            return Err(ClientError::Poisoned);
        }
        let result = self.request_inner(msg);
        if let Err(e) = &result {
            if e.poisons() {
                // The request may already be on the wire and its reply in
                // flight; reusing the stream would pair that stale reply
                // with the next request.
                self.poisoned = true;
            }
        }
        result
    }

    fn request_inner(&mut self, msg: &Message) -> Result<Message, ClientError> {
        let deadline = Instant::now() + self.config.request_deadline;
        self.stream
            .set_write_timeout(Some(self.config.request_deadline))?;
        self.stream.write_all(&encode(msg))?;
        let mut buf = [0u8; 4096];
        loop {
            match self.decoder.next() {
                Ok(m) => return Ok(m),
                Err(DecodeError::Incomplete) => {}
                // Forward compatibility: an unknown-but-well-delimited
                // reply type leaves the stream aligned — typed error, no
                // poison, connection stays usable.
                Err(DecodeError::BadType(t)) => return Err(ClientError::Unsupported(t)),
                Err(e) => return Err(ClientError::Protocol(e.to_string())),
            }
            // Budget the read by what's left of the whole-request deadline
            // so fragmented replies cannot stretch a call past it.
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(ClientError::Deadline);
            }
            self.stream.set_read_timeout(Some(remaining))?;
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(ClientError::Protocol("server closed connection".into()));
            }
            self.decoder.extend(&buf[..n]);
        }
    }

    /// Look up the congestion context for `path` (registers this client
    /// as an active sender on it).
    pub fn lookup(&mut self, path: PathKey) -> Result<ContextSnapshot, ClientError> {
        match self.request(&Message::Lookup { path })? {
            Message::Context(c) => Ok(c),
            Message::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// The busiest `limit` paths the server knows about (dashboard view).
    pub fn snapshot(&mut self, limit: u16) -> Result<Vec<(PathKey, ContextSnapshot)>, ClientError> {
        match self.request(&Message::Snapshot { limit })? {
            Message::Paths(paths) => Ok(paths),
            Message::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Report a finished connection on `path`.
    pub fn report(&mut self, path: PathKey, summary: FlowSummary) -> Result<(), ClientError> {
        match self.request(&Message::Report { path, summary })? {
            Message::ReportOk => Ok(()),
            Message::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Ship `items` as one [`Message::BatchReport`] frame — N reports,
    /// one syscall, one reply. Items beyond
    /// [`crate::wire::MAX_BATCH_ITEMS`] are sent in follow-up frames.
    pub fn report_batch(&mut self, items: &[(PathKey, FlowSummary)]) -> Result<(), ClientError> {
        for chunk in items.chunks(crate::wire::MAX_BATCH_ITEMS.max(1)) {
            match self.request(&Message::BatchReport(chunk.to_vec()))? {
                Message::ReportOk => {}
                Message::Error { code, message } => {
                    return Err(ClientError::Server { code, message })
                }
                other => return Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
            }
        }
        Ok(())
    }

    /// Read the context of many paths in one frame, in query order.
    /// Side-effect free: unlike [`ContextClient::lookup`] this does *not*
    /// register the caller as a competing sender on any path.
    pub fn query_batch(&mut self, paths: &[PathKey]) -> Result<Vec<ContextSnapshot>, ClientError> {
        let mut out = Vec::with_capacity(paths.len());
        for chunk in paths.chunks(crate::wire::MAX_BATCH_ITEMS.max(1)) {
            match self.request(&Message::BatchQuery(chunk.to_vec()))? {
                Message::BatchReply(snaps) if snaps.len() == chunk.len() => out.extend(snaps),
                Message::BatchReply(snaps) => {
                    return Err(ClientError::Protocol(format!(
                        "batch reply has {} items for {} queries",
                        snaps.len(),
                        chunk.len()
                    )))
                }
                Message::Error { code, message } => {
                    return Err(ClientError::Server { code, message })
                }
                other => return Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
            }
        }
        Ok(out)
    }

    /// Buffer a report for a later batched flush (see
    /// [`WriteBehindConfig`] for the staleness bound). Returns `true` if
    /// this call flushed. On a flush failure the buffered reports are
    /// dropped before the error is returned — the buffer never grows past
    /// `max_items` and a report is never retried into the future.
    pub fn buffer_report(
        &mut self,
        path: PathKey,
        summary: FlowSummary,
    ) -> Result<bool, ClientError> {
        if self.pending.is_empty() {
            self.oldest = Some(Instant::now());
        }
        self.pending.push((path, summary));
        let over_count = self.pending.len() >= self.write_behind.effective_max_items();
        let over_age = self
            .oldest
            .is_some_and(|t| t.elapsed() >= self.write_behind.max_age);
        if over_count || over_age {
            self.flush_reports()?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Flush every buffered report now, as one batch frame. Returns how
    /// many reports were shipped. The buffer is emptied even on failure
    /// (degradation over growth).
    pub fn flush_reports(&mut self) -> Result<usize, ClientError> {
        if self.pending.is_empty() {
            return Ok(0);
        }
        let items = std::mem::take(&mut self.pending);
        self.oldest = None;
        self.report_batch(&items)?;
        Ok(items.len())
    }

    /// Reports currently held by the write-behind buffer.
    pub fn pending_reports(&self) -> usize {
        self.pending.len()
    }

    /// The server's current fencing epoch and role (health probe).
    pub fn epoch(&mut self) -> Result<(u64, Role), ClientError> {
        match self.request(&Message::EpochQuery)? {
            Message::Epoch { epoch, role } => Ok((epoch, role)),
            Message::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Install `blob` as shard `shard`'s full state on the receiving
    /// server, fenced at `epoch`. The shard index is the *receiver's*
    /// (`shard_index` of the same path space — primary and backup must be
    /// sharded identically). Out-of-range shards and stale epochs come
    /// back as server errors.
    pub fn sync_shard_snapshot(
        &mut self,
        shard: u32,
        epoch: u64,
        blob: Vec<u8>,
    ) -> Result<(), ClientError> {
        match self.request(&Message::ShardSnapshotSync { shard, epoch, blob })? {
            Message::ReportOk => Ok(()),
            Message::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Flush the write-behind buffer and consume the client; returns how
    /// many buffered reports shipped. Dropping the client flushes too —
    /// the difference is that `close` surfaces the final flush's error
    /// where `Drop` must swallow it.
    pub fn close(mut self) -> Result<usize, ClientError> {
        self.flush_reports()
    }
}

impl Drop for ContextClient {
    /// Last-chance flush of the write-behind buffer: an orderly teardown
    /// must not silently discard buffered reports. Best-effort — errors
    /// are swallowed (use [`ContextClient::close`] to observe them) and
    /// the single batch request is bounded by the per-request deadline,
    /// so teardown cannot hang on a dead plane. Skipped while panicking:
    /// an unwinding thread shouldn't block on the network.
    fn drop(&mut self) {
        if !self.pending.is_empty() && !std::thread::panicking() {
            let _ = self.flush_reports();
        }
    }
}

/// [`ResilientClient`] tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ResilienceConfig {
    /// Per-connection timeouts of the underlying [`ContextClient`].
    pub client: ClientConfig,
    /// Reconnect-and-retry attempts per request after the first failure.
    pub max_retries: u32,
    /// Backoff before retry `k` is `base * 2^(k-1)` (capped), scaled by
    /// jitter in `[0.5, 1.0]`.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff sleep.
    pub backoff_max: Duration,
    /// Consecutive failed *requests* (all retries exhausted) that open
    /// the circuit breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker short-circuits requests before the next
    /// probe is allowed. Each failed half-open probe doubles the wait,
    /// up to [`ResilienceConfig::breaker_cooldown_max`].
    pub breaker_cooldown: Duration,
    /// Ceiling on the doubled half-open cooldown.
    pub breaker_cooldown_max: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            client: ClientConfig::default(),
            max_retries: 2,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(500),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(1),
            breaker_cooldown_max: Duration::from_secs(30),
            jitter_seed: 0x5EED_CAFE,
        }
    }
}

/// Counters of a [`ResilientClient`]'s failure handling.
#[derive(Debug, Default, Clone, Copy)]
pub struct ResilienceStats {
    /// Requests issued (including ones the breaker short-circuited).
    pub requests: u64,
    /// Requests that exhausted every retry and degraded to "no context".
    pub failures: u64,
    /// Connections (re-)established.
    pub connects: u64,
    /// Open → closed breaker transitions.
    pub breaker_trips: u64,
    /// Requests answered "no context" instantly by an open breaker.
    pub short_circuited: u64,
    /// Half-open probes that failed (each doubles the cooldown).
    pub probe_failures: u64,
    /// Times the client moved on to the next endpoint in its list.
    pub failovers: u64,
    /// Replies (or handshakes) rejected for a stale epoch / backup role.
    pub fenced: u64,
}

/// A self-healing context-plane client embodying the §2.2.2 contract:
/// **the context plane may fail; the sender must not.**
///
/// Wraps [`ContextClient`] with bounded reconnects, exponential backoff
/// with deterministic jitter, and a circuit breaker. All methods are
/// infallible: any exhausted failure degrades to "no context" (`None` /
/// `false`), which callers map to vanilla-TCP behaviour — never an error
/// the data path has to handle, never an unbounded block.
///
/// ## Failover
///
/// Constructed with [`ResilientClient::multi`], the client holds an
/// ordered endpoint list. Every (re)connect is an epoch-checked health
/// probe: the client sends an `EpochQuery` and only accepts the endpoint
/// if it answers as a **primary** at an epoch at least as new as the
/// highest this client has ever seen. A `409 FENCED` reply (or a backup
/// role) rotates to the next endpoint — so a deposed primary's context
/// can never reach the sender, and split-brain degrades to "no context"
/// rather than stale guidance.
pub struct ResilientClient {
    endpoints: Vec<SocketAddr>,
    current: usize,
    /// Highest epoch any endpoint ever answered with; replies from below
    /// it are fenced client-side even if a stale primary still talks.
    max_epoch: u64,
    config: ResilienceConfig,
    conn: Option<ContextClient>,
    consecutive_failures: u32,
    open_until: Option<Instant>,
    /// Consecutive open periods without a successful probe; the cooldown
    /// doubles with each (bounded by `breaker_cooldown_max`).
    open_streak: u32,
    jitter: u64,
    stats: ResilienceStats,
    write_behind: WriteBehindConfig,
    pending: Vec<(PathKey, FlowSummary)>,
    oldest: Option<Instant>,
}

impl ResilientClient {
    /// A client for the server at `addr` with default [`ResilienceConfig`].
    /// No connection is made until the first request.
    pub fn new(addr: impl ToSocketAddrs) -> std::io::Result<ResilientClient> {
        Self::with_config(addr, ResilienceConfig::default())
    }

    /// [`ResilientClient::new`] with explicit tuning.
    pub fn with_config(
        addr: impl ToSocketAddrs,
        config: ResilienceConfig,
    ) -> std::io::Result<ResilientClient> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "no addresses resolved")
        })?;
        Ok(Self::multi(vec![addr], config))
    }

    /// A failover client over an ordered endpoint list (primary first,
    /// then backups in preference order). The list must be non-empty.
    pub fn multi(endpoints: Vec<SocketAddr>, config: ResilienceConfig) -> ResilientClient {
        assert!(!endpoints.is_empty(), "endpoint list must be non-empty");
        ResilientClient {
            endpoints,
            current: 0,
            max_epoch: 0,
            config,
            conn: None,
            consecutive_failures: 0,
            open_until: None,
            open_streak: 0,
            jitter: config.jitter_seed | 1,
            stats: ResilienceStats::default(),
            write_behind: WriteBehindConfig::default(),
            pending: Vec::new(),
            oldest: None,
        }
    }

    /// Replace the write-behind tuning (see [`WriteBehindConfig`]).
    pub fn set_write_behind(&mut self, cfg: WriteBehindConfig) {
        self.write_behind = cfg;
    }

    /// Failure-handling counters.
    pub fn stats(&self) -> ResilienceStats {
        self.stats
    }

    /// Whether the circuit breaker is currently open (requests are
    /// short-circuited to "no context" until the cooldown elapses).
    pub fn breaker_open(&self) -> bool {
        self.open_until.is_some_and(|t| Instant::now() < t)
    }

    /// The cooldown the breaker will apply on its next trip or failed
    /// probe: `breaker_cooldown * 2^open_streak`, capped. Deterministic,
    /// so tests can assert the doubling exactly.
    pub fn current_cooldown(&self) -> Duration {
        let doubled = self
            .config
            .breaker_cooldown
            .saturating_mul(1u32 << self.open_streak.min(16));
        doubled.min(self.config.breaker_cooldown_max)
    }

    /// The endpoint the next request will try first.
    pub fn current_endpoint(&self) -> SocketAddr {
        self.endpoints[self.current]
    }

    /// Highest epoch any endpoint has answered with so far.
    pub fn observed_epoch(&self) -> u64 {
        self.max_epoch
    }

    /// Look up the context for `path`; `None` means "no context" — the
    /// plane is unavailable and the caller should use defaults.
    pub fn lookup(&mut self, path: PathKey) -> Option<ContextSnapshot> {
        match self.call(&Message::Lookup { path }) {
            Some(Message::Context(c)) => Some(c),
            _ => None,
        }
    }

    /// Report a finished connection; `false` means the report was lost to
    /// a context-plane failure (acceptable: estimates degrade gracefully).
    pub fn report(&mut self, path: PathKey, summary: FlowSummary) -> bool {
        matches!(
            self.call(&Message::Report { path, summary }),
            Some(Message::ReportOk)
        )
    }

    /// The busiest `limit` paths, or `None` when the plane is down.
    pub fn snapshot(&mut self, limit: u16) -> Option<Vec<(PathKey, ContextSnapshot)>> {
        match self.call(&Message::Snapshot { limit }) {
            Some(Message::Paths(paths)) => Some(paths),
            _ => None,
        }
    }

    /// Ship `items` as batch-report frames; `false` means at least one
    /// batch was lost to a context-plane failure (acceptable: estimates
    /// degrade gracefully, the data path never stalls).
    pub fn report_batch(&mut self, items: &[(PathKey, FlowSummary)]) -> bool {
        let mut ok = true;
        for chunk in items.chunks(crate::wire::MAX_BATCH_ITEMS.max(1)) {
            ok &= matches!(
                self.call(&Message::BatchReport(chunk.to_vec())),
                Some(Message::ReportOk)
            );
        }
        ok
    }

    /// Read many paths' context in one frame (side-effect free); `None`
    /// when the plane is down — the caller falls back to defaults, same
    /// as a failed [`ResilientClient::lookup`].
    pub fn query_batch(&mut self, paths: &[PathKey]) -> Option<Vec<ContextSnapshot>> {
        let mut out = Vec::with_capacity(paths.len());
        for chunk in paths.chunks(crate::wire::MAX_BATCH_ITEMS.max(1)) {
            match self.call(&Message::BatchQuery(chunk.to_vec())) {
                Some(Message::BatchReply(snaps)) if snaps.len() == chunk.len() => out.extend(snaps),
                _ => return None,
            }
        }
        Some(out)
    }

    /// Buffer a report for a later batched flush, bounded by the
    /// configured [`WriteBehindConfig`] staleness bound. Returns `false`
    /// only when this call triggered a flush and that flush failed (the
    /// buffered reports are then dropped — a dead plane costs telemetry,
    /// never memory or data-path stalls: the breaker short-circuits the
    /// flush without touching the network).
    pub fn buffer_report(&mut self, path: PathKey, summary: FlowSummary) -> bool {
        if self.pending.is_empty() {
            self.oldest = Some(Instant::now());
        }
        self.pending.push((path, summary));
        let over_count = self.pending.len() >= self.write_behind.effective_max_items();
        let over_age = self
            .oldest
            .is_some_and(|t| t.elapsed() >= self.write_behind.max_age);
        if over_count || over_age {
            return self.flush_reports();
        }
        true
    }

    /// Flush every buffered report now; `true` when nothing was lost
    /// (including the empty-buffer case). The buffer empties either way.
    pub fn flush_reports(&mut self) -> bool {
        if self.pending.is_empty() {
            return true;
        }
        let items = std::mem::take(&mut self.pending);
        self.oldest = None;
        self.report_batch(&items)
    }

    /// Reports currently held by the write-behind buffer.
    pub fn pending_reports(&self) -> usize {
        self.pending.len()
    }

    /// Flush the write-behind buffer and consume the client; `false`
    /// when the final flush lost reports. Dropping the client flushes
    /// too, silently.
    pub fn close(mut self) -> bool {
        self.flush_reports()
    }

    fn call(&mut self, msg: &Message) -> Option<Message> {
        self.stats.requests += 1;
        if let Some(until) = self.open_until {
            if Instant::now() < until {
                self.stats.short_circuited += 1;
                return None;
            }
            // Cooldown elapsed: half-open. Fall through with one probe
            // request; success closes the breaker, failure re-opens it
            // with a doubled cooldown.
        }
        for attempt in 0..=self.config.max_retries {
            if attempt > 0 {
                std::thread::sleep(self.backoff(attempt));
            }
            let conn = match self.ensure_conn() {
                Some(c) => c,
                None => continue,
            };
            match conn.request(msg) {
                Ok(Message::Error { code: c, .. }) if c == code::OVERLOADED => {
                    // The server shed us; it will close the connection.
                    self.conn = None;
                }
                Ok(Message::Error { code: c, .. }) if c == code::FENCED => {
                    // This endpoint was deposed under us (or demoted to
                    // backup). Never retry it with this request — fail
                    // over to the next endpoint in the list.
                    self.stats.fenced += 1;
                    self.fail_over();
                }
                Ok(reply) => {
                    self.consecutive_failures = 0;
                    self.open_until = None;
                    self.open_streak = 0;
                    return Some(reply);
                }
                Err(ClientError::Unsupported(_)) => {
                    // The reply is unusable but the connection is fine;
                    // treat as a failed attempt without reconnecting.
                }
                Err(_) => {
                    // Poisoned, timed out, or transport-dead: drop the
                    // connection and let the next attempt try the next
                    // endpoint in the list.
                    self.conn = None;
                    self.fail_over();
                }
            }
        }
        self.on_exhausted();
        None
    }

    /// Advance to the next endpoint in the ordered list.
    fn fail_over(&mut self) {
        if self.endpoints.len() > 1 {
            self.current = (self.current + 1) % self.endpoints.len();
            self.stats.failovers += 1;
        }
        self.conn = None;
    }

    /// (Re)establish a connection, health-probing the endpoint with an
    /// `EpochQuery` first: only a primary at `>= max_epoch` is accepted;
    /// backups and stale primaries rotate the list.
    fn ensure_conn(&mut self) -> Option<&mut ContextClient> {
        if self.conn.is_some() {
            return self.conn.as_mut();
        }
        for _ in 0..self.endpoints.len() {
            let addr = self.endpoints[self.current];
            match ContextClient::connect_with(addr, self.config.client) {
                Ok(mut c) => {
                    match c.request(&Message::EpochQuery) {
                        Ok(Message::Epoch { epoch, role }) => {
                            if epoch < self.max_epoch || role != Role::Primary {
                                // Fenced client-side: a backup, or a
                                // primary older than one we've already
                                // talked to.
                                self.stats.fenced += 1;
                                self.fail_over();
                                continue;
                            }
                            self.max_epoch = epoch;
                        }
                        // A pre-HA server answers BAD_REQUEST (or an
                        // unknown-type error): no epochs to enforce, but
                        // the endpoint is alive and serving.
                        Ok(Message::Error { .. }) | Err(ClientError::Unsupported(_)) => {}
                        Ok(_) | Err(_) => {
                            self.fail_over();
                            continue;
                        }
                    }
                    self.stats.connects += 1;
                    self.conn = Some(c);
                    return self.conn.as_mut();
                }
                Err(_) => {
                    self.fail_over();
                }
            }
        }
        None
    }

    fn on_exhausted(&mut self) {
        self.stats.failures += 1;
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        if self.open_until.is_some() {
            // A half-open probe failed: re-open for twice as long.
            self.stats.probe_failures += 1;
            let wait = self.current_cooldown();
            self.open_until = Some(Instant::now() + wait);
            self.open_streak = self.open_streak.saturating_add(1);
        } else if self.consecutive_failures >= self.config.breaker_threshold {
            self.stats.breaker_trips += 1;
            let wait = self.current_cooldown();
            self.open_until = Some(Instant::now() + wait);
            self.open_streak = self.open_streak.saturating_add(1);
        }
    }

    /// Exponential backoff with deterministic jitter in `[0.5, 1.0]` of
    /// the capped exponential term (xorshift64 stream seeded by config,
    /// so tests are reproducible and a fleet of clients decorrelates).
    fn backoff(&mut self, attempt: u32) -> Duration {
        let exp = self
            .config
            .backoff_base
            .saturating_mul(1u32 << (attempt - 1).min(16));
        let capped = exp.min(self.config.backoff_max);
        self.jitter ^= self.jitter << 13;
        self.jitter ^= self.jitter >> 7;
        self.jitter ^= self.jitter << 17;
        let frac = 0.5 + 0.5 * (self.jitter >> 11) as f64 / (1u64 << 53) as f64;
        capped.mul_f64(frac)
    }
}

impl Drop for ResilientClient {
    /// Last-chance flush of the write-behind buffer on orderly teardown.
    /// Bounded even against a dead plane: the flush goes through the
    /// normal retry/breaker machinery, so an open breaker short-circuits
    /// it without touching the network. Skipped while panicking.
    fn drop(&mut self) {
        if !self.pending.is_empty() && !std::thread::panicking() {
            let _ = self.flush_reports();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::StoreConfig;

    fn start_server() -> (ContextServer, SocketAddr) {
        let store = sync_store(ContextStore::new(StoreConfig {
            window_ns: 10_000_000_000,
            capacity_bps: Some(10_000_000.0),
            queue_alpha: 0.3,
        }));
        let server = ContextServer::start("127.0.0.1:0", store).expect("bind");
        let addr = server.addr();
        (server, addr)
    }

    fn summary(bytes: u64) -> FlowSummary {
        FlowSummary {
            bytes,
            duration_ns: 1_000_000_000,
            mean_rtt_ms: 170.0,
            min_rtt_ms: 150.0,
            retransmits: 2,
            timeouts: 0,
        }
    }

    fn quick_config() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            request_deadline: Duration::from_millis(150),
        }
    }

    #[test]
    fn lookup_report_roundtrip() {
        let (server, addr) = start_server();
        let mut client = ContextClient::connect(addr).expect("connect");

        let c0 = client.lookup(PathKey(9)).expect("lookup");
        assert_eq!(c0.competing, 0);
        assert_eq!(c0.utilization, 0.0);

        // A second lookup sees the first as competing.
        let c1 = client.lookup(PathKey(9)).expect("lookup");
        assert_eq!(c1.competing, 1);

        client
            .report(PathKey(9), summary(1_000_000))
            .expect("report");
        let c2 = client.lookup(PathKey(9)).expect("lookup");
        // One reported (released), one still active, one new from c1's slot.
        assert_eq!(c2.competing, 1);
        assert!(c2.utilization > 0.0, "report should raise utilization");
        assert!((c2.queue_ms - 20.0).abs() < 1e-9);

        assert_eq!(server.stats().lookups.load(Ordering::Relaxed), 3);
        assert_eq!(server.stats().reports.load(Ordering::Relaxed), 1);
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_share_state() {
        let (server, addr) = start_server();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut c = ContextClient::connect(addr).expect("connect");
                    c.lookup(PathKey(1)).expect("lookup");
                    c.report(PathKey(1), summary(500_000)).expect("report");
                })
            })
            .collect();
        for t in threads {
            t.join().expect("client thread");
        }
        let mut c = ContextClient::connect(addr).expect("connect");
        let snap = c.lookup(PathKey(1)).expect("lookup");
        // All four lookups were released by reports.
        assert_eq!(snap.competing, 0);
        assert!(snap.utilization > 0.0);
        assert_eq!(server.stats().reports.load(Ordering::Relaxed), 4);
        assert_eq!(server.stats().connections.load(Ordering::Relaxed), 5);
        server.shutdown();
    }

    #[test]
    fn malformed_frame_gets_error_and_disconnect() {
        let (server, addr) = start_server();
        let mut raw = TcpStream::connect(addr).expect("connect");
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Garbage version byte.
        raw.write_all(&[0, 0, 0, 2, 77, 1]).unwrap();
        let mut buf = Vec::new();
        let mut chunk = [0u8; 1024];
        loop {
            match raw.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(_) => break,
            }
        }
        let mut d = Decoder::new();
        d.extend(&buf);
        match d.next().expect("error frame") {
            Message::Error { code: c, .. } => assert_eq!(c, code::MALFORMED),
            other => panic!("expected error, got {other:?}"),
        }
        assert_eq!(server.stats().protocol_errors.load(Ordering::Relaxed), 1);
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly_with_open_connections() {
        let (server, addr) = start_server();
        let _idle = ContextClient::connect(addr).expect("connect");
        // Shut down while a client is connected but idle: must not hang.
        let start = std::time::Instant::now();
        server.shutdown();
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "shutdown took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn snapshot_returns_busiest_paths_first() {
        let (server, addr) = start_server();
        let mut c = ContextClient::connect(addr).expect("connect");
        c.report(PathKey(1), summary(500_000)).expect("report");
        c.report(PathKey(2), summary(6_000_000)).expect("report");
        c.report(PathKey(3), summary(50_000)).expect("report");
        let top = c.snapshot(2).expect("snapshot");
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, PathKey(2), "busiest first: {top:?}");
        assert!(top[0].1.utilization >= top[1].1.utilization);
        let all = c.snapshot(100).expect("snapshot");
        assert_eq!(all.len(), 3);
        server.shutdown();
    }

    #[test]
    fn paths_are_isolated_across_clients() {
        let (server, addr) = start_server();
        let mut a = ContextClient::connect(addr).expect("connect");
        let mut b = ContextClient::connect(addr).expect("connect");
        a.lookup(PathKey(1)).unwrap();
        a.report(PathKey(1), summary(2_000_000)).unwrap();
        let other = b.lookup(PathKey(2)).unwrap();
        assert_eq!(other.utilization, 0.0);
        assert_eq!(other.competing, 0);
        server.shutdown();
    }

    /// Regression: a read timeout used to leave the reply to request N on
    /// the wire, and the next `request()` silently paired it with request
    /// N+1. With poisoning, the late reply can never be mispaired.
    #[test]
    fn late_reply_poisons_instead_of_mispairing() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            // Read request 1 fully, then stall past the client deadline.
            let mut d = Decoder::new();
            let mut buf = [0u8; 4096];
            loop {
                match d.next() {
                    Ok(Message::Lookup { path }) => {
                        assert_eq!(path, PathKey(1));
                        break;
                    }
                    Ok(other) => panic!("unexpected request {other:?}"),
                    Err(DecodeError::Incomplete) => {
                        let n = stream.read(&mut buf).expect("read");
                        assert!(n > 0, "client hung up early");
                        d.extend(&buf[..n]);
                    }
                    Err(e) => panic!("decode {e}"),
                }
            }
            std::thread::sleep(Duration::from_millis(400));
            // The reply to request 1 finally arrives — after the client
            // already gave up on it.
            stream
                .write_all(&encode(&Message::Context(ContextSnapshot {
                    utilization: 0.111,
                    queue_ms: 1.0,
                    competing: 111,
                })))
                .expect("late reply");
            // Keep the connection open long enough for a (buggy) client
            // to read the stale reply.
            std::thread::sleep(Duration::from_millis(400));
        });

        let mut client = ContextClient::connect_with(addr, quick_config()).expect("connect");
        // Request 1 times out at its deadline.
        match client.lookup(PathKey(1)) {
            Err(ClientError::Deadline) => {}
            other => panic!("expected deadline, got {other:?}"),
        }
        assert!(client.is_poisoned());
        // Request 2 must NOT be paired with request 1's (now arriving)
        // reply; the pre-fix client returned Ok(utilization 0.111) here.
        let started = Instant::now();
        match client.lookup(PathKey(2)) {
            Err(ClientError::Poisoned) => {}
            Ok(snap) => panic!("request 2 got request 1's reply: {snap:?}"),
            other => panic!("expected poisoned, got {other:?}"),
        }
        assert!(
            started.elapsed() < Duration::from_millis(50),
            "poisoned call must fail fast, took {:?}",
            started.elapsed()
        );
        server.join().expect("server thread");
    }

    /// No client call blocks past its configured deadline — against a
    /// server that accepts but never replies (read stall) and never reads
    /// (write stall); the write timeout set at connect covers the latter.
    #[test]
    fn calls_are_bounded_by_the_deadline() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let silent = std::thread::spawn(move || {
            // Accept and hold both connections open, reading and writing
            // nothing, until the test is done.
            let a = listener.accept().expect("accept");
            let b = listener.accept().expect("accept");
            std::thread::sleep(Duration::from_millis(600));
            drop((a, b));
        });

        let cfg = quick_config();
        let mut c1 = ContextClient::connect_with(addr, cfg).expect("connect");
        assert!(
            c1.stream.write_timeout().unwrap().is_some(),
            "connect must set a write timeout"
        );
        let started = Instant::now();
        match c1.lookup(PathKey(7)) {
            Err(ClientError::Deadline) => {}
            other => panic!("expected deadline, got {other:?}"),
        }
        let elapsed = started.elapsed();
        assert!(
            elapsed >= cfg.request_deadline && elapsed < cfg.request_deadline * 3,
            "lookup returned in {elapsed:?} for a {:?} deadline",
            cfg.request_deadline
        );

        let mut c2 = ContextClient::connect_with(addr, cfg).expect("connect");
        let started = Instant::now();
        assert!(c2.report(PathKey(7), summary(1)).is_err());
        assert!(
            started.elapsed() < cfg.request_deadline * 3,
            "report blocked {:?}",
            started.elapsed()
        );
        silent.join().expect("silent server");
    }

    #[test]
    fn connection_cap_sheds_with_overload_frame() {
        let store = sync_store(ContextStore::new(StoreConfig::default()));
        let server =
            ContextServer::start_with("127.0.0.1:0", store, ServerConfig { max_connections: 1 })
                .expect("bind");
        let addr = server.addr();

        let mut kept = ContextClient::connect(addr).expect("connect");
        kept.lookup(PathKey(1)).expect("served under the cap");

        // Over the cap: the server answers one 503 frame and closes.
        let mut shed = ContextClient::connect_with(addr, quick_config()).expect("connect");
        match shed.lookup(PathKey(2)) {
            Err(ClientError::Server { code: c, .. }) => assert_eq!(c, code::OVERLOADED),
            other => panic!("expected overload error, got {other:?}"),
        }
        assert_eq!(server.stats().rejected.load(Ordering::Relaxed), 1);
        assert_eq!(server.stats().connections.load(Ordering::Relaxed), 1);

        // Capacity frees up once the held connection closes.
        drop(kept);
        std::thread::sleep(Duration::from_millis(250));
        let mut next = ContextClient::connect(addr).expect("connect");
        next.lookup(PathKey(3)).expect("served after churn");
        server.shutdown();
    }

    #[test]
    fn resilient_client_degrades_then_recovers() {
        // Grab a port with no listener behind it.
        let placeholder = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = placeholder.local_addr().unwrap();
        drop(placeholder);

        let cfg = ResilienceConfig {
            client: quick_config(),
            max_retries: 1,
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(4),
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_millis(200),
            ..ResilienceConfig::default()
        };
        let mut rc = ResilientClient::with_config(addr, cfg).expect("resolve");

        // Failures degrade to "no context", never an error or a block.
        assert_eq!(rc.lookup(PathKey(1)), None);
        assert_eq!(rc.lookup(PathKey(1)), None);
        assert!(rc.breaker_open(), "breaker should open after 2 failures");
        assert!(rc.stats().breaker_trips >= 1);

        // Open breaker short-circuits instantly.
        let started = Instant::now();
        assert_eq!(rc.lookup(PathKey(1)), None);
        assert!(
            started.elapsed() < Duration::from_millis(20),
            "open breaker must not touch the network ({:?})",
            started.elapsed()
        );
        assert!(rc.stats().short_circuited >= 1);

        // A server comes up on the same port; after the cooldown the next
        // request probes, succeeds, and closes the breaker.
        let store = sync_store(ContextStore::new(StoreConfig::default()));
        let server = ContextServer::start(addr, store).expect("rebind");
        std::thread::sleep(cfg.breaker_cooldown + Duration::from_millis(50));
        let snap = rc.lookup(PathKey(1)).expect("probe should succeed");
        assert_eq!(snap.competing, 0);
        assert!(!rc.breaker_open());
        assert!(rc.report(PathKey(1), summary(10_000)));
        server.shutdown();
    }

    #[test]
    fn resilient_client_reconnects_across_server_restart() {
        let (server, addr) = start_server();
        let mut rc = ResilientClient::with_config(
            addr,
            ResilienceConfig {
                client: quick_config(),
                max_retries: 2,
                backoff_base: Duration::from_millis(1),
                backoff_max: Duration::from_millis(8),
                ..ResilienceConfig::default()
            },
        )
        .expect("resolve");
        assert!(rc.lookup(PathKey(5)).is_some());
        server.shutdown();

        // Server gone: degraded, not stuck.
        assert_eq!(rc.lookup(PathKey(5)), None);

        // Server back on the same port: the wrapper reconnects by itself.
        let store = sync_store(ContextStore::new(StoreConfig::default()));
        let revived = ContextServer::start(addr, store).expect("rebind");
        assert!(rc.lookup(PathKey(5)).is_some(), "should reconnect");
        assert!(rc.stats().connects >= 2, "stats: {:?}", rc.stats());
        revived.shutdown();
    }

    fn start_ha_server(ha: HaOptions) -> (ContextServer, SocketAddr) {
        let store = sync_store(ContextStore::new(StoreConfig::default()));
        let server = ContextServer::start_ha("127.0.0.1:0", store, ServerConfig::default(), ha)
            .expect("bind");
        let addr = server.addr();
        (server, addr)
    }

    fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while !cond() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn epoch_query_reports_epoch_and_role() {
        let (server, addr) = start_ha_server(HaOptions {
            epoch: 7,
            ..HaOptions::default()
        });
        let mut c = ContextClient::connect(addr).expect("connect");
        assert_eq!(c.epoch().expect("epoch query"), (7, Role::Primary));
        assert_eq!(server.epoch(), 7);
        assert_eq!(server.role(), Role::Primary);
        server.shutdown();
    }

    #[test]
    fn backup_fences_client_requests_with_409() {
        let (server, addr) = start_ha_server(HaOptions {
            role: Role::Backup,
            ..HaOptions::default()
        });
        let mut c = ContextClient::connect(addr).expect("connect");
        // Epoch queries are answered by any role (that's how probes work)…
        assert_eq!(c.epoch().expect("epoch query"), (1, Role::Backup));
        // …but context traffic is fenced: a backup's store may be stale.
        match c.lookup(PathKey(1)) {
            Err(ClientError::Server { code: c, .. }) => assert_eq!(c, code::FENCED),
            other => panic!("expected 409 FENCED, got {other:?}"),
        }
        match c.report(PathKey(1), summary(1_000)) {
            Err(ClientError::Server { code: c, .. }) => assert_eq!(c, code::FENCED),
            other => panic!("expected 409 FENCED, got {other:?}"),
        }
        assert_eq!(server.stats().fenced.load(Ordering::Relaxed), 2);
        server.shutdown();
    }

    #[test]
    fn replication_streams_deltas_to_backup() {
        let (backup, backup_addr) = start_ha_server(HaOptions {
            role: Role::Backup,
            ..HaOptions::default()
        });
        let (primary, primary_addr) = start_ha_server(HaOptions {
            backups: vec![backup_addr],
            repl_client: quick_config(),
            ..HaOptions::default()
        });

        let mut c = ContextClient::connect(primary_addr).expect("connect");
        c.lookup(PathKey(4)).expect("lookup");
        c.report(PathKey(4), summary(2_000_000)).expect("report");

        // The delta stream carries both mutations to the backup.
        wait_until("backup to apply the deltas", || {
            let (store, _) = ContextStore::decode_snapshot(&backup.snapshot_blob())
                .expect("backup snapshot decodes");
            store.traffic_counters(PathKey(4)) == (1, 1)
        });
        let (bstore, bepoch) =
            ContextStore::decode_snapshot(&backup.snapshot_blob()).expect("decode");
        assert_eq!(bepoch, 1);
        assert!(bstore.loss_signal(PathKey(4)).is_some());
        assert!(primary.stats().repl_sent.load(Ordering::Relaxed) >= 2);
        assert!(backup.stats().repl_applied.load(Ordering::Relaxed) >= 2);
        primary.shutdown();
        backup.shutdown();
    }

    #[test]
    fn backup_catches_up_via_snapshot_sync() {
        // Reserve a port for the backup, but don't start it yet.
        let placeholder = TcpListener::bind("127.0.0.1:0").expect("bind");
        let backup_addr = placeholder.local_addr().unwrap();
        drop(placeholder);

        let (primary, primary_addr) = start_ha_server(HaOptions {
            backups: vec![backup_addr],
            repl_client: quick_config(),
            ..HaOptions::default()
        });
        // State accumulates while the backup is down.
        let mut c = ContextClient::connect(primary_addr).expect("connect");
        c.lookup(PathKey(9)).expect("lookup");
        c.report(PathKey(9), summary(3_000_000)).expect("report");

        // The backup comes up late: a full snapshot must bring it level.
        let bstore = sync_store(ContextStore::new(StoreConfig::default()));
        let backup = ContextServer::start_ha(
            backup_addr,
            bstore,
            ServerConfig::default(),
            HaOptions {
                role: Role::Backup,
                ..HaOptions::default()
            },
        )
        .expect("bind backup");

        wait_until("snapshot sync to land", || {
            let (store, _) = ContextStore::decode_snapshot(&backup.snapshot_blob())
                .expect("backup snapshot decodes");
            store.traffic_counters(PathKey(9)) == (1, 1)
        });
        assert!(backup.stats().repl_syncs.load(Ordering::Relaxed) >= 1);
        primary.shutdown();
        backup.shutdown();
    }

    #[test]
    fn sharded_backup_catches_up_via_shard_snapshot_sync() {
        // The bug this pins: before SHARD_SNAPSHOT_SYNC a multi-shard
        // server answered every SnapshotSync with 501, so a late-started
        // sharded backup could never be brought level. Two shards, one
        // path on each, backup started after the data exists.
        let placeholder = TcpListener::bind("127.0.0.1:0").expect("bind");
        let backup_addr = placeholder.local_addr().unwrap();
        drop(placeholder);

        let primary = ContextServer::start_sharded_ha(
            "127.0.0.1:0",
            StoreConfig::default(),
            ServerConfig::default(),
            2,
            HaOptions {
                backups: vec![backup_addr],
                repl_client: quick_config(),
                ..HaOptions::default()
            },
        )
        .expect("bind primary");

        // One path per shard, found by the same hash the router uses.
        let on_shard = |want: usize| {
            (0..64)
                .map(PathKey)
                .find(|&p| crate::shard::shard_index(p, 2) == want)
                .expect("a path landing on the shard")
        };
        let (p0, p1) = (on_shard(0), on_shard(1));
        let mut c = ContextClient::connect(primary.addr()).expect("connect");
        for p in [p0, p1] {
            c.lookup(p).expect("lookup");
            c.report(p, summary(2_000_000)).expect("report");
        }

        let backup = ContextServer::start_sharded_ha(
            backup_addr,
            StoreConfig::default(),
            ServerConfig::default(),
            2,
            HaOptions {
                role: Role::Backup,
                ..HaOptions::default()
            },
        )
        .expect("bind backup");

        wait_until("both shards to sync", || {
            [p0, p1].iter().all(|&p| {
                let s = crate::shard::shard_index(p, 2);
                let (store, _) = ContextStore::decode_snapshot(&backup.shard_snapshot_blob(s))
                    .expect("backup shard snapshot decodes");
                store.traffic_counters(p) == (1, 1)
            })
        });
        assert!(backup.stats().repl_syncs.load(Ordering::Relaxed) >= 2);
        primary.shutdown();
        backup.shutdown();
    }

    #[test]
    fn shard_snapshot_sync_rejects_out_of_range_shard() {
        let server = ContextServer::start_sharded(
            "127.0.0.1:0",
            StoreConfig::default(),
            ServerConfig::default(),
            2,
        )
        .expect("bind");
        let mut c = ContextClient::connect(server.addr()).expect("connect");
        let blob = server.shard_snapshot_blob(0);
        match c.sync_shard_snapshot(7, 2, blob) {
            Err(ClientError::Server { code: c, .. }) => assert_eq!(c, code::BAD_REQUEST),
            other => panic!("expected 400 for shard out of range, got {other:?}"),
        }
        // The stream stays aligned: the same connection still serves.
        c.lookup(PathKey(1)).expect("lookup after rejected sync");
        server.shutdown();
    }

    #[test]
    fn whole_store_sync_still_unsupported_on_sharded_server() {
        // The legacy frame keeps its 501 on multi-shard receivers — a
        // whole-store blob cannot be split across shards — but the
        // shard-scoped frame works on the same connection.
        let server = ContextServer::start_sharded(
            "127.0.0.1:0",
            StoreConfig::default(),
            ServerConfig::default(),
            2,
        )
        .expect("bind");
        let blob = server.shard_snapshot_blob(0);
        let mut c = ContextClient::connect(server.addr()).expect("connect");
        match c.request(&Message::SnapshotSync {
            epoch: 2,
            blob: blob.clone(),
        }) {
            Ok(Message::Error { code: c, .. }) => assert_eq!(c, code::UNSUPPORTED),
            other => panic!("expected 501 for whole-store sync, got {other:?}"),
        }
        c.sync_shard_snapshot(0, 2, blob)
            .expect("shard-scoped sync");
        assert_eq!(server.epoch_of(0), 2);
        assert_eq!(server.role_of(0), Role::Backup);
        assert_eq!(server.epoch_of(1), 1, "other shard untouched");
        server.shutdown();
    }

    #[test]
    fn promotion_fences_the_deposed_primary() {
        let (backup, backup_addr) = start_ha_server(HaOptions {
            role: Role::Backup,
            ..HaOptions::default()
        });
        let (old_primary, old_addr) = start_ha_server(HaOptions {
            backups: vec![backup_addr],
            repl_client: quick_config(),
            ..HaOptions::default()
        });
        let mut c = ContextClient::connect(old_addr).expect("connect");
        c.report(PathKey(2), summary(1_000_000)).expect("report");
        wait_until("backup to sync", || {
            backup.stats().repl_applied.load(Ordering::Relaxed) >= 1
                || backup.stats().repl_syncs.load(Ordering::Relaxed) >= 1
        });

        // Promotion demands a strictly greater epoch — the new epoch IS
        // the fence, so reusing the old one is rejected.
        assert!(!backup.promote(1), "equal epoch must not promote");
        assert!(backup.promote(2));
        assert!(!backup.promote(2), "stale re-promotion must fail");
        assert_eq!(backup.role(), Role::Primary);
        assert_eq!(backup.epoch(), 2);

        // The old primary discovers the higher epoch through its own
        // replication stream and deposes itself rather than split-brain.
        wait_until("old primary to self-depose", || {
            old_primary.role() == Role::Backup
        });
        match c.lookup(PathKey(2)) {
            Err(ClientError::Server { code: c, .. }) => assert_eq!(c, code::FENCED),
            other => panic!("deposed primary must fence, got {other:?}"),
        }

        // A failover client walks the endpoint list: the deposed primary
        // is rejected at the handshake, the promoted backup serves.
        let mut rc = ResilientClient::multi(
            vec![old_addr, backup_addr],
            ResilienceConfig {
                client: quick_config(),
                max_retries: 1,
                backoff_base: Duration::from_millis(1),
                backoff_max: Duration::from_millis(4),
                ..ResilienceConfig::default()
            },
        );
        let snap = rc.lookup(PathKey(2)).expect("promoted backup serves");
        assert!(snap.utilization > 0.0, "replicated state survived");
        assert_eq!(rc.observed_epoch(), 2);
        assert!(rc.stats().fenced >= 1, "stats: {:?}", rc.stats());
        assert_eq!(rc.current_endpoint(), backup_addr);
        old_primary.shutdown();
        backup.shutdown();
    }

    #[test]
    fn resilient_client_fails_over_between_endpoints() {
        let (a, addr_a) = start_server();
        let (b, addr_b) = start_server();
        let mut rc = ResilientClient::multi(
            vec![addr_a, addr_b],
            ResilienceConfig {
                client: quick_config(),
                max_retries: 2,
                backoff_base: Duration::from_millis(1),
                backoff_max: Duration::from_millis(4),
                ..ResilienceConfig::default()
            },
        );
        assert!(rc.lookup(PathKey(1)).is_some());
        assert_eq!(rc.current_endpoint(), addr_a);

        // First endpoint dies: the same client keeps serving from the
        // second, within the same degraded-free request.
        a.shutdown();
        assert!(rc.lookup(PathKey(1)).is_some(), "failover should serve");
        assert_eq!(rc.current_endpoint(), addr_b);
        assert!(rc.stats().failovers >= 1, "stats: {:?}", rc.stats());
        b.shutdown();
    }

    #[test]
    fn half_open_probe_failure_doubles_cooldown() {
        // A port with nothing behind it: every probe fails.
        let placeholder = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = placeholder.local_addr().unwrap();
        drop(placeholder);

        let cooldown = Duration::from_millis(50);
        let mut rc = ResilientClient::with_config(
            addr,
            ResilienceConfig {
                client: quick_config(),
                max_retries: 0,
                backoff_base: Duration::from_millis(1),
                backoff_max: Duration::from_millis(2),
                breaker_threshold: 1,
                breaker_cooldown: cooldown,
                breaker_cooldown_max: Duration::from_secs(30),
                ..ResilienceConfig::default()
            },
        )
        .expect("resolve");

        // First failure trips the breaker at the base cooldown; the next
        // period is already scheduled to double.
        assert_eq!(rc.lookup(PathKey(1)), None);
        assert!(rc.breaker_open());
        assert_eq!(rc.stats().breaker_trips, 1);
        assert_eq!(rc.current_cooldown(), cooldown * 2);

        // Past the cooldown the breaker goes half-open; the probe fails
        // against the dead port and re-opens for twice as long.
        std::thread::sleep(cooldown + Duration::from_millis(20));
        assert!(!rc.breaker_open(), "cooldown elapsed → half-open");
        assert_eq!(rc.lookup(PathKey(1)), None);
        assert_eq!(rc.stats().probe_failures, 1);
        assert!(rc.breaker_open(), "failed probe re-opens");
        assert_eq!(rc.current_cooldown(), cooldown * 4);

        // While re-opened, requests short-circuit without touching the net.
        let started = Instant::now();
        assert_eq!(rc.lookup(PathKey(1)), None);
        assert!(started.elapsed() < Duration::from_millis(20));
        assert!(rc.stats().short_circuited >= 1);
    }

    #[test]
    fn half_open_probe_success_closes_and_resets_cooldown() {
        let placeholder = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = placeholder.local_addr().unwrap();
        drop(placeholder);

        let cooldown = Duration::from_millis(100);
        let mut rc = ResilientClient::with_config(
            addr,
            ResilienceConfig {
                client: quick_config(),
                max_retries: 0,
                backoff_base: Duration::from_millis(1),
                backoff_max: Duration::from_millis(2),
                breaker_threshold: 1,
                breaker_cooldown: cooldown,
                breaker_cooldown_max: Duration::from_secs(30),
                ..ResilienceConfig::default()
            },
        )
        .expect("resolve");

        assert_eq!(rc.lookup(PathKey(1)), None);
        assert!(rc.breaker_open());
        assert_eq!(rc.current_cooldown(), cooldown * 2, "doubling scheduled");

        // A server appears; the half-open probe succeeds, the breaker
        // closes, and the doubling streak resets to the base cooldown.
        let store = sync_store(ContextStore::new(StoreConfig::default()));
        let server = ContextServer::start(addr, store).expect("rebind");
        std::thread::sleep(cooldown + Duration::from_millis(50));
        assert!(rc.lookup(PathKey(1)).is_some(), "probe should succeed");
        assert!(!rc.breaker_open());
        assert_eq!(rc.stats().probe_failures, 0);
        assert_eq!(rc.current_cooldown(), cooldown, "streak reset");
        server.shutdown();
    }

    #[test]
    fn snapshot_blob_restarts_at_a_greater_epoch() {
        let (server, addr) = start_ha_server(HaOptions {
            epoch: 3,
            ..HaOptions::default()
        });
        let mut c = ContextClient::connect(addr).expect("connect");
        c.lookup(PathKey(11)).expect("lookup");
        c.report(PathKey(11), summary(4_000_000)).expect("report");
        let blob = server.snapshot_blob();
        drop(c);
        server.shutdown();

        // Operator restart: restore the store from the blob and come back
        // at a strictly greater epoch so the old incarnation is fenced.
        let (restored, old_epoch) = ContextStore::decode_snapshot(&blob).expect("snapshot decodes");
        assert_eq!(old_epoch, 3);
        assert_eq!(restored.traffic_counters(PathKey(11)), (1, 1));
        let revived = ContextServer::start_ha(
            "127.0.0.1:0",
            sync_store(restored),
            ServerConfig::default(),
            HaOptions {
                epoch: old_epoch + 1,
                ..HaOptions::default()
            },
        )
        .expect("restart");
        let mut c = ContextClient::connect(revived.addr()).expect("connect");
        assert_eq!(c.epoch().expect("epoch"), (4, Role::Primary));
        let snap = c.lookup(PathKey(11)).expect("lookup");
        assert!(snap.utilization > 0.0, "restored state lost");
        revived.shutdown();
    }

    /// The batching/HA seam: one `BatchReport` must leave exactly the
    /// `ReplLog` deltas the same items sent as single frames leave — op
    /// for op, in order — so a backup catching up via snapshot-then-delta
    /// cannot tell (or lose) anything when primaries start batching.
    #[test]
    fn batched_report_logs_the_same_deltas_as_singles() {
        let (batch_srv, batch_addr) = start_server();
        let (single_srv, single_addr) = start_server();
        let items = vec![
            (PathKey(1), summary(1_000_000)),
            (PathKey(2), summary(2_000_000)),
            (PathKey(1), summary(3_000_000)),
        ];

        let mut cb = ContextClient::connect(batch_addr).expect("connect");
        cb.report_batch(&items).expect("batch report");
        let mut cs = ContextClient::connect(single_addr).expect("connect");
        for &(p, s) in &items {
            cs.report(p, s).expect("single report");
        }

        // Identical deltas modulo the servers' own clocks: same length,
        // same sequence numbers, same ops carrying the same payloads.
        let strip = |entries: Vec<(u64, ReplOp)>| -> Vec<(u64, PathKey, FlowSummary)> {
            entries
                .into_iter()
                .map(|(seq, op)| match op {
                    ReplOp::Report { path, summary, .. } => (seq, path, summary),
                    other => panic!("batch must log reports, got {other:?}"),
                })
                .collect()
        };
        let a = strip(batch_srv.repl_entries(0));
        let b = strip(single_srv.repl_entries(0));
        assert_eq!(a.len(), 3);
        assert_eq!(a, b);
        assert_eq!(batch_srv.stats().reports.load(Ordering::Relaxed), 3);

        // And the stores agree on everything clock-independent.
        let (bst, _) = ContextStore::decode_snapshot(&batch_srv.snapshot_blob()).expect("decode");
        let (sst, _) = ContextStore::decode_snapshot(&single_srv.snapshot_blob()).expect("decode");
        for p in [PathKey(1), PathKey(2)] {
            assert_eq!(bst.traffic_counters(p), sst.traffic_counters(p));
            assert_eq!(bst.loss_signal(p), sst.loss_signal(p));
        }
        batch_srv.shutdown();
        single_srv.shutdown();
    }

    #[test]
    fn batch_query_peeks_without_registering_senders() {
        let (server, addr) = start_server();
        let mut c = ContextClient::connect(addr).expect("connect");
        c.report(PathKey(3), summary(4_000_000)).expect("report");

        let snaps = c
            .query_batch(&[PathKey(3), PathKey(99), PathKey(3)])
            .expect("batch query");
        assert_eq!(snaps.len(), 3);
        assert!(snaps[0].utilization > 0.0);
        assert_eq!(snaps[0], snaps[2], "same path, same reply");
        assert_eq!(snaps[1].utilization, 0.0, "unknown path reads empty");

        // Peeks left no competing-sender registrations behind.
        let after = c.lookup(PathKey(3)).expect("lookup");
        assert_eq!(after.competing, 0, "batch query must not register senders");

        // Zero-item batches are legal no-ops.
        assert_eq!(c.query_batch(&[]).expect("empty query").len(), 0);
        c.report_batch(&[]).expect("empty report");
        assert_eq!(server.stats().reports.load(Ordering::Relaxed), 1);
        server.shutdown();
    }

    #[test]
    fn backup_fences_batch_frames_too() {
        let (server, addr) = start_ha_server(HaOptions {
            role: Role::Backup,
            ..HaOptions::default()
        });
        let mut c = ContextClient::connect(addr).expect("connect");
        match c.report_batch(&[(PathKey(1), summary(1_000))]) {
            Err(ClientError::Server { code: cd, .. }) => assert_eq!(cd, code::FENCED),
            other => panic!("expected 409 FENCED, got {other:?}"),
        }
        match c.query_batch(&[PathKey(1)]) {
            Err(ClientError::Server { code: cd, .. }) => assert_eq!(cd, code::FENCED),
            other => panic!("expected 409 FENCED, got {other:?}"),
        }
        assert_eq!(server.stats().reports.load(Ordering::Relaxed), 0);
        server.shutdown();
    }

    #[test]
    fn sharded_server_routes_and_serves_every_shard() {
        let server = ContextServer::start_sharded(
            "127.0.0.1:0",
            StoreConfig::default(),
            ServerConfig::default(),
            4,
        )
        .expect("bind");
        assert_eq!(server.shard_count(), 4);
        let mut c = ContextClient::connect(server.addr()).expect("connect");

        // Traffic on paths covering all four shards.
        let paths: Vec<PathKey> = (0..32).map(PathKey).collect();
        let covered: std::collections::HashSet<usize> =
            paths.iter().map(|&p| shard_index(p, 4)).collect();
        assert_eq!(covered.len(), 4, "test paths must cover every shard");
        let items: Vec<(PathKey, FlowSummary)> =
            paths.iter().map(|&p| (p, summary(500_000))).collect();
        c.report_batch(&items).expect("batch report");

        // Every path is queryable and the merged dashboard sees them all.
        let snaps = c.query_batch(&paths).expect("batch query");
        assert!(snaps.iter().all(|s| s.utilization > 0.0));
        let top = c.snapshot(100).expect("snapshot");
        assert_eq!(top.len(), 32);
        assert!(
            top.windows(2)
                .all(|w| w[0].1.utilization >= w[1].1.utilization),
            "merged snapshot must stay busiest-first"
        );
        assert_eq!(server.stats().reports.load(Ordering::Relaxed), 32);
        server.shutdown();
    }

    /// Per-shard epochs: deposing one shard (via a higher-epoch replica
    /// delta for a path it owns) fences exactly that shard's paths; every
    /// other shard keeps serving, and the health view turns conservative.
    #[test]
    fn sharded_server_fences_one_shard_independently() {
        let server = ContextServer::start_sharded(
            "127.0.0.1:0",
            StoreConfig::default(),
            ServerConfig::default(),
            4,
        )
        .expect("bind");
        let mut c = ContextClient::connect(server.addr()).expect("connect");

        let p_hit = PathKey(0);
        let s_hit = shard_index(p_hit, 4);
        let p_other = (1..64)
            .map(PathKey)
            .find(|&p| shard_index(p, 4) != s_hit)
            .expect("a path on another shard");

        c.lookup(p_hit).expect("served before the depose");
        c.lookup(p_other).expect("served before the depose");

        // A newer primary's delta for p_hit deposes only p_hit's shard.
        let reply = c
            .request(&Message::Replicate {
                epoch: 5,
                seq: 1,
                op: ReplOp::Lookup {
                    path: p_hit,
                    now_ns: 0,
                },
            })
            .expect("replicate");
        assert!(matches!(reply, Message::ReportOk), "got {reply:?}");

        assert_eq!(server.role_of(s_hit), Role::Backup);
        assert_eq!(server.epoch_of(s_hit), 5);
        match c.lookup(p_hit) {
            Err(ClientError::Server { code: cd, .. }) => assert_eq!(cd, code::FENCED),
            other => panic!("deposed shard must fence, got {other:?}"),
        }
        // The other shards never noticed.
        let s_other = shard_index(p_other, 4);
        assert_eq!(server.role_of(s_other), Role::Primary);
        assert_eq!(server.epoch_of(s_other), 1);
        c.lookup(p_other).expect("healthy shard keeps serving");

        // Health probes answer with the conservative whole-server view…
        assert_eq!(c.epoch().expect("epoch"), (1, Role::Backup));
        assert_eq!(server.role(), Role::Backup);
        // …and re-promoting just that shard restores full service.
        assert!(!server.promote_shard(s_hit, 5), "stale epoch must fail");
        assert!(server.promote_shard(s_hit, 6));
        c.lookup(p_hit).expect("served after shard promotion");
        assert_eq!(server.role(), Role::Primary);
        server.shutdown();
    }

    #[test]
    fn write_behind_flushes_on_count_and_age_and_demand() {
        let (server, addr) = start_server();
        let mut c = ContextClient::connect(addr).expect("connect");
        c.set_write_behind(WriteBehindConfig {
            max_items: 3,
            max_age: Duration::from_millis(80),
        });

        // Count trigger: nothing is on the server until the 3rd report.
        assert!(!c.buffer_report(PathKey(1), summary(1_000)).expect("buffer"));
        assert!(!c.buffer_report(PathKey(1), summary(2_000)).expect("buffer"));
        assert_eq!(server.stats().reports.load(Ordering::Relaxed), 0);
        assert_eq!(c.pending_reports(), 2);
        assert!(c.buffer_report(PathKey(1), summary(3_000)).expect("flush"));
        assert_eq!(c.pending_reports(), 0);
        assert_eq!(server.stats().reports.load(Ordering::Relaxed), 3);

        // Age trigger: one stale report rides out on the next buffering
        // call after the bound elapses.
        assert!(!c.buffer_report(PathKey(2), summary(4_000)).expect("buffer"));
        std::thread::sleep(Duration::from_millis(100));
        assert!(c.buffer_report(PathKey(2), summary(5_000)).expect("flush"));
        assert_eq!(server.stats().reports.load(Ordering::Relaxed), 5);

        // Explicit flush.
        assert!(!c.buffer_report(PathKey(3), summary(6_000)).expect("buffer"));
        assert_eq!(c.flush_reports().expect("flush"), 1);
        assert_eq!(c.flush_reports().expect("empty flush"), 0);
        assert_eq!(server.stats().reports.load(Ordering::Relaxed), 6);
        server.shutdown();
    }

    #[test]
    fn write_behind_drops_cleanly_when_the_plane_dies() {
        let (server, addr) = start_server();
        let mut c = ContextClient::connect_with(addr, quick_config()).expect("connect");
        c.set_write_behind(WriteBehindConfig {
            max_items: 2,
            max_age: Duration::from_secs(60),
        });
        assert!(!c.buffer_report(PathKey(1), summary(1_000)).expect("buffer"));
        server.shutdown();

        // The triggered flush fails against the dead plane; the buffer is
        // dropped (degrade), never ballooned, and the call stays bounded.
        let started = Instant::now();
        assert!(c.buffer_report(PathKey(1), summary(2_000)).is_err());
        assert!(
            started.elapsed() < quick_config().request_deadline * 3,
            "flush must stay deadline-bounded, took {:?}",
            started.elapsed()
        );
        assert_eq!(c.pending_reports(), 0, "failed flush must drop, not hold");
    }

    #[test]
    fn resilient_write_behind_degrades_to_dropped_reports() {
        // A port with no listener: every flush fails fast or is
        // short-circuited by the breaker — never an error, never a stall.
        let placeholder = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = placeholder.local_addr().unwrap();
        drop(placeholder);

        let mut rc = ResilientClient::with_config(
            addr,
            ResilienceConfig {
                client: quick_config(),
                max_retries: 0,
                backoff_base: Duration::from_millis(1),
                backoff_max: Duration::from_millis(2),
                breaker_threshold: 1,
                breaker_cooldown: Duration::from_secs(5),
                ..ResilienceConfig::default()
            },
        )
        .expect("resolve");
        rc.set_write_behind(WriteBehindConfig {
            max_items: 2,
            max_age: Duration::from_secs(60),
        });

        assert!(rc.buffer_report(PathKey(1), summary(1_000)), "buffered");
        assert!(!rc.buffer_report(PathKey(1), summary(2_000)), "flush lost");
        assert_eq!(rc.pending_reports(), 0);
        assert!(rc.breaker_open(), "failures still feed the breaker");

        // With the breaker open, further flushes short-circuit instantly.
        let started = Instant::now();
        assert!(rc.buffer_report(PathKey(1), summary(3_000)));
        assert!(!rc.buffer_report(PathKey(1), summary(4_000)));
        assert!(
            started.elapsed() < Duration::from_millis(50),
            "open breaker must not touch the network ({:?})",
            started.elapsed()
        );
        assert!(rc.stats().short_circuited >= 1);
    }

    #[test]
    fn write_behind_buffer_survives_orderly_shutdown() {
        // The bug this pins: reports buffered but not yet flushed were
        // silently lost when the client was dropped or closed before a
        // flush trigger fired.
        let (server, addr) = start_server();
        let wb = WriteBehindConfig {
            max_items: 100,
            max_age: Duration::from_secs(60),
        };

        // Drop path: the destructor ships the buffer.
        let mut c = ContextClient::connect_with(addr, quick_config()).expect("connect");
        c.set_write_behind(wb);
        assert!(!c.buffer_report(PathKey(1), summary(1_000)).expect("buffer"));
        assert!(!c.buffer_report(PathKey(1), summary(2_000)).expect("buffer"));
        drop(c);
        assert_eq!(server.stats().reports.load(Ordering::Relaxed), 2);

        // Close path: same flush, but losses are observable.
        let mut c = ContextClient::connect_with(addr, quick_config()).expect("connect");
        c.set_write_behind(wb);
        assert!(!c.buffer_report(PathKey(2), summary(3_000)).expect("buffer"));
        assert_eq!(c.close().expect("close"), 1);
        assert_eq!(server.stats().reports.load(Ordering::Relaxed), 3);

        // Resilient wrapper, drop path.
        let mut rc = ResilientClient::with_config(
            addr,
            ResilienceConfig {
                client: quick_config(),
                ..ResilienceConfig::default()
            },
        )
        .expect("resolve");
        rc.set_write_behind(wb);
        assert!(rc.buffer_report(PathKey(3), summary(4_000)));
        drop(rc);
        assert_eq!(server.stats().reports.load(Ordering::Relaxed), 4);
        server.shutdown();
    }

    #[test]
    fn drop_flush_stays_bounded_against_a_dead_plane() {
        let (server, addr) = start_server();
        let mut c = ContextClient::connect_with(addr, quick_config()).expect("connect");
        c.set_write_behind(WriteBehindConfig {
            max_items: 100,
            max_age: Duration::from_secs(60),
        });
        assert!(!c.buffer_report(PathKey(1), summary(1_000)).expect("buffer"));
        server.shutdown();

        // The destructor's flush fails against the dead plane; it must
        // swallow the error and return within the request deadline, not
        // hang teardown.
        let started = Instant::now();
        drop(c);
        assert!(
            started.elapsed() < quick_config().request_deadline * 3,
            "drop flush must stay deadline-bounded, took {:?}",
            started.elapsed()
        );
    }
}
