//! A real context server over TCP, and its blocking client.
//!
//! The in-simulation hooks talk to a [`crate::context::ContextStore`]
//! directly; a production Phi deployment runs one (or a few) context
//! servers per domain. [`ContextServer`] is that service: a threaded TCP
//! server speaking the [`crate::wire`] protocol over a store shared with
//! `parking_lot::RwLock`. It is deliberately runtime-agnostic (std::net +
//! threads): the request rate is one lookup + one report per *connection*
//! of the data plane, so a handful of OS threads is ample, and the library
//! stays free of any async-runtime dependency.
//!
//! Lifecycle: [`ContextServer::start`] binds and serves;
//! [`ContextServer::shutdown`] stops accepting, unblocks handlers via read
//! timeouts, and joins every thread.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use phi_tcp::hook::ContextSnapshot;

use crate::context::{ContextStore, FlowSummary, PathKey};
use crate::wire::{encode, DecodeError, Decoder, Message};

/// A thread-safe context store handle, shared by server handlers and any
/// in-process instrumentation.
pub type SyncStore = Arc<RwLock<ContextStore>>;

/// Wrap a store for cross-thread sharing.
pub fn sync_store(store: ContextStore) -> SyncStore {
    Arc::new(RwLock::new(store))
}

/// Server-side counters, readable while running.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Lookup requests served.
    pub lookups: AtomicU64,
    /// Reports accepted.
    pub reports: AtomicU64,
    /// Protocol errors answered.
    pub protocol_errors: AtomicU64,
}

/// A running context server.
pub struct ContextServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    stats: Arc<ServerStats>,
}

/// How long handler reads block before re-checking the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

impl ContextServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// requests against `store`. Timestamps handed to the store are
    /// nanoseconds since server start.
    pub fn start(addr: impl ToSocketAddrs, store: SyncStore) -> std::io::Result<ContextServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let stats = Arc::new(ServerStats::default());
        let epoch = Instant::now();

        let accept_thread = {
            let shutdown = shutdown.clone();
            let handlers = handlers.clone();
            let stats = stats.clone();
            std::thread::Builder::new()
                .name("phi-ctx-accept".into())
                .spawn(move || {
                    while !shutdown.load(Ordering::Acquire) {
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                stats.connections.fetch_add(1, Ordering::Relaxed);
                                let shutdown = shutdown.clone();
                                let store = store.clone();
                                let stats = stats.clone();
                                let handle = std::thread::Builder::new()
                                    .name("phi-ctx-conn".into())
                                    .spawn(move || {
                                        handle_connection(stream, store, stats, shutdown, epoch)
                                    })
                                    .expect("spawn handler thread");
                                handlers.lock().push(handle);
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(POLL_INTERVAL);
                            }
                            Err(_) => break,
                        }
                    }
                })
                .expect("spawn accept thread")
        };

        Ok(ContextServer {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
            handlers,
            stats,
        })
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live server counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Stop accepting, drain handlers, and join all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let handlers = std::mem::take(&mut *self.handlers.lock());
        for h in handlers {
            let _ = h.join();
        }
    }
}

impl Drop for ContextServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn handle_connection(
    stream: TcpStream,
    store: SyncStore,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
    epoch: Instant,
) {
    let mut stream = stream;
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut decoder = Decoder::new();
    let mut buf = [0u8; 4096];

    while !shutdown.load(Ordering::Acquire) {
        match stream.read(&mut buf) {
            Ok(0) => return, // peer closed
            Ok(n) => decoder.extend(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
        loop {
            let now_ns = epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            let reply = match decoder.next() {
                Ok(Message::Lookup { path }) => {
                    stats.lookups.fetch_add(1, Ordering::Relaxed);
                    let snap = store.write().lookup(path, now_ns);
                    Message::Context(snap)
                }
                Ok(Message::Report { path, summary }) => {
                    stats.reports.fetch_add(1, Ordering::Relaxed);
                    store.write().report(path, now_ns, &summary);
                    Message::ReportOk
                }
                Ok(Message::Snapshot { limit }) => {
                    let mut paths = store.read().snapshot(now_ns);
                    paths.truncate(usize::from(limit).min(crate::wire::MAX_SNAPSHOT_PATHS));
                    Message::Paths(paths)
                }
                Ok(other) => {
                    stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    Message::Error {
                        code: 400,
                        message: format!("unexpected message: {other:?}"),
                    }
                }
                Err(DecodeError::Incomplete) => break,
                Err(e) => {
                    stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    let _ = stream.write_all(&encode(&Message::Error {
                        code: 422,
                        message: e.to_string(),
                    }));
                    return; // framing is broken; drop the connection
                }
            };
            if stream.write_all(&encode(&reply)).is_err() {
                return;
            }
        }
    }
}

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server answered with a protocol error frame.
    Server {
        /// Error code from the server.
        code: u16,
        /// Error detail from the server.
        message: String,
    },
    /// The reply could not be decoded or had the wrong type.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Server { code, message } => write!(f, "server error {code}: {message}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking context-server client: one TCP connection, synchronous
/// request/response — matching the one-lookup-one-report cadence of the
/// practical design.
pub struct ContextClient {
    stream: TcpStream,
    decoder: Decoder,
}

impl ContextClient {
    /// Connect to a context server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<ContextClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        Ok(ContextClient {
            stream,
            decoder: Decoder::new(),
        })
    }

    fn request(&mut self, msg: &Message) -> Result<Message, ClientError> {
        self.stream.write_all(&encode(msg))?;
        let mut buf = [0u8; 4096];
        loop {
            match self.decoder.next() {
                Ok(m) => return Ok(m),
                Err(DecodeError::Incomplete) => {}
                Err(e) => return Err(ClientError::Protocol(e.to_string())),
            }
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(ClientError::Protocol("server closed connection".into()));
            }
            self.decoder.extend(&buf[..n]);
        }
    }

    /// Look up the congestion context for `path` (registers this client
    /// as an active sender on it).
    pub fn lookup(&mut self, path: PathKey) -> Result<ContextSnapshot, ClientError> {
        match self.request(&Message::Lookup { path })? {
            Message::Context(c) => Ok(c),
            Message::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// The busiest `limit` paths the server knows about (dashboard view).
    pub fn snapshot(&mut self, limit: u16) -> Result<Vec<(PathKey, ContextSnapshot)>, ClientError> {
        match self.request(&Message::Snapshot { limit })? {
            Message::Paths(paths) => Ok(paths),
            Message::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Report a finished connection on `path`.
    pub fn report(&mut self, path: PathKey, summary: FlowSummary) -> Result<(), ClientError> {
        match self.request(&Message::Report { path, summary })? {
            Message::ReportOk => Ok(()),
            Message::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::StoreConfig;

    fn start_server() -> (ContextServer, SocketAddr) {
        let store = sync_store(ContextStore::new(StoreConfig {
            window_ns: 10_000_000_000,
            capacity_bps: Some(10_000_000.0),
            queue_alpha: 0.3,
        }));
        let server = ContextServer::start("127.0.0.1:0", store).expect("bind");
        let addr = server.addr();
        (server, addr)
    }

    fn summary(bytes: u64) -> FlowSummary {
        FlowSummary {
            bytes,
            duration_ns: 1_000_000_000,
            mean_rtt_ms: 170.0,
            min_rtt_ms: 150.0,
            retransmits: 2,
            timeouts: 0,
        }
    }

    #[test]
    fn lookup_report_roundtrip() {
        let (server, addr) = start_server();
        let mut client = ContextClient::connect(addr).expect("connect");

        let c0 = client.lookup(PathKey(9)).expect("lookup");
        assert_eq!(c0.competing, 0);
        assert_eq!(c0.utilization, 0.0);

        // A second lookup sees the first as competing.
        let c1 = client.lookup(PathKey(9)).expect("lookup");
        assert_eq!(c1.competing, 1);

        client
            .report(PathKey(9), summary(1_000_000))
            .expect("report");
        let c2 = client.lookup(PathKey(9)).expect("lookup");
        // One reported (released), one still active, one new from c1's slot.
        assert_eq!(c2.competing, 1);
        assert!(c2.utilization > 0.0, "report should raise utilization");
        assert!((c2.queue_ms - 20.0).abs() < 1e-9);

        assert_eq!(server.stats().lookups.load(Ordering::Relaxed), 3);
        assert_eq!(server.stats().reports.load(Ordering::Relaxed), 1);
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_share_state() {
        let (server, addr) = start_server();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut c = ContextClient::connect(addr).expect("connect");
                    c.lookup(PathKey(1)).expect("lookup");
                    c.report(PathKey(1), summary(500_000)).expect("report");
                })
            })
            .collect();
        for t in threads {
            t.join().expect("client thread");
        }
        let mut c = ContextClient::connect(addr).expect("connect");
        let snap = c.lookup(PathKey(1)).expect("lookup");
        // All four lookups were released by reports.
        assert_eq!(snap.competing, 0);
        assert!(snap.utilization > 0.0);
        assert_eq!(server.stats().reports.load(Ordering::Relaxed), 4);
        assert_eq!(server.stats().connections.load(Ordering::Relaxed), 5);
        server.shutdown();
    }

    #[test]
    fn malformed_frame_gets_error_and_disconnect() {
        let (server, addr) = start_server();
        let mut raw = TcpStream::connect(addr).expect("connect");
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Garbage version byte.
        raw.write_all(&[0, 0, 0, 2, 77, 1]).unwrap();
        let mut buf = Vec::new();
        let mut chunk = [0u8; 1024];
        loop {
            match raw.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(_) => break,
            }
        }
        let mut d = Decoder::new();
        d.extend(&buf);
        match d.next().expect("error frame") {
            Message::Error { code, .. } => assert_eq!(code, 422),
            other => panic!("expected error, got {other:?}"),
        }
        assert_eq!(server.stats().protocol_errors.load(Ordering::Relaxed), 1);
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly_with_open_connections() {
        let (server, addr) = start_server();
        let _idle = ContextClient::connect(addr).expect("connect");
        // Shut down while a client is connected but idle: must not hang.
        let start = std::time::Instant::now();
        server.shutdown();
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "shutdown took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn snapshot_returns_busiest_paths_first() {
        let (server, addr) = start_server();
        let mut c = ContextClient::connect(addr).expect("connect");
        c.report(PathKey(1), summary(500_000)).expect("report");
        c.report(PathKey(2), summary(6_000_000)).expect("report");
        c.report(PathKey(3), summary(50_000)).expect("report");
        let top = c.snapshot(2).expect("snapshot");
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, PathKey(2), "busiest first: {top:?}");
        assert!(top[0].1.utilization >= top[1].1.utilization);
        let all = c.snapshot(100).expect("snapshot");
        assert_eq!(all.len(), 3);
        server.shutdown();
    }

    #[test]
    fn paths_are_isolated_across_clients() {
        let (server, addr) = start_server();
        let mut a = ContextClient::connect(addr).expect("connect");
        let mut b = ContextClient::connect(addr).expect("connect");
        a.lookup(PathKey(1)).unwrap();
        a.report(PathKey(1), summary(2_000_000)).unwrap();
        let other = b.lookup(PathKey(2)).unwrap();
        assert_eq!(other.utilization, 0.0);
        assert_eq!(other.competing, 0);
        server.shutdown();
    }
}
