//! Property-based invariants of the context store and wire protocol.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use phi_core::context::{
    ContextStore, FlowSummary, PathKey, SnapshotError, StoreConfig, SNAPSHOT_VERSION,
};
use phi_core::server::{ClientConfig, ClientError, ContextClient};
use phi_core::shard::ShardedStore;
use phi_core::wire::{encode, DecodeError, Decoder, Message, ReplOp, Role};
use phi_tcp::hook::ContextSnapshot;

/// Frame type codes 1..=15 are assigned (15 is the sharded snapshot sync
/// added with the sharded store); everything above is unknown and must
/// decode as the *recoverable* `BadType`.
const FIRST_UNKNOWN_TYPE: u8 = 16;

/// Type codes of the batch frames added after the original 1..=11 set —
/// the frames a pre-batch decoder must skip recoverably.
const BATCH_TYPES: std::ops::RangeInclusive<u8> = 12..=14;

fn arb_summary() -> impl Strategy<Value = FlowSummary> {
    (
        0u64..u64::MAX / 2,
        0u64..u64::MAX / 2,
        0.0f64..10_000.0,
        0.0f64..10_000.0,
        any::<u32>(),
        any::<u32>(),
    )
        .prop_map(
            |(bytes, duration_ns, mean_rtt_ms, min_rtt_ms, retransmits, timeouts)| FlowSummary {
                bytes,
                duration_ns,
                mean_rtt_ms,
                min_rtt_ms,
                retransmits,
                timeouts,
            },
        )
}

fn arb_snapshot() -> impl Strategy<Value = ContextSnapshot> {
    (0.0f64..1.0, 0.0f64..10_000.0, any::<u32>()).prop_map(|(u, q, n)| ContextSnapshot {
        utilization: u,
        queue_ms: q,
        competing: n,
    })
}

fn arb_role() -> impl Strategy<Value = Role> {
    prop_oneof![Just(Role::Primary), Just(Role::Backup)]
}

fn arb_replop() -> impl Strategy<Value = ReplOp> {
    prop_oneof![
        (any::<u64>(), any::<u64>()).prop_map(|(p, now_ns)| ReplOp::Lookup {
            path: PathKey(p),
            now_ns,
        }),
        (any::<u64>(), any::<u64>(), arb_summary()).prop_map(|(p, now_ns, summary)| {
            ReplOp::Report {
                path: PathKey(p),
                now_ns,
                summary,
            }
        }),
    ]
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        any::<u64>().prop_map(|p| Message::Lookup { path: PathKey(p) }),
        arb_snapshot().prop_map(Message::Context),
        (any::<u64>(), arb_summary()).prop_map(|(p, summary)| Message::Report {
            path: PathKey(p),
            summary,
        }),
        Just(Message::ReportOk),
        (any::<u16>(), "[ -~]{0,300}").prop_map(|(code, message)| Message::Error { code, message }),
        any::<u16>().prop_map(|limit| Message::Snapshot { limit }),
        proptest::collection::vec((any::<u64>(), arb_snapshot()), 0..40).prop_map(|entries| {
            Message::Paths(entries.into_iter().map(|(k, s)| (PathKey(k), s)).collect())
        }),
        Just(Message::EpochQuery),
        (any::<u64>(), arb_role()).prop_map(|(epoch, role)| Message::Epoch { epoch, role }),
        (any::<u64>(), any::<u64>(), arb_replop())
            .prop_map(|(epoch, seq, op)| Message::Replicate { epoch, seq, op }),
        (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..300))
            .prop_map(|(epoch, blob)| Message::SnapshotSync { epoch, blob }),
        arb_batch_message(),
    ]
}

/// The three batch frames (including the zero-item case — a legal,
/// if pointless, frame).
fn arb_batch_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        proptest::collection::vec((any::<u64>(), arb_summary()), 0..40).prop_map(|items| {
            Message::BatchReport(items.into_iter().map(|(p, s)| (PathKey(p), s)).collect())
        }),
        proptest::collection::vec(any::<u64>(), 0..60)
            .prop_map(|paths| Message::BatchQuery(paths.into_iter().map(PathKey).collect())),
        proptest::collection::vec(arb_snapshot(), 0..60).prop_map(Message::BatchReply),
    ]
}

/// Scripted context server for the client-pairing property. Replies to
/// `Lookup { path: p }` with a snapshot whose `queue_ms` encodes `p`, so
/// the client can prove each reply belongs to *its* request. Op `p` of
/// the script controls the reply: sleep past the client's deadline when
/// marked late, and write the frame in `chunk`-byte fragments.
fn scripted_server(
    ops: Vec<(bool, usize)>,
    late: Duration,
) -> (SocketAddr, Arc<AtomicBool>, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    listener.set_nonblocking(true).expect("nonblocking");
    let stop = Arc::new(AtomicBool::new(false));
    let accept = {
        let stop = stop.clone();
        let ops = Arc::new(ops);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let ops = ops.clone();
                        std::thread::spawn(move || scripted_handler(stream, &ops, late));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => return,
                }
            }
        })
    };
    (addr, stop, accept)
}

fn scripted_handler(mut stream: TcpStream, ops: &[(bool, usize)], late: Duration) {
    let mut dec = Decoder::new();
    let mut buf = [0u8; 1024];
    loop {
        match dec.next() {
            Ok(Message::Lookup { path }) => {
                let (is_late, chunk) = ops.get(path.0 as usize).copied().unwrap_or((false, 1));
                if is_late {
                    std::thread::sleep(late);
                }
                let reply = encode(&Message::Context(ContextSnapshot {
                    utilization: 0.5,
                    queue_ms: path.0 as f64,
                    competing: 1,
                }));
                for piece in reply.chunks(chunk.max(1)) {
                    if stream.write_all(piece).is_err() {
                        return;
                    }
                    let _ = stream.flush();
                }
            }
            Ok(_) => return,
            Err(DecodeError::Incomplete) => match stream.read(&mut buf) {
                Ok(0) | Err(_) => return,
                Ok(n) => dec.extend(&buf[..n]),
            },
            Err(_) => return,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `Decoder` + `ContextClient` never deliver a mismatched reply, for
    /// any interleaving of on-time and past-deadline replies and any
    /// server-side fragmentation. Each reply encodes its request's path;
    /// an `Ok` whose payload names a different path would mean a stale
    /// reply got paired with a newer request (the pre-fix desync bug).
    /// After any failed call the connection must short-circuit with
    /// `Poisoned` — never touch the wire where the stale bytes live.
    #[test]
    fn client_never_pairs_a_reply_with_the_wrong_request(
        ops in proptest::collection::vec((any::<bool>(), 1usize..9), 1..6),
    ) {
        let late = Duration::from_millis(120);
        let cfg = ClientConfig {
            connect_timeout: Duration::from_secs(2),
            request_deadline: Duration::from_millis(40),
        };
        let (addr, stop, accept) = scripted_server(ops.clone(), late);
        let mut client = ContextClient::connect_with(addr, cfg).expect("connect");
        for (i, &(is_late, _)) in ops.iter().enumerate() {
            match client.lookup(PathKey(i as u64)) {
                Ok(snap) => {
                    prop_assert_eq!(
                        snap.queue_ms, i as f64,
                        "reply paired with the wrong request"
                    );
                    prop_assert!(!is_late, "a past-deadline reply was delivered");
                }
                Err(e) => {
                    prop_assert!(client.is_poisoned(), "failed call left conn usable: {}", e);
                    match client.lookup(PathKey(i as u64)) {
                        Err(ClientError::Poisoned) => {}
                        other => prop_assert!(
                            false,
                            "poisoned connection served a call: {:?}",
                            other.map(|s| s.queue_ms)
                        ),
                    }
                    client = ContextClient::connect_with(addr, cfg).expect("reconnect");
                }
            }
        }
        stop.store(true, Ordering::Release);
        accept.join().expect("accept thread");
    }

    #[test]
    fn wire_roundtrip_any_message(msg in arb_message()) {
        let frame = encode(&msg);
        let mut d = Decoder::new();
        d.extend(&frame);
        prop_assert_eq!(d.next().unwrap(), msg);
        prop_assert_eq!(d.next(), Err(DecodeError::Incomplete));
    }

    #[test]
    fn wire_roundtrip_survives_any_fragmentation(
        msgs in proptest::collection::vec(arb_message(), 1..8),
        chunk in 1usize..17,
    ) {
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&encode(m));
        }
        let mut d = Decoder::new();
        let mut decoded = Vec::new();
        for piece in stream.chunks(chunk) {
            d.extend(piece);
            loop {
                match d.next() {
                    Ok(m) => decoded.push(m),
                    Err(DecodeError::Incomplete) => break,
                    Err(e) => prop_assert!(false, "unexpected error {e}"),
                }
            }
        }
        prop_assert_eq!(decoded, msgs);
    }

    /// Arbitrary garbage never panics the decoder: it yields either a
    /// message, an error, or a request for more bytes.
    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut d = Decoder::new();
        d.extend(&bytes);
        for _ in 0..64 {
            match d.next() {
                Ok(_) => {}
                Err(DecodeError::Incomplete) => break,
                Err(_) => break, // connection would be dropped here
            }
        }
    }

    /// Truncation at every point of a frame is a clean "feed me more
    /// bytes", never a panic or a spurious message — and completing the
    /// frame afterwards still yields the original message. This is the
    /// path a slow or half-closed TCP peer exercises constantly.
    #[test]
    fn truncated_frame_is_incomplete_then_completes(msg in arb_message()) {
        let frame = encode(&msg);
        // All prefixes for small frames; a uniform sample of ~64 for big
        // ones (PATHS frames reach a couple of KB).
        let stride = (frame.len() / 64).max(1);
        for cut in (0..frame.len()).step_by(stride) {
            let mut d = Decoder::new();
            d.extend(&frame[..cut]);
            prop_assert_eq!(d.next(), Err(DecodeError::Incomplete),
                "prefix of {} of {} bytes decoded", cut, frame.len());
            d.extend(&frame[cut..]);
            prop_assert_eq!(d.next().unwrap(), msg.clone(), "completion after cut {}", cut);
            prop_assert_eq!(d.next(), Err(DecodeError::Incomplete));
        }
    }

    /// A frame carrying the wrong protocol version is rejected as
    /// `BadVersion` for every message shape — including version bytes
    /// that alias a valid type code.
    #[test]
    fn wrong_version_rejected(msg in arb_message(), bad in any::<u8>()) {
        prop_assume!(bad != 1); // VERSION
        let mut frame = encode(&msg).to_vec();
        frame[4] = bad; // [u32 len][u8 version][u8 type][payload]
        let mut d = Decoder::new();
        d.extend(&frame);
        prop_assert_eq!(d.next(), Err(DecodeError::BadVersion(bad)));
    }

    /// An unknown type code is rejected as `BadType` regardless of the
    /// payload that follows — and `BadType` is the one *recoverable*
    /// decode error: the unknown frame is consumed whole, so a message
    /// from a future protocol pipelined behind it still decodes. This is
    /// the wire-level forward-compatibility contract.
    #[test]
    fn unknown_type_rejected_and_recoverable(
        msg in arb_message(),
        follower in arb_message(),
        bad in FIRST_UNKNOWN_TYPE..=255,
    ) {
        let mut frame = encode(&msg).to_vec();
        frame[5] = bad;
        let mut d = Decoder::new();
        d.extend(&frame);
        d.extend(&encode(&follower));
        match d.next() {
            Err(e @ DecodeError::BadType(t)) => {
                prop_assert_eq!(t, bad);
                prop_assert!(e.is_recoverable(), "BadType must be recoverable");
            }
            other => prop_assert!(false, "expected BadType, got {:?}", other),
        }
        // The stream is still frame-aligned: the follower decodes intact.
        prop_assert_eq!(d.next().unwrap(), follower);
    }

    /// Shortening the payload while keeping the length header honest
    /// yields `Malformed` (payload ends early) for every message with a
    /// payload — never a panic, never a bogus message. Type codes 4
    /// (REPORT_OK) and 6/1-style fixed shapes with empty tails are
    /// excluded by construction: we only cut frames that have payload
    /// bytes to lose.
    #[test]
    fn short_payload_with_honest_length_is_malformed(msg in arb_message(), drop in 1usize..9) {
        let full = encode(&msg).to_vec();
        let payload_len = full.len() - 6; // after len+version+type
        prop_assume!(payload_len >= 1);
        let drop = drop.min(payload_len);
        let mut frame = full;
        frame.truncate(frame.len() - drop);
        // Rewrite the length header to match the shortened frame, so the
        // decoder sees a "complete" frame whose payload ends early.
        let new_len = (frame.len() - 4) as u32;
        frame[..4].copy_from_slice(&new_len.to_be_bytes());
        let mut d = Decoder::new();
        d.extend(&frame);
        match d.next() {
            Err(DecodeError::Malformed(_)) => {}
            other => prop_assert!(false, "expected Malformed, got {:?}", other),
        }
    }

    /// Store invariants under arbitrary interleavings of lookups/reports:
    /// utilization stays in [0,1], competing equals lookups minus reports
    /// (floored at zero), and time never has to move monotonically.
    #[test]
    fn store_invariants_under_interleaving(
        ops in proptest::collection::vec((any::<bool>(), 0u64..3, 0u64..100_000_000_000, arb_summary()), 1..200),
    ) {
        let mut store = ContextStore::new(StoreConfig {
            window_ns: 10_000_000_000,
            capacity_bps: Some(10_000_000.0),
            queue_alpha: 0.3,
        });
        let mut balance = [0i64; 3];
        for (is_lookup, path_idx, now, summary) in ops {
            let path = PathKey(path_idx);
            if is_lookup {
                let snap = store.lookup(path, now);
                prop_assert!((0.0..=1.0).contains(&snap.utilization));
                prop_assert!(snap.queue_ms >= 0.0 && snap.queue_ms.is_finite());
                prop_assert_eq!(i64::from(snap.competing), balance[path_idx as usize].max(0));
                balance[path_idx as usize] += 1;
            } else {
                store.report(path, now, &summary);
                balance[path_idx as usize] = (balance[path_idx as usize] - 1).max(0);
            }
        }
    }

    /// Snapshot/restore is lossless for any store state reachable through
    /// the public API, and the epoch tag survives verbatim: the restored
    /// store is `==` the original (same paths, same EWMA state, same
    /// recent-report ring), so a restarted server resumes mid-estimate.
    #[test]
    fn snapshot_roundtrip_any_store_state(
        ops in proptest::collection::vec(
            (any::<bool>(), 0u64..5, 0u64..100_000_000_000, arb_summary()),
            0..120,
        ),
        epoch in any::<u64>(),
    ) {
        let mut store = ContextStore::new(StoreConfig {
            window_ns: 10_000_000_000,
            capacity_bps: None, // exercise learned capacity too
            queue_alpha: 0.3,
        });
        for (is_lookup, path_idx, now, summary) in ops {
            if is_lookup {
                store.lookup(PathKey(path_idx), now);
            } else {
                store.report(PathKey(path_idx), now, &summary);
            }
        }
        let blob = store.encode_snapshot(epoch);
        let (restored, got_epoch) = ContextStore::decode_snapshot(&blob)
            .expect("own snapshot must decode");
        prop_assert_eq!(got_epoch, epoch);
        prop_assert_eq!(&restored, &store, "restore lost state");
        // Determinism of the encoding itself: same state, same bytes.
        prop_assert_eq!(restored.encode_snapshot(epoch), blob);
    }

    /// A snapshot from a *future* format version is a clean typed error —
    /// never a panic, never a silently misread store — no matter what the
    /// rest of the blob holds.
    #[test]
    fn future_snapshot_version_is_typed_error(
        version in (SNAPSHOT_VERSION + 1)..=255,
        body in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let mut blob = vec![version];
        blob.extend_from_slice(&body);
        prop_assert_eq!(
            ContextStore::decode_snapshot(&blob),
            Err(SnapshotError::UnsupportedVersion(version))
        );
    }

    /// Truncating a valid snapshot anywhere past the version byte yields
    /// a typed error (`Truncated` or `Malformed`), never a panic and
    /// never a partially-restored store presented as success.
    #[test]
    fn truncated_snapshot_is_typed_error(
        ops in proptest::collection::vec(
            (any::<bool>(), 0u64..3, 0u64..50_000_000_000, arb_summary()),
            1..40,
        ),
    ) {
        let mut store = ContextStore::new(StoreConfig::default());
        for (is_lookup, path_idx, now, summary) in ops {
            if is_lookup {
                store.lookup(PathKey(path_idx), now);
            } else {
                store.report(PathKey(path_idx), now, &summary);
            }
        }
        let blob = store.encode_snapshot(1);
        let stride = (blob.len() / 48).max(1);
        for cut in (1..blob.len()).step_by(stride) {
            match ContextStore::decode_snapshot(&blob[..cut]) {
                Err(SnapshotError::Truncated) | Err(SnapshotError::Malformed(_)) => {}
                Ok(_) => prop_assert!(
                    false,
                    "truncation at {} of {} decoded successfully",
                    cut,
                    blob.len()
                ),
                Err(e) => prop_assert!(false, "unexpected error at {}: {:?}", cut, e),
            }
        }
    }

    /// The sharding tentpole's correctness contract: a `ShardedStore`
    /// with any shard count is *observably equivalent* to the classic
    /// store for any interleaving of lookups and reports — identical
    /// snapshots returned to every query, identical counters, identical
    /// loss signals, identical dashboard views. Paths never interact in
    /// the store, so splitting the keyspace must be invisible.
    #[test]
    fn sharded_store_matches_classic_for_any_interleaving(
        ops in proptest::collection::vec(
            (any::<bool>(), 0u64..16, 0u64..100_000_000_000, arb_summary()),
            1..200,
        ),
    ) {
        let cfg = StoreConfig {
            window_ns: 10_000_000_000,
            capacity_bps: Some(10_000_000.0),
            queue_alpha: 0.3,
        };
        for shards in [1usize, 4, 16] {
            let mut classic = ContextStore::new(cfg);
            let mut sharded = ShardedStore::new(cfg, shards);
            for &(is_lookup, path_idx, now, summary) in &ops {
                let path = PathKey(path_idx);
                if is_lookup {
                    prop_assert_eq!(
                        sharded.lookup(path, now),
                        classic.lookup(path, now),
                        "lookup diverged at {} shards",
                        shards
                    );
                } else {
                    sharded.report(path, now, &summary);
                    classic.report(path, now, &summary);
                }
                prop_assert_eq!(sharded.peek(path, now), classic.peek(path, now));
            }
            prop_assert_eq!(sharded.path_count(), classic.path_count());
            prop_assert_eq!(
                sharded.snapshot(100_000_000_000),
                classic.snapshot(100_000_000_000),
                "merged snapshot diverged at {} shards",
                shards
            );
            for p in 0..16u64 {
                let p = PathKey(p);
                prop_assert_eq!(sharded.loss_signal(p), classic.loss_signal(p));
                prop_assert_eq!(sharded.traffic_counters(p), classic.traffic_counters(p));
            }
        }
    }

    /// Forward compatibility of the batch extension: to a pre-batch
    /// decoder, type codes 12..=14 are exactly "unknown types" — the
    /// decoder never inspects an unknown frame's payload, so remapping a
    /// real batch frame's type code into today's unknown range *is* a
    /// pre-batch decoder seeing a batch frame. It must surface the
    /// recoverable `BadType` and stay frame-aligned: a message pipelined
    /// behind the batch still decodes intact, whatever the batch held
    /// (zero items, full items, any payload).
    #[test]
    fn batch_frames_skip_recoverably_on_a_pre_batch_decoder(
        batch in arb_batch_message(),
        follower in arb_message(),
    ) {
        let mut frame = encode(&batch).to_vec();
        let batch_type = frame[5];
        prop_assert!(BATCH_TYPES.contains(&batch_type), "not a batch frame: {}", batch_type);
        let unknown = FIRST_UNKNOWN_TYPE + (batch_type - BATCH_TYPES.start());
        frame[5] = unknown;
        let mut d = Decoder::new();
        d.extend(&frame);
        d.extend(&encode(&follower));
        match d.next() {
            Err(e @ DecodeError::BadType(t)) => {
                prop_assert_eq!(t, unknown);
                prop_assert!(e.is_recoverable(), "pre-batch decoders must keep serving");
            }
            other => prop_assert!(false, "expected BadType, got {:?}", other),
        }
        prop_assert_eq!(d.next().unwrap(), follower, "stream desynchronized");
    }
}
