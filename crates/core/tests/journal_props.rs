//! Property-based invariants of the sweep-journal codec.
//!
//! The journal's whole job is surviving hostile endings: processes
//! killed mid-append, bit rot in the middle of the file, records from
//! future versions. These properties pin the recovery contract —
//! lossless roundtrip of what was written, torn tails truncated to the
//! last complete frame, and corruption quarantining exactly one record.

use proptest::prelude::*;

use phi_core::journal::{crc32, encode_frame, fnv1a, recover, RunRecord};
use phi_tcp::report::RunMetrics;

fn arb_metrics() -> impl Strategy<Value = RunMetrics> {
    (
        0.0f64..10_000.0,
        0.0f64..10_000.0,
        0.0f64..1.0,
        0.0f64..10_000.0,
        0.0f64..1.0,
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(
            |(tput, queue, loss, rtt, util, completed, aborted, bytes)| RunMetrics {
                throughput_mbps: tput,
                queueing_delay_ms: queue,
                loss_rate: loss,
                mean_rtt_ms: rtt,
                utilization: util,
                flows_completed: completed,
                flows_aborted: aborted,
                bytes,
            },
        )
}

fn arb_record() -> impl Strategy<Value = RunRecord> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        arb_metrics(),
    )
        .prop_map(|(run_index, seed, spec_hash, events, metrics)| RunRecord {
            run_index,
            seed,
            spec_hash,
            events,
            metrics,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every record written comes back bit-exactly, in order, with no
    /// quarantine and no torn bytes — for any record contents,
    /// including extreme f64s and u64s.
    #[test]
    fn roundtrip_is_lossless(records in collection::vec(arb_record(), 0..20)) {
        let bytes: Vec<u8> = records.iter().flat_map(encode_frame).collect();
        let rec = recover(&bytes);
        prop_assert_eq!(&rec.records, &records);
        prop_assert_eq!(rec.quarantined, 0);
        prop_assert_eq!(rec.torn_bytes, 0);
        // Fingerprints are a pure function of content.
        for r in &records {
            prop_assert_eq!(r.fingerprint(), fnv1a(&r.encode()));
        }
    }

    /// Cutting the stream anywhere loses at most the (single) frame the
    /// cut lands in: every frame wholly before the cut survives, and
    /// `valid_len` points exactly at its end, so an append after
    /// truncation continues a well-formed journal.
    #[test]
    fn truncation_recovers_the_whole_prefix(
        records in collection::vec(arb_record(), 1..12),
        cut_frac in 0.0f64..1.0,
    ) {
        let frames: Vec<Vec<u8>> = records.iter().map(encode_frame).collect();
        let bytes: Vec<u8> = frames.concat();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let rec = recover(&bytes[..cut]);
        // How many whole frames fit in the first `cut` bytes?
        let mut whole = 0usize;
        let mut end = 0usize;
        for f in &frames {
            if end + f.len() > cut {
                break;
            }
            end += f.len();
            whole += 1;
        }
        prop_assert_eq!(rec.records.len(), whole);
        prop_assert_eq!(&rec.records[..], &records[..whole]);
        prop_assert_eq!(rec.quarantined, 0);
        prop_assert_eq!(rec.valid_len(cut), end);
    }

    /// Flipping one byte inside a record's payload or CRC quarantines
    /// that record and only that record: every other record still
    /// decodes, in order. (Corrupting a length field is tail damage
    /// instead — framing below the flip is unrecoverable — so this
    /// property aims the flip strictly inside payload + CRC bytes.)
    #[test]
    fn payload_corruption_quarantines_one_record(
        records in collection::vec(arb_record(), 1..10),
        victim_frac in 0.0f64..1.0,
        offset_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let frames: Vec<Vec<u8>> = records.iter().map(encode_frame).collect();
        let victim = ((frames.len() as f64) * victim_frac) as usize % frames.len();
        let start: usize = frames[..victim].iter().map(Vec::len).sum();
        // Skip the 4-byte length prefix; flip within payload + CRC.
        let span = frames[victim].len() - 4;
        let offset = 4 + (((span as f64) * offset_frac) as usize).min(span - 1);
        let mut bytes: Vec<u8> = frames.concat();
        bytes[start + offset] ^= flip;
        let rec = recover(&bytes);
        prop_assert_eq!(rec.quarantined, 1);
        prop_assert_eq!(rec.torn_bytes, 0);
        let survivors: Vec<&RunRecord> = records
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != victim)
            .map(|(_, r)| r)
            .collect();
        let recovered: Vec<&RunRecord> = rec.records.iter().collect();
        prop_assert_eq!(recovered, survivors);
    }

    /// The CRC actually detects every single-byte payload change (a
    /// property of CRC-32 worth pinning because the codec depends on
    /// it: Hamming distance ≥ 2 over any payload we frame).
    #[test]
    fn crc_detects_any_single_byte_flip(
        record in arb_record(),
        offset_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let payload = record.encode();
        let offset = (((payload.len() as f64) * offset_frac) as usize).min(payload.len() - 1);
        let mut mutated = payload.clone();
        mutated[offset] ^= flip;
        prop_assert!(crc32(&mutated) != crc32(&payload), "flip went undetected");
    }
}
