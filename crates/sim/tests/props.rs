//! Property-based invariants of the simulator's core data structures.

use proptest::prelude::*;

use phi_sim::packet::{Flags, FlowId, NodeId, Packet, SackBlocks};
use phi_sim::queue::{Capacity, Discipline, DropTail, Verdict};
use phi_sim::stats::{OnlineStats, RollingUtil};
use phi_sim::time::{Dur, Time};
use phi_sim::topology::TopologyBuilder;

fn pkt(id: u64, size: u32) -> Packet {
    Packet {
        id,
        flow: FlowId(0),
        src: NodeId(0),
        dst: NodeId(1),
        src_port: 0,
        dst_port: 0,
        seq: id,
        ack: 0,
        flags: Flags::empty(),
        size,
        sent_at: Time::ZERO,
        echo: Time::ZERO,
        sack: SackBlocks::EMPTY,
    }
}

proptest! {
    #[test]
    fn time_add_then_sub_roundtrips(base in 0u64..u64::MAX / 2, delta in 0u64..u64::MAX / 4) {
        let t = Time::from_nanos(base);
        let d = Dur::from_nanos(delta);
        prop_assert_eq!((t + d) - d, t);
        prop_assert_eq!((t + d) - t, d);
    }

    #[test]
    fn transmission_time_monotone(
        size_a in 1u32..100_000,
        extra in 1u32..100_000,
        rate in 1_000u64..100_000_000_000,
    ) {
        let small = Dur::transmission(size_a, rate);
        let large = Dur::transmission(size_a.saturating_add(extra), rate);
        prop_assert!(large >= small);
        // Faster link, same packet: no slower.
        let faster = Dur::transmission(size_a, rate.saturating_mul(2));
        prop_assert!(faster <= small);
    }

    #[test]
    fn droptail_never_exceeds_capacity(
        limit in 1usize..64,
        sizes in proptest::collection::vec(40u32..2000, 1..200),
    ) {
        let mut q = DropTail::new(Capacity::Packets(limit));
        for (i, &s) in sizes.iter().enumerate() {
            let _ = q.offer(pkt(i as u64, s), Time::from_nanos(i as u64));
            prop_assert!(q.len_packets() <= limit);
        }
    }

    #[test]
    fn droptail_byte_accounting_balances(
        cap_bytes in 1_000u64..100_000,
        sizes in proptest::collection::vec(40u32..3000, 1..200),
    ) {
        let mut q = DropTail::new(Capacity::Bytes(cap_bytes));
        let mut accepted = 0u64;
        for (i, &s) in sizes.iter().enumerate() {
            if q.offer(pkt(i as u64, s), Time::ZERO) == Verdict::Enqueued {
                accepted += u64::from(s);
            }
            prop_assert!(q.len_bytes() <= cap_bytes);
        }
        let mut drained = 0u64;
        while let Some((p, _)) = q.take() {
            drained += u64::from(p.size);
        }
        prop_assert_eq!(accepted, drained);
        prop_assert_eq!(q.len_bytes(), 0);
    }

    #[test]
    fn droptail_preserves_fifo_order(sizes in proptest::collection::vec(40u32..1500, 1..100)) {
        let mut q = DropTail::new(Capacity::Packets(sizes.len()));
        for (i, &s) in sizes.iter().enumerate() {
            prop_assert_eq!(q.offer(pkt(i as u64, s), Time::ZERO), Verdict::Enqueued);
        }
        let mut last = None;
        while let Some((p, _)) = q.take() {
            if let Some(prev) = last {
                prop_assert!(p.id > prev);
            }
            last = Some(p.id);
        }
    }

    #[test]
    fn rolling_util_stays_in_unit_range(
        busy_gaps in proptest::collection::vec((1u64..10_000_000, 1u64..10_000_000), 1..50),
    ) {
        let mut u = RollingUtil::new(Dur::from_millis(10));
        let mut now = Time::ZERO;
        for (busy, idle) in busy_gaps {
            u.begin_busy(now);
            now += Dur::from_nanos(busy);
            u.end_busy(now);
            let frac = u.utilization(now);
            prop_assert!((0.0..=1.0).contains(&frac), "frac {frac}");
            now += Dur::from_nanos(idle);
            let frac = u.utilization(now);
            prop_assert!((0.0..=1.0).contains(&frac), "frac {frac}");
        }
    }

    #[test]
    fn online_stats_mean_within_min_max(xs in proptest::collection::vec(-1e12f64..1e12, 1..500)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let mean = s.mean();
        prop_assert!(mean >= s.min().unwrap() - 1e-6);
        prop_assert!(mean <= s.max().unwrap() + 1e-6);
        prop_assert!(s.variance() >= 0.0);
    }

    /// Routes on a random ring-with-chords topology always reach their
    /// destination in at most |V| hops.
    #[test]
    fn routes_terminate_at_destination(
        n in 3usize..12,
        chords in proptest::collection::vec((0usize..12, 0usize..12), 0..8),
    ) {
        let mut b = TopologyBuilder::new();
        let nodes: Vec<NodeId> = (0..n).map(|_| b.add_node()).collect();
        let cap = Capacity::Packets(4);
        for i in 0..n {
            b.add_duplex(nodes[i], nodes[(i + 1) % n], 1_000_000, Dur::from_millis(1), cap);
        }
        for (a, z) in chords {
            let (a, z) = (a % n, z % n);
            if a != z {
                b.add_duplex(nodes[a], nodes[z], 1_000_000, Dur::from_millis(1), cap);
            }
        }
        let t = b.build();
        for &src in &nodes {
            for &dst in &nodes {
                if src == dst {
                    continue;
                }
                let mut at = src;
                let mut hops = 0;
                while at != dst {
                    let link = t.next_hop(at, dst).expect("route exists");
                    at = t.link(link).to;
                    hops += 1;
                    prop_assert!(hops <= n, "routing loop from {src} to {dst}");
                }
            }
        }
    }

    #[test]
    fn sack_blocks_bounded_and_ordered_iteration(
        ranges in proptest::collection::vec((0u64..1000, 1u64..50), 0..6),
    ) {
        let mut sack = SackBlocks::EMPTY;
        let mut pushed = 0;
        for (start, len) in ranges {
            if sack.push(start, start + len) {
                pushed += 1;
            }
        }
        prop_assert!(sack.len() <= 3);
        prop_assert_eq!(sack.len(), pushed.min(3));
        for (s, e) in sack.iter() {
            prop_assert!(s < e);
        }
    }
}
