//! Property-based invariants of the simulator's core data structures.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use proptest::prelude::*;

use phi_sim::engine::{packet_to, Agent, Ctx, Simulator};
use phi_sim::faults::{DownPolicy, ImpairmentPlan, LossModel};
use phi_sim::packet::{Flags, FlowId, LinkId, NodeId, Packet, SackBlocks};
use phi_sim::queue::{Capacity, Discipline, DropTail, Verdict};
use phi_sim::sched::TieredScheduler;
use phi_sim::stats::{OnlineStats, RollingUtil};
use phi_sim::time::{Dur, Time};
use phi_sim::topology::TopologyBuilder;
use phi_workload::SeedRng;

/// One step of an interleaved scheduler workload: schedule an event
/// `delta` nanoseconds past the current clock, pop unconditionally, or
/// pop against a bounded deadline.
#[derive(Debug, Clone, Copy)]
enum SchedOp {
    Push(u64),
    Pop,
    PopIf(u64),
}

fn sched_op() -> impl Strategy<Value = SchedOp> {
    prop_oneof![
        // Same-timestamp bursts and dense near-future traffic.
        (0u64..4).prop_map(SchedOp::Push),
        (0u64..1 << 21).prop_map(SchedOp::Push),
        // Far-future outliers, well beyond the wheel horizon
        // (1024 buckets x 2^17 ns ≈ 134 ms ≈ 2^27 ns).
        (1u64 << 26..1u64 << 40).prop_map(SchedOp::Push),
        Just(SchedOp::Pop),
        (0u64..1 << 28).prop_map(SchedOp::PopIf),
    ]
}

fn pkt(id: u64, size: u32) -> Packet {
    Packet {
        id,
        flow: FlowId(0),
        src: NodeId(0),
        dst: NodeId(1),
        src_port: 0,
        dst_port: 0,
        seq: id,
        ack: 0,
        flags: Flags::empty(),
        size,
        sent_at: Time::ZERO,
        echo: Time::ZERO,
        sack: SackBlocks::EMPTY,
    }
}

/// Minimal traffic source for fault-plane properties: `count` packets of
/// 1000 bytes, one every `gap`.
struct Blaster {
    peer: NodeId,
    count: u32,
    gap: Dur,
    sent: u32,
}

impl Agent for Blaster {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer_after(Dur::ZERO, 0);
    }
    fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
    fn on_timer(&mut self, _token: u64, ctx: &mut Ctx<'_>) {
        if self.sent < self.count {
            let mut p = packet_to(self.peer, 2, 1, FlowId(1), 1000);
            p.seq = u64::from(self.sent);
            ctx.send(p);
            self.sent += 1;
            ctx.set_timer_after(self.gap, 0);
        }
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Records packet arrivals (seq, time).
#[derive(Default)]
struct Sink {
    received: Vec<(u64, Time)>,
}

impl Agent for Sink {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        self.received.push((pkt.seq, ctx.now()));
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn loss_model() -> impl Strategy<Value = LossModel> {
    prop_oneof![
        Just(LossModel::None),
        (0.0..0.4f64).prop_map(|p| LossModel::Bernoulli { p }),
        (0.01..0.3f64, 0.05..0.6f64, 0.0..0.05f64, 0.2..0.9f64).prop_map(
            |(p_enter_bad, p_exit_bad, good_loss, bad_loss)| LossModel::GilbertElliott {
                p_enter_bad,
                p_exit_bad,
                good_loss,
                bad_loss,
            }
        ),
    ]
}

/// Everything that parameterizes one random chaos scenario.
#[derive(Debug, Clone)]
struct ChaosCase {
    outages: Vec<(u64, u64)>, // (gap_ms, duration_ms), laid out left to right
    flap: Option<(u64, u64, u64, u64)>, // start_ms, len_ms, mean_down_ms, mean_up_ms
    loss: LossModel,
    corrupt: f64,
    duplicate: f64,
    reorder_p: f64,
    reorder_ms: u64,
    park: bool,
    seed: u64,
    count: u32,
    gap_us: u64,
}

fn chaos_case() -> impl Strategy<Value = ChaosCase> {
    (
        proptest::collection::vec((0u64..150, 1u64..120), 0..3),
        prop_oneof![
            Just(None),
            (0u64..200, 50u64..400, 5u64..40, 5u64..40).prop_map(Some),
        ],
        loss_model(),
        (0.0..0.3f64, 0.0..0.3f64, 0.0..0.5f64, 1u64..15),
        (any::<bool>(), any::<u64>(), 50u32..200, 200u64..2000),
    )
        .prop_map(
            |(outages, flap, loss, (corrupt, duplicate, reorder_p, reorder_ms), rest)| {
                let (park, seed, count, gap_us) = rest;
                ChaosCase {
                    outages,
                    flap,
                    loss,
                    corrupt,
                    duplicate,
                    reorder_p,
                    reorder_ms,
                    park,
                    seed,
                    count,
                    gap_us,
                }
            },
        )
}

fn build_plan(case: &ChaosCase) -> ImpairmentPlan {
    let mut plan = ImpairmentPlan::new()
        .loss(case.loss)
        .corrupt(case.corrupt)
        .duplicate(case.duplicate)
        .reorder(case.reorder_p, Dur::from_millis(case.reorder_ms))
        .down_policy(if case.park {
            DownPolicy::Park
        } else {
            DownPolicy::Drop
        });
    let mut t = 0u64;
    for &(gap, dur) in &case.outages {
        let down = t + gap + 1;
        let up = down + dur;
        plan = plan.outage(Time::from_millis(down), Time::from_millis(up));
        t = up;
    }
    if let Some((start, len, mean_down, mean_up)) = case.flap {
        plan = plan.flap(
            Time::from_millis(start),
            Time::from_millis(start + len),
            Dur::from_millis(mean_down),
            Dur::from_millis(mean_up),
        );
    }
    plan
}

/// Run one chaos case to completion, checking the extended conservation
/// law at intermediate stopping points along the way.
fn run_chaos(case: &ChaosCase) -> Result<(Vec<(u64, Time)>, String), CaseError> {
    let mut b = TopologyBuilder::new();
    let a = b.add_node();
    let z = b.add_node();
    b.add_duplex(a, z, 1_000_000, Dur::from_millis(2), Capacity::Packets(10));
    let mut sim = Simulator::new(b.build());
    sim.install_impairments(LinkId(0), build_plan(case), &SeedRng::new(case.seed));
    sim.add_agent(
        a,
        1,
        Box::new(Blaster {
            peer: z,
            count: case.count,
            gap: Dur::from_micros(case.gap_us),
            sent: 0,
        }),
    );
    let sink = sim.add_agent(z, 2, Box::<Sink>::default());
    for ms in [20u64, 90, 260] {
        sim.run_until(Time::from_millis(ms));
        let c = sim.packet_census();
        prop_assert!(c.conserved(), "mid-run t={ms}ms: {c:?}");
    }
    sim.run_to_completion();
    let c = sim.packet_census();
    prop_assert!(c.conserved(), "completion: {c:?}");
    prop_assert_eq!(c.queued + c.in_flight, 0, "packets stuck: {:?}", c);
    let s = sim.sched_stats();
    prop_assert!(s.conserved(), "scheduler leak: {s:?}");
    let received = sim.agent_as::<Sink>(sink).unwrap().received.clone();
    let fingerprint = format!("{c:?}/{:?}", sim.fault_stats(LinkId(0)));
    Ok((received, fingerprint))
}

proptest! {
    /// Any impairment plan, any seed: every packet is accounted for at
    /// every stopping point, and the whole run is bit-reproducible.
    #[test]
    fn arbitrary_impairments_conserve_and_reproduce(case in chaos_case()) {
        let (recv_a, print_a) = run_chaos(&case)?;
        let (recv_b, print_b) = run_chaos(&case)?;
        prop_assert_eq!(recv_a, recv_b, "same case diverged across reruns");
        prop_assert_eq!(print_a, print_b);
    }
}

proptest! {
    #[test]
    fn time_add_then_sub_roundtrips(base in 0u64..u64::MAX / 2, delta in 0u64..u64::MAX / 4) {
        let t = Time::from_nanos(base);
        let d = Dur::from_nanos(delta);
        prop_assert_eq!((t + d) - d, t);
        prop_assert_eq!((t + d) - t, d);
    }

    #[test]
    fn transmission_time_monotone(
        size_a in 1u32..100_000,
        extra in 1u32..100_000,
        rate in 1_000u64..100_000_000_000,
    ) {
        let small = Dur::transmission(size_a, rate);
        let large = Dur::transmission(size_a.saturating_add(extra), rate);
        prop_assert!(large >= small);
        // Faster link, same packet: no slower.
        let faster = Dur::transmission(size_a, rate.saturating_mul(2));
        prop_assert!(faster <= small);
    }

    #[test]
    fn droptail_never_exceeds_capacity(
        limit in 1usize..64,
        sizes in proptest::collection::vec(40u32..2000, 1..200),
    ) {
        let mut q = DropTail::new(Capacity::Packets(limit));
        for (i, &s) in sizes.iter().enumerate() {
            let _ = q.offer(pkt(i as u64, s), Time::from_nanos(i as u64));
            prop_assert!(q.len_packets() <= limit);
        }
    }

    #[test]
    fn droptail_byte_accounting_balances(
        cap_bytes in 1_000u64..100_000,
        sizes in proptest::collection::vec(40u32..3000, 1..200),
    ) {
        let mut q = DropTail::new(Capacity::Bytes(cap_bytes));
        let mut accepted = 0u64;
        for (i, &s) in sizes.iter().enumerate() {
            if q.offer(pkt(i as u64, s), Time::ZERO) == Verdict::Enqueued {
                accepted += u64::from(s);
            }
            prop_assert!(q.len_bytes() <= cap_bytes);
        }
        let mut drained = 0u64;
        while let Some((p, _)) = q.take() {
            drained += u64::from(p.size);
        }
        prop_assert_eq!(accepted, drained);
        prop_assert_eq!(q.len_bytes(), 0);
    }

    #[test]
    fn droptail_preserves_fifo_order(sizes in proptest::collection::vec(40u32..1500, 1..100)) {
        let mut q = DropTail::new(Capacity::Packets(sizes.len()));
        for (i, &s) in sizes.iter().enumerate() {
            prop_assert_eq!(q.offer(pkt(i as u64, s), Time::ZERO), Verdict::Enqueued);
        }
        let mut last = None;
        while let Some((p, _)) = q.take() {
            if let Some(prev) = last {
                prop_assert!(p.id > prev);
            }
            last = Some(p.id);
        }
    }

    #[test]
    fn rolling_util_stays_in_unit_range(
        busy_gaps in proptest::collection::vec((1u64..10_000_000, 1u64..10_000_000), 1..50),
    ) {
        let mut u = RollingUtil::new(Dur::from_millis(10));
        let mut now = Time::ZERO;
        for (busy, idle) in busy_gaps {
            u.begin_busy(now);
            now += Dur::from_nanos(busy);
            u.end_busy(now);
            let frac = u.utilization(now);
            prop_assert!((0.0..=1.0).contains(&frac), "frac {frac}");
            now += Dur::from_nanos(idle);
            let frac = u.utilization(now);
            prop_assert!((0.0..=1.0).contains(&frac), "frac {frac}");
        }
    }

    #[test]
    fn online_stats_mean_within_min_max(xs in proptest::collection::vec(-1e12f64..1e12, 1..500)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let mean = s.mean();
        prop_assert!(mean >= s.min().unwrap() - 1e-6);
        prop_assert!(mean <= s.max().unwrap() + 1e-6);
        prop_assert!(s.variance() >= 0.0);
    }

    /// Routes on a random ring-with-chords topology always reach their
    /// destination in at most |V| hops.
    #[test]
    fn routes_terminate_at_destination(
        n in 3usize..12,
        chords in proptest::collection::vec((0usize..12, 0usize..12), 0..8),
    ) {
        let mut b = TopologyBuilder::new();
        let nodes: Vec<NodeId> = (0..n).map(|_| b.add_node()).collect();
        let cap = Capacity::Packets(4);
        for i in 0..n {
            b.add_duplex(nodes[i], nodes[(i + 1) % n], 1_000_000, Dur::from_millis(1), cap);
        }
        for (a, z) in chords {
            let (a, z) = (a % n, z % n);
            if a != z {
                b.add_duplex(nodes[a], nodes[z], 1_000_000, Dur::from_millis(1), cap);
            }
        }
        let t = b.build();
        for &src in &nodes {
            for &dst in &nodes {
                if src == dst {
                    continue;
                }
                let mut at = src;
                let mut hops = 0;
                while at != dst {
                    let link = t.next_hop(at, dst).expect("route exists");
                    at = t.link(link).to;
                    hops += 1;
                    prop_assert!(hops <= n, "routing loop from {src} to {dst}");
                }
            }
        }
    }

    /// The tiered scheduler is observationally identical to a plain
    /// binary heap ordered by `(time, insertion seq)`: every pop and
    /// deadline-bounded pop returns the same event in the same order,
    /// regardless of how pushes straddle the wheel horizon.
    #[test]
    fn tiered_scheduler_matches_reference_heap(
        ops in proptest::collection::vec(sched_op(), 1..500),
    ) {
        let mut tiered = TieredScheduler::new();
        let mut model: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut now = 0u64;
        let mut next_seq = 0u64;
        for op in ops {
            match op {
                SchedOp::Push(delta) => {
                    let at = now.saturating_add(delta);
                    tiered.push(Time::from_nanos(at), next_seq);
                    model.push(Reverse((at, next_seq)));
                    next_seq += 1;
                }
                SchedOp::Pop => {
                    let got = tiered.pop();
                    let want = model.pop().map(|Reverse((at, seq))| (at, seq));
                    prop_assert_eq!(
                        got.map(|(t, s)| (t.as_nanos(), s)),
                        want,
                        "pop diverged at seq {}", next_seq
                    );
                    if let Some((at, _)) = want {
                        now = at;
                    }
                }
                SchedOp::PopIf(delta) => {
                    let deadline = now.saturating_add(delta);
                    let due = matches!(model.peek(), Some(Reverse((at, _))) if *at <= deadline);
                    let got = tiered.pop_if(Time::from_nanos(deadline));
                    let want = if due {
                        model.pop().map(|Reverse((at, seq))| (at, seq))
                    } else {
                        None
                    };
                    prop_assert_eq!(
                        got.map(|(t, s)| (t.as_nanos(), s)),
                        want,
                        "pop_if diverged at seq {}", next_seq
                    );
                    if let Some((at, _)) = want {
                        now = at;
                    }
                }
            }
            prop_assert_eq!(tiered.len(), model.len());
        }
        // Drain both to the end: the tails must agree event for event.
        while let Some(Reverse((at, seq))) = model.pop() {
            prop_assert_eq!(
                tiered.pop().map(|(t, s)| (t.as_nanos(), s)),
                Some((at, seq))
            );
        }
        prop_assert!(tiered.is_empty());
        prop_assert_eq!(tiered.counters().scheduled, next_seq);
    }

    #[test]
    fn sack_blocks_bounded_and_ordered_iteration(
        ranges in proptest::collection::vec((0u64..1000, 1u64..50), 0..6),
    ) {
        let mut sack = SackBlocks::EMPTY;
        let mut pushed = 0;
        for (start, len) in ranges {
            if sack.push(start, start + len) {
                pushed += 1;
            }
        }
        prop_assert!(sack.len() <= 3);
        prop_assert_eq!(sack.len(), pushed.min(3));
        for (s, e) in sack.iter() {
            prop_assert!(s < e);
        }
    }
}

// ---------------------------------------------------------------------------
// Backpressure-plane properties: shared-buffer admission and PFC census.
// ---------------------------------------------------------------------------

use phi_sim::switch::{PfcSpec, SharedBuffer, SwitchSpec};

/// One step of an interleaved shared-buffer workload.
#[derive(Debug, Clone, Copy)]
enum PoolOp {
    /// Offer `bytes` to `port` (modulo the port count).
    Admit { port: usize, bytes: u32 },
    /// Release the oldest admitted packet on `port`, if any.
    Release { port: usize },
}

fn pool_op() -> impl Strategy<Value = PoolOp> {
    prop_oneof![
        (0usize..8, 1u32..20_000).prop_map(|(port, bytes)| PoolOp::Admit { port, bytes }),
        (0usize..8, 1u32..20_000).prop_map(|(port, bytes)| PoolOp::Admit { port, bytes }),
        (0usize..8).prop_map(|port| PoolOp::Release { port }),
    ]
}

proptest! {
    /// Dynamic-Threshold admission under any interleaving of arrivals
    /// and drains: total occupancy never exceeds the pool, the total
    /// always equals the sum of the per-port occupancies, and both
    /// ledgers track a reference model exactly.
    #[test]
    fn shared_buffer_never_exceeds_pool(
        pool in 1_000u64..200_000,
        alpha in 0.25f64..16.0,
        ports in 1usize..8,
        ops in proptest::collection::vec(pool_op(), 1..200),
    ) {
        let mut buf = SharedBuffer::new(pool, alpha, ports);
        let mut model: Vec<Vec<u32>> = vec![Vec::new(); ports];
        for op in ops {
            match op {
                PoolOp::Admit { port, bytes } => {
                    let port = port % ports;
                    if buf.try_admit(port, bytes) {
                        model[port].push(bytes);
                    }
                }
                PoolOp::Release { port } => {
                    let port = port % ports;
                    if !model[port].is_empty() {
                        let bytes = model[port].remove(0);
                        buf.release(port, bytes);
                    }
                }
            }
            let expect: u64 = model.iter().flatten().map(|&b| u64::from(b)).sum();
            prop_assert!(buf.total_bytes() <= pool, "pool overrun: {} > {pool}", buf.total_bytes());
            prop_assert_eq!(buf.total_bytes(), expect, "total diverged from model");
            let port_sum: u64 = (0..ports).map(|p| buf.port_bytes(p)).sum();
            prop_assert_eq!(port_sum, expect, "per-port ledger diverged");
            for (p, port_model) in model.iter().enumerate() {
                let want: u64 = port_model.iter().map(|&b| u64::from(b)).sum();
                prop_assert_eq!(buf.port_bytes(p), want, "port {} diverged", p);
            }
        }
    }
}

/// One PFC chain scenario: `count` packets blasted through a PFC switch
/// whose slow egress forces PAUSE/RESUME cycles on the ingress.
#[derive(Debug, Clone)]
struct PfcCase {
    count: u32,
    gap_us: u64,
    xoff: u64,
    xon_frac: f64,
    egress_bps: u64,
    watchdog_ms: Option<u64>,
    checkpoints: Vec<u64>,
}

fn pfc_case() -> impl Strategy<Value = PfcCase> {
    (
        50u32..400,
        50u64..500,
        4_000u64..40_000,
        0.1f64..1.0,
        1_000_000u64..20_000_000,
        prop_oneof![Just(None), (20u64..500).prop_map(Some)],
        proptest::collection::vec(1u64..5_000, 0..4),
    )
        .prop_map(
            |(count, gap_us, xoff, xon_frac, egress_bps, watchdog_ms, checkpoints)| PfcCase {
                count,
                gap_us,
                xoff,
                xon_frac,
                egress_bps,
                watchdog_ms,
                checkpoints,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any PAUSE/RESUME (and watchdog-drain) sequence conserves the
    /// packet census — at arbitrary mid-run checkpoints and at the
    /// drained end state, where every XOFF has been matched by an XON.
    #[test]
    fn pfc_pause_resume_sequences_conserve_census(case in pfc_case()) {
        let mut b = TopologyBuilder::new();
        let a = b.add_node();
        let s = b.add_node();
        let z = b.add_node();
        b.add_duplex(a, s, 200_000_000, Dur::from_micros(20), Capacity::Packets(5_000));
        b.add_duplex(a, s, 200_000_000, Dur::from_micros(20), Capacity::Packets(5_000));
        b.add_duplex(s, z, case.egress_bps, Dur::from_micros(200), Capacity::Packets(5_000));
        let mut sim = Simulator::new(b.build());
        let xon = (case.xoff as f64 * case.xon_frac) as u64;
        let pfc = PfcSpec {
            xoff_bytes: case.xoff,
            xon_bytes: xon.min(case.xoff),
            watchdog: Dur::from_millis(case.watchdog_ms.unwrap_or(60_000)),
        };
        sim.install_switch(s, SwitchSpec::shared(1 << 20).with_pfc(pfc));
        sim.add_agent(a, 1, Box::new(Blaster {
            peer: z,
            count: case.count,
            gap: Dur::from_micros(case.gap_us),
            sent: 0,
        }));
        sim.add_agent(z, 2, Box::new(Sink::default()));

        // Census closes at every checkpoint, pause state included.
        let mut at = 0u64;
        for c in &case.checkpoints {
            at += c * 1_000; // µs steps
            sim.run_until(Time::from_nanos(at * 1_000));
            let census = sim.packet_census();
            prop_assert!(census.conserved(), "mid-run census leak: {census:?}");
        }

        sim.run_to_completion();
        let census = sim.packet_census();
        let stats = sim.switch_stats(s);
        prop_assert!(census.conserved(), "final census leak: {census:?}");
        prop_assert_eq!(census.queued, 0, "chain must drain: {:?}", census);
        prop_assert_eq!(census.in_flight, 0, "chain must drain: {:?}", census);
        prop_assert_eq!(
            census.injected,
            census.delivered + census.dropped + census.pfc_dropped,
            "terminal states must absorb every packet: {:?}",
            census
        );
        prop_assert_eq!(census.pfc_dropped, stats.pfc_dropped, "drain ledgers disagree");
        // Once drained, every pause has been matched by a resume.
        prop_assert_eq!(stats.pauses, stats.resumes, "unbalanced XOFF/XON: {:?}", stats);
        if stats.pauses > 0 {
            prop_assert!(census.paused_ns > 0, "paused links must accrue paused_ns");
        }
    }
}
