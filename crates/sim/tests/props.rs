//! Property-based invariants of the simulator's core data structures.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use proptest::prelude::*;

use phi_sim::packet::{Flags, FlowId, NodeId, Packet, SackBlocks};
use phi_sim::queue::{Capacity, Discipline, DropTail, Verdict};
use phi_sim::sched::TieredScheduler;
use phi_sim::stats::{OnlineStats, RollingUtil};
use phi_sim::time::{Dur, Time};
use phi_sim::topology::TopologyBuilder;

/// One step of an interleaved scheduler workload: schedule an event
/// `delta` nanoseconds past the current clock, pop unconditionally, or
/// pop against a bounded deadline.
#[derive(Debug, Clone, Copy)]
enum SchedOp {
    Push(u64),
    Pop,
    PopIf(u64),
}

fn sched_op() -> impl Strategy<Value = SchedOp> {
    prop_oneof![
        // Same-timestamp bursts and dense near-future traffic.
        (0u64..4).prop_map(SchedOp::Push),
        (0u64..1 << 21).prop_map(SchedOp::Push),
        // Far-future outliers, well beyond the wheel horizon
        // (1024 buckets x 2^17 ns ≈ 134 ms ≈ 2^27 ns).
        (1u64 << 26..1u64 << 40).prop_map(SchedOp::Push),
        Just(SchedOp::Pop),
        (0u64..1 << 28).prop_map(SchedOp::PopIf),
    ]
}

fn pkt(id: u64, size: u32) -> Packet {
    Packet {
        id,
        flow: FlowId(0),
        src: NodeId(0),
        dst: NodeId(1),
        src_port: 0,
        dst_port: 0,
        seq: id,
        ack: 0,
        flags: Flags::empty(),
        size,
        sent_at: Time::ZERO,
        echo: Time::ZERO,
        sack: SackBlocks::EMPTY,
    }
}

proptest! {
    #[test]
    fn time_add_then_sub_roundtrips(base in 0u64..u64::MAX / 2, delta in 0u64..u64::MAX / 4) {
        let t = Time::from_nanos(base);
        let d = Dur::from_nanos(delta);
        prop_assert_eq!((t + d) - d, t);
        prop_assert_eq!((t + d) - t, d);
    }

    #[test]
    fn transmission_time_monotone(
        size_a in 1u32..100_000,
        extra in 1u32..100_000,
        rate in 1_000u64..100_000_000_000,
    ) {
        let small = Dur::transmission(size_a, rate);
        let large = Dur::transmission(size_a.saturating_add(extra), rate);
        prop_assert!(large >= small);
        // Faster link, same packet: no slower.
        let faster = Dur::transmission(size_a, rate.saturating_mul(2));
        prop_assert!(faster <= small);
    }

    #[test]
    fn droptail_never_exceeds_capacity(
        limit in 1usize..64,
        sizes in proptest::collection::vec(40u32..2000, 1..200),
    ) {
        let mut q = DropTail::new(Capacity::Packets(limit));
        for (i, &s) in sizes.iter().enumerate() {
            let _ = q.offer(pkt(i as u64, s), Time::from_nanos(i as u64));
            prop_assert!(q.len_packets() <= limit);
        }
    }

    #[test]
    fn droptail_byte_accounting_balances(
        cap_bytes in 1_000u64..100_000,
        sizes in proptest::collection::vec(40u32..3000, 1..200),
    ) {
        let mut q = DropTail::new(Capacity::Bytes(cap_bytes));
        let mut accepted = 0u64;
        for (i, &s) in sizes.iter().enumerate() {
            if q.offer(pkt(i as u64, s), Time::ZERO) == Verdict::Enqueued {
                accepted += u64::from(s);
            }
            prop_assert!(q.len_bytes() <= cap_bytes);
        }
        let mut drained = 0u64;
        while let Some((p, _)) = q.take() {
            drained += u64::from(p.size);
        }
        prop_assert_eq!(accepted, drained);
        prop_assert_eq!(q.len_bytes(), 0);
    }

    #[test]
    fn droptail_preserves_fifo_order(sizes in proptest::collection::vec(40u32..1500, 1..100)) {
        let mut q = DropTail::new(Capacity::Packets(sizes.len()));
        for (i, &s) in sizes.iter().enumerate() {
            prop_assert_eq!(q.offer(pkt(i as u64, s), Time::ZERO), Verdict::Enqueued);
        }
        let mut last = None;
        while let Some((p, _)) = q.take() {
            if let Some(prev) = last {
                prop_assert!(p.id > prev);
            }
            last = Some(p.id);
        }
    }

    #[test]
    fn rolling_util_stays_in_unit_range(
        busy_gaps in proptest::collection::vec((1u64..10_000_000, 1u64..10_000_000), 1..50),
    ) {
        let mut u = RollingUtil::new(Dur::from_millis(10));
        let mut now = Time::ZERO;
        for (busy, idle) in busy_gaps {
            u.begin_busy(now);
            now += Dur::from_nanos(busy);
            u.end_busy(now);
            let frac = u.utilization(now);
            prop_assert!((0.0..=1.0).contains(&frac), "frac {frac}");
            now += Dur::from_nanos(idle);
            let frac = u.utilization(now);
            prop_assert!((0.0..=1.0).contains(&frac), "frac {frac}");
        }
    }

    #[test]
    fn online_stats_mean_within_min_max(xs in proptest::collection::vec(-1e12f64..1e12, 1..500)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let mean = s.mean();
        prop_assert!(mean >= s.min().unwrap() - 1e-6);
        prop_assert!(mean <= s.max().unwrap() + 1e-6);
        prop_assert!(s.variance() >= 0.0);
    }

    /// Routes on a random ring-with-chords topology always reach their
    /// destination in at most |V| hops.
    #[test]
    fn routes_terminate_at_destination(
        n in 3usize..12,
        chords in proptest::collection::vec((0usize..12, 0usize..12), 0..8),
    ) {
        let mut b = TopologyBuilder::new();
        let nodes: Vec<NodeId> = (0..n).map(|_| b.add_node()).collect();
        let cap = Capacity::Packets(4);
        for i in 0..n {
            b.add_duplex(nodes[i], nodes[(i + 1) % n], 1_000_000, Dur::from_millis(1), cap);
        }
        for (a, z) in chords {
            let (a, z) = (a % n, z % n);
            if a != z {
                b.add_duplex(nodes[a], nodes[z], 1_000_000, Dur::from_millis(1), cap);
            }
        }
        let t = b.build();
        for &src in &nodes {
            for &dst in &nodes {
                if src == dst {
                    continue;
                }
                let mut at = src;
                let mut hops = 0;
                while at != dst {
                    let link = t.next_hop(at, dst).expect("route exists");
                    at = t.link(link).to;
                    hops += 1;
                    prop_assert!(hops <= n, "routing loop from {src} to {dst}");
                }
            }
        }
    }

    /// The tiered scheduler is observationally identical to a plain
    /// binary heap ordered by `(time, insertion seq)`: every pop and
    /// deadline-bounded pop returns the same event in the same order,
    /// regardless of how pushes straddle the wheel horizon.
    #[test]
    fn tiered_scheduler_matches_reference_heap(
        ops in proptest::collection::vec(sched_op(), 1..500),
    ) {
        let mut tiered = TieredScheduler::new();
        let mut model: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut now = 0u64;
        let mut next_seq = 0u64;
        for op in ops {
            match op {
                SchedOp::Push(delta) => {
                    let at = now.saturating_add(delta);
                    tiered.push(Time::from_nanos(at), next_seq);
                    model.push(Reverse((at, next_seq)));
                    next_seq += 1;
                }
                SchedOp::Pop => {
                    let got = tiered.pop();
                    let want = model.pop().map(|Reverse((at, seq))| (at, seq));
                    prop_assert_eq!(
                        got.map(|(t, s)| (t.as_nanos(), s)),
                        want,
                        "pop diverged at seq {}", next_seq
                    );
                    if let Some((at, _)) = want {
                        now = at;
                    }
                }
                SchedOp::PopIf(delta) => {
                    let deadline = now.saturating_add(delta);
                    let due = matches!(model.peek(), Some(Reverse((at, _))) if *at <= deadline);
                    let got = tiered.pop_if(Time::from_nanos(deadline));
                    let want = if due {
                        model.pop().map(|Reverse((at, seq))| (at, seq))
                    } else {
                        None
                    };
                    prop_assert_eq!(
                        got.map(|(t, s)| (t.as_nanos(), s)),
                        want,
                        "pop_if diverged at seq {}", next_seq
                    );
                    if let Some((at, _)) = want {
                        now = at;
                    }
                }
            }
            prop_assert_eq!(tiered.len(), model.len());
        }
        // Drain both to the end: the tails must agree event for event.
        while let Some(Reverse((at, seq))) = model.pop() {
            prop_assert_eq!(
                tiered.pop().map(|(t, s)| (t.as_nanos(), s)),
                Some((at, seq))
            );
        }
        prop_assert!(tiered.is_empty());
        prop_assert_eq!(tiered.counters().scheduled, next_seq);
    }

    #[test]
    fn sack_blocks_bounded_and_ordered_iteration(
        ranges in proptest::collection::vec((0u64..1000, 1u64..50), 0..6),
    ) {
        let mut sack = SackBlocks::EMPTY;
        let mut pushed = 0;
        for (start, len) in ranges {
            if sack.push(start, start + len) {
                pushed += 1;
            }
        }
        prop_assert!(sack.len() <= 3);
        prop_assert_eq!(sack.len(), pushed.min(3));
        for (s, e) in sack.iter() {
            prop_assert!(s < e);
        }
    }
}
