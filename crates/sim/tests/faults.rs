//! Integration tests: the chaos plane wired through the engine.
//!
//! Each impairment type is exercised end to end on a real simulator and
//! the extended packet-conservation law is asserted mid-run and at
//! completion.

use std::any::Any;

use phi_sim::engine::{packet_to, Agent, Ctx, Simulator};
use phi_sim::faults::{DownPolicy, ImpairmentPlan, LossModel};
use phi_sim::packet::{FlowId, LinkId, NodeId, Packet};
use phi_sim::queue::Capacity;
use phi_sim::time::{Dur, Time};
use phi_sim::topology::{Topology, TopologyBuilder};
use phi_workload::SeedRng;

/// Sends `count` packets of `size` bytes to a peer, spaced by `gap`.
struct Blaster {
    peer: NodeId,
    count: u32,
    size: u32,
    gap: Dur,
    sent: u32,
}

impl Agent for Blaster {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer_after(Dur::ZERO, 0);
    }
    fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
    fn on_timer(&mut self, _token: u64, ctx: &mut Ctx<'_>) {
        if self.sent < self.count {
            let mut p = packet_to(self.peer, 2, 1, FlowId(1), self.size);
            p.seq = u64::from(self.sent);
            ctx.send(p);
            self.sent += 1;
            ctx.set_timer_after(self.gap, 0);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Records every packet it receives with its arrival time.
#[derive(Default)]
struct Sink {
    received: Vec<(u64, Time)>,
}

impl Agent for Sink {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        self.received.push((pkt.seq, ctx.now()));
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn two_nodes(cap: Capacity) -> (Topology, NodeId, NodeId) {
    let mut b = TopologyBuilder::new();
    let a = b.add_node();
    let z = b.add_node();
    b.add_duplex(a, z, 1_000_000, Dur::from_millis(2), cap);
    (b.build(), a, z)
}

/// Build a sim with one blaster (a -> z) and a sink, install `plan` on
/// link 0, run to completion, and return it with the sink's agent id.
fn run_plan(
    plan: ImpairmentPlan,
    count: u32,
    gap: Dur,
    cap: Capacity,
    seed: u64,
) -> (Simulator, Vec<(u64, Time)>) {
    let (t, a, z) = two_nodes(cap);
    let mut sim = Simulator::new(t);
    sim.install_impairments(LinkId(0), plan, &SeedRng::new(seed));
    sim.add_agent(
        a,
        1,
        Box::new(Blaster {
            peer: z,
            count,
            size: 1000,
            gap,
            sent: 0,
        }),
    );
    let sink = sim.add_agent(z, 2, Box::<Sink>::default());
    sim.run_to_completion();
    let received = sim.agent_as::<Sink>(sink).unwrap().received.clone();
    (sim, received)
}

#[test]
fn outage_with_drop_policy_blackholes_mid_window() {
    // 1 packet per 10 ms for 1 s; outage covers 300..600 ms.
    let plan = ImpairmentPlan::new().outage(Time::from_millis(300), Time::from_millis(600));
    let (sim, received) = run_plan(plan, 100, Dur::from_millis(10), Capacity::Packets(1000), 1);
    let fs = sim.fault_stats(LinkId(0));
    assert!(fs.blackholed > 20, "outage should eat ~30 packets: {fs:?}");
    assert_eq!(fs.edges, 2);
    let c = sim.packet_census();
    assert!(c.conserved(), "{c:?}");
    assert_eq!(c.blackholed, fs.blackholed);
    assert_eq!(c.delivered + c.blackholed, 100);
    // Nothing is delivered inside the outage window (+ propagation).
    let window = Time::from_millis(302)..Time::from_millis(600);
    assert!(received.iter().all(|&(_, at)| !window.contains(&at)));
    assert!(sim.link_is_up(LinkId(0)));
}

#[test]
fn outage_with_park_policy_delivers_everything_after_heal() {
    // Link is down from t=0; all packets park in the queue and drain
    // after the healing edge.
    let plan = ImpairmentPlan::new()
        .outage(Time::ZERO, Time::from_millis(500))
        .down_policy(DownPolicy::Park);
    let (sim, received) = run_plan(plan, 20, Dur::from_millis(1), Capacity::Packets(1000), 2);
    assert_eq!(received.len(), 20, "parked packets must survive the outage");
    let fs = sim.fault_stats(LinkId(0));
    assert_eq!(fs.blackholed, 0);
    assert!(
        received.iter().all(|&(_, at)| at >= Time::from_millis(500)),
        "nothing can arrive while the link is down"
    );
    // FIFO order preserved through the parking episode.
    assert!(received.windows(2).all(|w| w[0].0 < w[1].0));
    let c = sim.packet_census();
    assert!(c.conserved(), "{c:?}");
    assert_eq!(c.delivered, 20);
}

#[test]
fn link_is_up_tracks_the_outage_window() {
    let plan = ImpairmentPlan::new().outage(Time::from_millis(300), Time::from_millis(600));
    let (t, a, z) = two_nodes(Capacity::Packets(100));
    let mut sim = Simulator::new(t);
    sim.install_impairments(LinkId(0), plan, &SeedRng::new(3));
    sim.add_agent(
        a,
        1,
        Box::new(Blaster {
            peer: z,
            count: 50,
            size: 1000,
            gap: Dur::from_millis(10),
            sent: 0,
        }),
    );
    sim.add_agent(z, 2, Box::<Sink>::default());
    assert!(sim.link_is_up(LinkId(0)));
    sim.run_until(Time::from_millis(400));
    assert!(!sim.link_is_up(LinkId(0)), "mid-window the link is down");
    let mid = sim.packet_census();
    assert!(mid.conserved(), "mid-run: {mid:?}");
    sim.run_to_completion();
    assert!(sim.link_is_up(LinkId(0)));
}

#[test]
fn bernoulli_loss_thins_the_stream() {
    let plan = ImpairmentPlan::new().loss(LossModel::Bernoulli { p: 0.3 });
    let (sim, received) = run_plan(plan, 500, Dur::from_millis(1), Capacity::Packets(1000), 4);
    let c = sim.packet_census();
    assert!(c.conserved(), "{c:?}");
    assert!(c.blackholed > 100, "expected ~150 losses: {c:?}");
    assert_eq!(c.delivered + c.blackholed, 500);
    assert_eq!(received.len() as u64, c.delivered);
}

#[test]
fn gilbert_elliott_loss_closes_census() {
    let plan = ImpairmentPlan::new().loss(LossModel::GilbertElliott {
        p_enter_bad: 0.02,
        p_exit_bad: 0.1,
        good_loss: 0.001,
        bad_loss: 0.7,
    });
    let (sim, _) = run_plan(
        plan,
        1000,
        Dur::from_micros(500),
        Capacity::Packets(1000),
        5,
    );
    let c = sim.packet_census();
    assert!(c.conserved(), "{c:?}");
    assert!(c.blackholed > 0, "GE channel never dropped: {c:?}");
}

#[test]
fn certain_corruption_discards_everything() {
    let plan = ImpairmentPlan::new().corrupt(1.0);
    let (sim, received) = run_plan(plan, 50, Dur::from_millis(1), Capacity::Packets(100), 6);
    assert!(received.is_empty());
    let c = sim.packet_census();
    assert!(c.conserved(), "{c:?}");
    assert_eq!(c.corrupted, 50);
    assert_eq!(c.delivered, 0);
}

#[test]
fn certain_duplication_doubles_delivery() {
    let plan = ImpairmentPlan::new().duplicate(1.0);
    let (sim, received) = run_plan(plan, 50, Dur::from_millis(1), Capacity::Packets(100), 7);
    assert_eq!(received.len(), 100, "every packet must arrive twice");
    let c = sim.packet_census();
    assert!(c.conserved(), "{c:?}");
    assert_eq!(c.duplicated, 50);
    assert_eq!(c.delivered, 100);
    assert_eq!(c.injected, 50);
}

#[test]
fn reordering_inverts_arrival_order_but_loses_nothing() {
    // Extra delay up to 20 ms against a 1 ms sending gap: heavy
    // reordering, zero loss.
    let plan = ImpairmentPlan::new().reorder(0.5, Dur::from_millis(20));
    let (sim, received) = run_plan(plan, 200, Dur::from_millis(1), Capacity::Packets(1000), 8);
    assert_eq!(received.len(), 200, "reordering must not lose packets");
    let inversions = received.windows(2).filter(|w| w[1].0 < w[0].0).count();
    assert!(inversions > 10, "expected reordering, got {inversions}");
    let c = sim.packet_census();
    assert!(c.conserved(), "{c:?}");
    assert_eq!(c.delivered, 200);
}

#[test]
fn flapping_runs_are_bit_identical_per_seed() {
    let plan = || {
        ImpairmentPlan::new()
            .flap(
                Time::from_millis(100),
                Time::from_millis(900),
                Dur::from_millis(40),
                Dur::from_millis(60),
            )
            .loss(LossModel::Bernoulli { p: 0.05 })
            .duplicate(0.02)
            .corrupt(0.02)
            .reorder(0.1, Dur::from_millis(5))
    };
    let run = |seed| {
        run_plan(
            plan(),
            300,
            Dur::from_millis(2),
            Capacity::Packets(500),
            seed,
        )
    };
    let (sim_a, recv_a) = run(42);
    let (sim_b, recv_b) = run(42);
    assert_eq!(recv_a, recv_b, "same seed must reproduce bit-identically");
    assert_eq!(sim_a.packet_census(), sim_b.packet_census());
    assert_eq!(sim_a.fault_stats(LinkId(0)), sim_b.fault_stats(LinkId(0)));
    assert!(sim_a.packet_census().conserved());
    assert!(
        sim_a.fault_stats(LinkId(0)).edges >= 4,
        "link never flapped"
    );
    // A different seed must actually change the impairment trace.
    let (_, recv_c) = run(43);
    assert_ne!(recv_a, recv_c, "different seed, same trace — rng not wired");
}

#[test]
fn combined_impairments_close_the_census_mid_run() {
    let plan = ImpairmentPlan::new()
        .outage(Time::from_millis(50), Time::from_millis(120))
        .loss(LossModel::Bernoulli { p: 0.1 })
        .duplicate(0.1)
        .corrupt(0.1)
        .reorder(0.3, Dur::from_millis(10));
    let (t, a, z) = two_nodes(Capacity::Packets(5));
    let mut sim = Simulator::new(t);
    sim.install_impairments(LinkId(0), plan, &SeedRng::new(9));
    sim.add_agent(
        a,
        1,
        Box::new(Blaster {
            peer: z,
            count: 400,
            size: 1000,
            gap: Dur::from_micros(700),
            sent: 0,
        }),
    );
    sim.add_agent(z, 2, Box::<Sink>::default());
    // Census must close at arbitrary stopping points, not just at the end.
    for ms in [30, 60, 110, 200, 350] {
        sim.run_until(Time::from_millis(ms));
        let c = sim.packet_census();
        assert!(c.conserved(), "t={ms}ms: {c:?}");
    }
    sim.run_to_completion();
    let c = sim.packet_census();
    assert!(c.conserved(), "{c:?}");
    assert_eq!(c.queued + c.in_flight, 0, "packets stuck: {c:?}");
    // Every impairment type actually fired in this run.
    assert!(
        c.blackholed > 0 && c.corrupted > 0 && c.duplicated > 0,
        "{c:?}"
    );
    assert!(c.dropped > 0, "tiny queue must also drop normally: {c:?}");
    let s = sim.sched_stats();
    assert!(s.conserved(), "{s:?}");
}

#[test]
fn installing_after_start_panics() {
    let (t, a, z) = two_nodes(Capacity::Packets(10));
    let mut sim = Simulator::new(t);
    sim.add_agent(
        a,
        1,
        Box::new(Blaster {
            peer: z,
            count: 1,
            size: 100,
            gap: Dur::ZERO,
            sent: 0,
        }),
    );
    sim.run_to_completion();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        sim.install_impairments(LinkId(0), ImpairmentPlan::new(), &SeedRng::new(1));
    }));
    assert!(result.is_err(), "late install must panic");
}
