//! The discrete-event simulation engine.
//!
//! Execution model:
//!
//! * A single binary-heap event queue ordered by `(time, sequence)` — the
//!   sequence number makes simultaneous events fire in scheduling order, so
//!   runs are fully deterministic.
//! * **Links** do all store-and-forward work: a packet handed to a link is
//!   queued (or dropped, drop-tail), serialized at the link rate, then
//!   delivered to the far node after the propagation delay.
//! * **Agents** (transport endpoints, traffic sources…) live on nodes and
//!   are addressed by `(node, port)`. The engine calls [`Agent::on_packet`]
//!   when a packet reaches its destination node and port, and
//!   [`Agent::on_timer`] when a timer the agent set fires.
//!
//! Agents interact with the world exclusively through [`Ctx`], which can
//! send packets, set timers, and read link statistics (the read access is
//! the "ideal oracle" used by Remy-Phi-ideal, paper §2.2.4).

use std::any::Any;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::packet::{AgentId, Flags, FlowId, LinkId, NodeId, Packet, SackBlocks};
use crate::queue::{Discipline, DropTail, Verdict};
use crate::stats::{LinkStats, RollingUtil};
use crate::time::{Dur, Time};
use crate::topology::Topology;
use crate::trace::{TraceEvent, TraceOp, Tracer};

/// A simulation participant attached to a node.
pub trait Agent: Any {
    /// Called once when the simulation starts.
    fn start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// A packet addressed to this agent arrived.
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>);

    /// A timer set via [`Ctx::set_timer_at`] fired.
    fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}

    /// Downcast support, for retrieving agent state after a run.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

#[derive(Debug)]
enum Event {
    /// The packet at the head of the link finished serializing.
    TxEnd { link: LinkId, pkt: Packet },
    /// A packet reached the `to` node of `link`.
    Deliver { node: NodeId, pkt: Packet },
    /// An agent timer fired.
    Timer { agent: AgentId, token: u64 },
}

#[derive(Debug)]
struct Scheduled {
    at: Time,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Runtime state of one link.
struct LinkState {
    queue: Box<dyn Discipline>,
    busy: bool,
    stats: LinkStats,
    rolling: RollingUtil,
}

/// Everything the engine owns except the agents themselves. Splitting this
/// out lets [`Ctx`] hold `&mut SimCore` while an agent (removed from the
/// agent table for the duration of its callback) runs.
struct SimCore {
    now: Time,
    seq: u64,
    queue: BinaryHeap<Reverse<Scheduled>>,
    topology: Topology,
    links: Vec<LinkState>,
    bindings: HashMap<(NodeId, u16), AgentId>,
    agent_nodes: Vec<NodeId>,
    next_packet_id: u64,
    /// Packets that arrived for a (node, port) with no agent bound.
    pub undeliverable: u64,
    /// Packets consumed by a bound agent at their destination.
    delivered: u64,
    events_processed: u64,
    tracer: Option<Box<dyn Tracer>>,
}

thread_local! {
    /// Recycled event-queue allocations. Parameter sweeps and trainer
    /// rounds build thousands of short-lived simulators per thread; each
    /// would otherwise regrow its event heap from empty. A retiring
    /// simulator parks its heap's backing buffer here and the next one on
    /// this thread starts with that capacity.
    static HEAP_POOL: RefCell<Vec<Vec<Reverse<Scheduled>>>> = const { RefCell::new(Vec::new()) };
}

/// Buffers kept per thread; beyond this, retiring heaps just deallocate.
const HEAP_POOL_LIMIT: usize = 8;

fn recycled_heap() -> BinaryHeap<Reverse<Scheduled>> {
    HEAP_POOL
        .with(|p| p.borrow_mut().pop())
        .map(BinaryHeap::from) // an empty Vec heapifies in place, keeping its capacity
        .unwrap_or_default()
}

impl Drop for SimCore {
    fn drop(&mut self) {
        let mut buf = std::mem::take(&mut self.queue).into_vec();
        if buf.capacity() == 0 {
            return;
        }
        buf.clear();
        HEAP_POOL.with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < HEAP_POOL_LIMIT {
                pool.push(buf);
            }
        });
    }
}

impl SimCore {
    fn trace(&mut self, op: TraceOp, link: Option<LinkId>, node: Option<NodeId>, pkt: &Packet) {
        if let Some(t) = self.tracer.as_mut() {
            t.event(&TraceEvent::new(self.now, op, link, node, pkt));
        }
    }
}

impl SimCore {
    fn schedule(&mut self, at: Time, event: Event) {
        debug_assert!(at >= self.now, "cannot schedule into the past");
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled { at, seq, event }));
    }

    /// Route `pkt` from `at` toward its destination; enqueue on the next link.
    fn forward(&mut self, at: NodeId, pkt: Packet) {
        let Some(link_id) = self.topology.next_hop(at, pkt.dst) else {
            // Destination is this node but no agent consumed it, or routing
            // is impossible; count and drop.
            self.undeliverable += 1;
            return;
        };
        self.enqueue_on_link(link_id, pkt);
    }

    fn enqueue_on_link(&mut self, link_id: LinkId, pkt: Packet) {
        let now = self.now;
        let ls = &mut self.links[link_id.0 as usize];
        ls.stats.advance_occupancy(now, ls.queue.len_bytes());
        // The queue consumes the packet; clone identity bits for tracing
        // only when a tracer is installed.
        let traced = self.tracer.is_some().then(|| pkt.clone());
        match ls.queue.offer(pkt, now) {
            Verdict::Enqueued => {
                ls.stats.enqueued += 1;
                if let Some(p) = traced {
                    self.trace(TraceOp::Enqueue, Some(link_id), None, &p);
                }
                if !self.links[link_id.0 as usize].busy {
                    self.begin_tx(link_id);
                }
            }
            Verdict::Dropped => {
                ls.stats.dropped += 1;
                if let Some(p) = traced {
                    self.trace(TraceOp::Drop, Some(link_id), None, &p);
                }
            }
        }
    }

    /// Start serializing the next queued packet, if any.
    fn begin_tx(&mut self, link_id: LinkId) {
        let now = self.now;
        let spec_rate = self.topology.link(link_id).rate_bps;
        let ls = &mut self.links[link_id.0 as usize];
        debug_assert!(!ls.busy);
        ls.stats.advance_occupancy(now, ls.queue.len_bytes());
        let Some((pkt, enqueued_at)) = ls.queue.take() else {
            return;
        };
        ls.busy = true;
        ls.rolling.begin_busy(now);
        ls.stats
            .queue_wait
            .push(now.saturating_since(enqueued_at).as_secs_f64());
        let tx = Dur::transmission(pkt.size, spec_rate);
        self.schedule(now + tx, Event::TxEnd { link: link_id, pkt });
    }

    fn on_tx_end(&mut self, link_id: LinkId, pkt: Packet) {
        let now = self.now;
        let spec = self.topology.link(link_id);
        let mut delay = spec.delay;
        if !spec.jitter.is_zero() {
            // Deterministic per-packet jitter: splitmix64 of the packet id.
            let j = splitmix64(pkt.id) % spec.jitter.as_nanos().max(1);
            delay += Dur::from_nanos(j);
        }
        let to = spec.to;
        {
            let ls = &mut self.links[link_id.0 as usize];
            ls.busy = false;
            ls.rolling.end_busy(now);
            ls.stats.transmitted += 1;
            ls.stats.bytes_transmitted += u64::from(pkt.size);
            ls.stats.busy += Dur::transmission(pkt.size, self.topology.link(link_id).rate_bps);
        }
        self.trace(TraceOp::Transmit, Some(link_id), None, &pkt);
        self.schedule(now + delay, Event::Deliver { node: to, pkt });
        // Immediately pull the next packet, if queued.
        if self.links[link_id.0 as usize].queue.len_packets() > 0 {
            self.begin_tx(link_id);
        }
    }
}

/// The handle through which agents act on the simulation.
pub struct Ctx<'a> {
    core: &'a mut SimCore,
    agent: AgentId,
    node: NodeId,
}

impl Ctx<'_> {
    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.core.now
    }

    /// The id of the agent being called.
    pub fn agent_id(&self) -> AgentId {
        self.agent
    }

    /// The node this agent is attached to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Send a packet from this agent's node. The engine assigns the unique
    /// packet id and stamps `sent_at`; routing starts immediately.
    pub fn send(&mut self, mut pkt: Packet) {
        pkt.id = self.core.next_packet_id;
        self.core.next_packet_id += 1;
        pkt.sent_at = self.core.now;
        pkt.src = self.node;
        let node = self.node;
        self.core.forward(node, pkt);
    }

    /// Schedule [`Agent::on_timer`] with `token` at absolute time `at`.
    ///
    /// Timers cannot be cancelled; agents discard stale tokens instead
    /// (the standard pattern for retransmission timers).
    pub fn set_timer_at(&mut self, at: Time, token: u64) {
        let agent = self.agent;
        let at = at.max(self.core.now);
        self.core.schedule(at, Event::Timer { agent, token });
    }

    /// Schedule [`Agent::on_timer`] with `token` after `delay`.
    pub fn set_timer_after(&mut self, delay: Dur, token: u64) {
        let at = self.core.now + delay;
        self.set_timer_at(at, token);
    }

    /// Cumulative statistics of a link (ideal-oracle read access).
    pub fn link_stats(&self, link: LinkId) -> &LinkStats {
        &self.core.links[link.0 as usize].stats
    }

    /// Busy-fraction of a link over its rolling window (ideal oracle).
    pub fn link_utilization(&self, link: LinkId) -> f64 {
        self.core.links[link.0 as usize]
            .rolling
            .utilization(self.core.now)
    }

    /// Packets currently queued at a link.
    pub fn link_queue_bytes(&self, link: LinkId) -> u64 {
        self.core.links[link.0 as usize].queue.len_bytes()
    }
}

/// The simulator: topology + agents + event loop.
pub struct Simulator {
    core: SimCore,
    agents: Vec<Option<Box<dyn Agent>>>,
    started: bool,
}

/// Window over which links report rolling utilization to the ideal oracle.
pub const UTIL_WINDOW: Dur = Dur::from_millis(500);

impl Simulator {
    /// Create a simulator over `topology` with drop-tail queues on every
    /// link, per the link specs.
    pub fn new(topology: Topology) -> Self {
        Simulator::with_disciplines(topology, |_, spec| Box::new(DropTail::new(spec.capacity)))
    }

    /// Create a simulator with a custom queueing discipline per link.
    ///
    /// The factory receives each link's id and spec and returns the
    /// discipline instance to install (e.g. [`crate::queue::Red`] on the
    /// bottleneck, drop-tail elsewhere) — the hook behind the §3.1
    /// incentives ablation.
    pub fn with_disciplines(
        topology: Topology,
        mut factory: impl FnMut(LinkId, &crate::topology::LinkSpec) -> Box<dyn Discipline>,
    ) -> Self {
        let links = topology
            .links()
            .iter()
            .enumerate()
            .map(|(idx, spec)| LinkState {
                queue: factory(LinkId(idx as u32), spec),
                busy: false,
                stats: LinkStats::new(),
                rolling: RollingUtil::new(UTIL_WINDOW),
            })
            .collect();
        Simulator {
            core: SimCore {
                now: Time::ZERO,
                seq: 0,
                queue: recycled_heap(),
                topology,
                links,
                bindings: HashMap::new(),
                agent_nodes: Vec::new(),
                next_packet_id: 0,
                undeliverable: 0,
                delivered: 0,
                events_processed: 0,
                tracer: None,
            },
            agents: Vec::new(),
            started: false,
        }
    }

    /// Attach an agent to `node`, listening on `port`.
    ///
    /// # Panics
    /// Panics if `(node, port)` is already bound or the sim has started.
    pub fn add_agent(&mut self, node: NodeId, port: u16, agent: Box<dyn Agent>) -> AgentId {
        assert!(!self.started, "cannot add agents after start");
        let id = AgentId(self.agents.len() as u32);
        let prev = self.core.bindings.insert((node, port), id);
        assert!(prev.is_none(), "({node}, :{port}) already bound");
        self.agents.push(Some(agent));
        self.core.agent_nodes.push(node);
        id
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.core.now
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.core.events_processed
    }

    /// Packets that reached a node with no agent bound to their port.
    pub fn undeliverable(&self) -> u64 {
        self.core.undeliverable
    }

    /// A point-in-time census of every packet the simulation created.
    ///
    /// The conservation invariant — every injected packet is in exactly
    /// one place — holds at any instant, mid-run or after completion:
    /// see [`PacketCensus::conserved`].
    pub fn packet_census(&self) -> PacketCensus {
        let mut in_flight = 0u64;
        for Reverse(sch) in self.core.queue.iter() {
            if matches!(sch.event, Event::TxEnd { .. } | Event::Deliver { .. }) {
                in_flight += 1;
            }
        }
        let mut queued = 0u64;
        let mut dropped = 0u64;
        for ls in &self.core.links {
            queued += ls.queue.len_packets() as u64;
            dropped += ls.stats.dropped;
        }
        PacketCensus {
            injected: self.core.next_packet_id,
            delivered: self.core.delivered,
            dropped,
            undeliverable: self.core.undeliverable,
            queued,
            in_flight,
        }
    }

    /// The topology under simulation.
    pub fn topology(&self) -> &Topology {
        &self.core.topology
    }

    /// Statistics of one link.
    pub fn link_stats(&self, link: LinkId) -> &LinkStats {
        &self.core.links[link.0 as usize].stats
    }

    /// Install a packet tracer (ns-2-style observation of every enqueue,
    /// drop, transmission, and delivery). Replaces any previous tracer.
    pub fn set_tracer(&mut self, tracer: Box<dyn Tracer>) {
        self.core.tracer = Some(tracer);
    }

    /// Remove and return the installed tracer (to read a collector after
    /// the run).
    pub fn take_tracer(&mut self) -> Option<Box<dyn Tracer>> {
        self.core.tracer.take()
    }

    /// Borrow an agent for post-run inspection.
    ///
    /// ```ignore
    /// let sender: &TcpSender = sim.agent_as::<TcpSender>(id).unwrap();
    /// ```
    pub fn agent_as<T: Agent>(&self, id: AgentId) -> Option<&T> {
        self.agents[id.0 as usize]
            .as_deref()
            .and_then(|a| a.as_any().downcast_ref::<T>())
    }

    /// Mutably borrow an agent.
    pub fn agent_as_mut<T: Agent>(&mut self, id: AgentId) -> Option<&mut T> {
        self.agents[id.0 as usize]
            .as_deref_mut()
            .and_then(|a| a.as_any_mut().downcast_mut::<T>())
    }

    fn start_agents(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.agents.len() {
            self.with_agent(AgentId(i as u32), |agent, ctx| agent.start(ctx));
        }
    }

    fn with_agent(&mut self, id: AgentId, f: impl FnOnce(&mut dyn Agent, &mut Ctx<'_>)) {
        let mut agent = self.agents[id.0 as usize]
            .take()
            .expect("agent re-entrancy is impossible: events are dispatched serially");
        let node = self.core.agent_nodes[id.0 as usize];
        let mut ctx = Ctx {
            core: &mut self.core,
            agent: id,
            node,
        };
        f(agent.as_mut(), &mut ctx);
        self.agents[id.0 as usize] = Some(agent);
    }

    /// Run until the event queue drains or `deadline` passes, whichever is
    /// first. Returns the time the run stopped.
    pub fn run_until(&mut self, deadline: Time) -> Time {
        self.start_agents();
        while let Some(Reverse(head)) = self.core.queue.peek() {
            if head.at > deadline {
                break;
            }
            let Reverse(sch) = self.core.queue.pop().expect("peeked");
            self.core.now = sch.at;
            self.core.events_processed += 1;
            match sch.event {
                Event::TxEnd { link, pkt } => self.core.on_tx_end(link, pkt),
                Event::Deliver { node, pkt } => {
                    if pkt.dst == node {
                        self.core.trace(TraceOp::Deliver, None, Some(node), &pkt);
                        match self.core.bindings.get(&(node, pkt.dst_port)).copied() {
                            Some(agent) => {
                                self.core.delivered += 1;
                                self.with_agent(agent, |a, ctx| a.on_packet(pkt, ctx));
                            }
                            None => self.core.undeliverable += 1,
                        }
                    } else {
                        self.core.forward(node, pkt);
                    }
                }
                Event::Timer { agent, token } => {
                    self.with_agent(agent, |a, ctx| a.on_timer(token, ctx));
                }
            }
        }
        // Advance the clock to the deadline so utilization denominators and
        // occupancy integrals cover the full requested span.
        if self.core.now < deadline && deadline != Time::MAX {
            self.core.now = deadline;
            for ls in &mut self.core.links {
                let bytes = ls.queue.len_bytes();
                ls.stats.advance_occupancy(deadline, bytes);
            }
        }
        self.core.now
    }

    /// Run until no events remain.
    pub fn run_to_completion(&mut self) -> Time {
        self.run_until(Time::MAX)
    }
}

/// Where every packet the simulation ever created currently is.
///
/// Taken with [`Simulator::packet_census`]. A packet is *injected* when an
/// agent calls [`Ctx::send`]; from then on it is in exactly one of the
/// other five states, so [`PacketCensus::conserved`] must hold at every
/// instant — it is the engine's bookkeeping invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketCensus {
    /// Packets created via [`Ctx::send`].
    pub injected: u64,
    /// Packets consumed by a bound agent at their destination.
    pub delivered: u64,
    /// Packets dropped at link queues (summed over links).
    pub dropped: u64,
    /// Packets that hit a routing dead-end or an unbound port.
    pub undeliverable: u64,
    /// Packets sitting in link queues right now.
    pub queued: u64,
    /// Packets serializing on a link or propagating toward a node
    /// (scheduled `TxEnd`/`Deliver` events).
    pub in_flight: u64,
}

impl PacketCensus {
    /// Injected packets not yet in a terminal state.
    pub fn outstanding(&self) -> u64 {
        self.queued + self.in_flight
    }

    /// The conservation invariant:
    /// `injected == delivered + dropped + undeliverable + queued + in_flight`.
    pub fn conserved(&self) -> bool {
        self.injected
            == self.delivered + self.dropped + self.undeliverable + self.queued + self.in_flight
    }
}

/// SplitMix64: a tiny, high-quality bit mixer used for deterministic
/// per-packet jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Convenience constructor for packets sent by agents (the engine fills in
/// `id`, `src`, and `sent_at`).
pub fn packet_to(dst: NodeId, dst_port: u16, src_port: u16, flow: FlowId, size: u32) -> Packet {
    Packet {
        id: 0,
        flow,
        src: NodeId(u32::MAX), // overwritten by Ctx::send
        dst,
        src_port,
        dst_port,
        seq: 0,
        ack: 0,
        flags: Flags::empty(),
        size,
        sent_at: Time::ZERO,
        echo: Time::ZERO,
        sack: SackBlocks::EMPTY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::Capacity;
    use crate::topology::TopologyBuilder;

    /// Sends `count` packets of `size` bytes to a peer, spaced by `gap`.
    struct Blaster {
        peer: NodeId,
        peer_port: u16,
        port: u16,
        count: u32,
        size: u32,
        gap: Dur,
        sent: u32,
    }

    impl Agent for Blaster {
        fn start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer_after(Dur::ZERO, 0);
        }
        fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
        fn on_timer(&mut self, _token: u64, ctx: &mut Ctx<'_>) {
            if self.sent < self.count {
                let mut p = packet_to(self.peer, self.peer_port, self.port, FlowId(1), self.size);
                p.seq = u64::from(self.sent);
                ctx.send(p);
                self.sent += 1;
                ctx.set_timer_after(self.gap, 0);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Records every packet it receives with its arrival time.
    #[derive(Default)]
    struct Sink {
        received: Vec<(u64, Time)>,
    }

    impl Agent for Sink {
        fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
            self.received.push((pkt.seq, ctx.now()));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn two_nodes(rate_bps: u64, delay: Dur, cap: Capacity) -> (Topology, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let a = b.add_node();
        let z = b.add_node();
        b.add_duplex(a, z, rate_bps, delay, cap);
        (b.build(), a, z)
    }

    #[test]
    fn single_packet_latency_is_tx_plus_prop() {
        // 1000-byte packet at 1 Mbit/s = 8 ms tx; +2 ms prop = 10 ms.
        let (t, a, z) = two_nodes(1_000_000, Dur::from_millis(2), Capacity::Packets(10));
        let mut sim = Simulator::new(t);
        sim.add_agent(
            a,
            1,
            Box::new(Blaster {
                peer: z,
                peer_port: 2,
                port: 1,
                count: 1,
                size: 1000,
                gap: Dur::from_secs(1),
                sent: 0,
            }),
        );
        let sink = sim.add_agent(z, 2, Box::<Sink>::default());
        sim.run_to_completion();
        let s = sim.agent_as::<Sink>(sink).unwrap();
        assert_eq!(s.received.len(), 1);
        assert_eq!(s.received[0].1, Time::from_millis(10));
    }

    #[test]
    fn back_to_back_packets_serialize() {
        // Two packets sent at t=0; the second must wait for the first's tx.
        let (t, a, z) = two_nodes(1_000_000, Dur::from_millis(2), Capacity::Packets(10));
        let mut sim = Simulator::new(t);
        sim.add_agent(
            a,
            1,
            Box::new(Blaster {
                peer: z,
                peer_port: 2,
                port: 1,
                count: 2,
                size: 1000,
                gap: Dur::ZERO,
                sent: 0,
            }),
        );
        let sink = sim.add_agent(z, 2, Box::<Sink>::default());
        sim.run_to_completion();
        let s = sim.agent_as::<Sink>(sink).unwrap();
        assert_eq!(s.received.len(), 2);
        assert_eq!(s.received[0].1, Time::from_millis(10));
        assert_eq!(s.received[1].1, Time::from_millis(18)); // +8 ms serialization
                                                            // FIFO order.
        assert_eq!(s.received[0].0, 0);
        assert_eq!(s.received[1].0, 1);
    }

    #[test]
    fn droptail_loses_overflow_and_counts_it() {
        // Queue capacity 2 packets; 5 packets arrive while the first
        // serializes (tx = 8 ms each, arrivals every 1 ms).
        let (t, a, z) = two_nodes(1_000_000, Dur::from_millis(1), Capacity::Packets(2));
        let mut sim = Simulator::new(t);
        sim.add_agent(
            a,
            1,
            Box::new(Blaster {
                peer: z,
                peer_port: 2,
                port: 1,
                count: 5,
                size: 1000,
                gap: Dur::from_millis(1),
                sent: 0,
            }),
        );
        let sink = sim.add_agent(z, 2, Box::<Sink>::default());
        sim.run_to_completion();
        let s = sim.agent_as::<Sink>(sink).unwrap();
        let link = crate::packet::LinkId(0);
        let stats = sim.link_stats(link);
        assert!(stats.dropped > 0, "expected drops, got none");
        assert_eq!(
            stats.enqueued + stats.dropped,
            5,
            "all offered packets accounted"
        );
        assert_eq!(s.received.len() as u64, stats.transmitted);
    }

    #[test]
    fn utilization_and_throughput_accounting() {
        let (t, a, z) = two_nodes(8_000_000, Dur::from_millis(1), Capacity::Packets(100));
        let mut sim = Simulator::new(t);
        // 100 packets of 1000 bytes = 800_000 bits = 0.1 s of tx at 8 Mbit/s.
        sim.add_agent(
            a,
            1,
            Box::new(Blaster {
                peer: z,
                peer_port: 2,
                port: 1,
                count: 100,
                size: 1000,
                gap: Dur::ZERO,
                sent: 0,
            }),
        );
        sim.add_agent(z, 2, Box::<Sink>::default());
        sim.run_until(Time::from_millis(200));
        let stats = sim.link_stats(crate::packet::LinkId(0));
        let elapsed = Dur::from_millis(200);
        assert!((stats.utilization(elapsed) - 0.5).abs() < 0.01);
        assert!((stats.throughput_bps(elapsed) - 4_000_000.0).abs() < 50_000.0);
        assert_eq!(stats.transmitted, 100);
    }

    #[test]
    fn undeliverable_packets_counted() {
        let (t, a, z) = two_nodes(1_000_000, Dur::from_millis(1), Capacity::Packets(10));
        let mut sim = Simulator::new(t);
        sim.add_agent(
            a,
            1,
            Box::new(Blaster {
                peer: z,
                peer_port: 99, // nothing bound on port 99
                port: 1,
                count: 3,
                size: 100,
                gap: Dur::ZERO,
                sent: 0,
            }),
        );
        sim.run_to_completion();
        assert_eq!(sim.undeliverable(), 3);
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn duplicate_binding_rejected() {
        let (t, a, _z) = two_nodes(1_000_000, Dur::from_millis(1), Capacity::Packets(1));
        let mut sim = Simulator::new(t);
        sim.add_agent(a, 1, Box::<Sink>::default());
        sim.add_agent(a, 1, Box::<Sink>::default());
    }

    #[test]
    fn run_until_stops_at_deadline_and_resumes() {
        let (t, a, z) = two_nodes(1_000_000, Dur::from_millis(2), Capacity::Packets(50));
        let mut sim = Simulator::new(t);
        sim.add_agent(
            a,
            1,
            Box::new(Blaster {
                peer: z,
                peer_port: 2,
                port: 1,
                count: 10,
                size: 1000,
                gap: Dur::from_millis(20),
                sent: 0,
            }),
        );
        let sink = sim.add_agent(z, 2, Box::<Sink>::default());
        sim.run_until(Time::from_millis(50));
        let got_midway = sim.agent_as::<Sink>(sink).unwrap().received.len();
        assert!(got_midway > 0 && got_midway < 10, "got {got_midway}");
        sim.run_to_completion();
        assert_eq!(sim.agent_as::<Sink>(sink).unwrap().received.len(), 10);
    }

    #[test]
    fn jitter_reorders_but_delivers_everything() {
        use crate::topology::LinkSpec;
        let mut b = TopologyBuilder::new();
        let a = b.add_node();
        let z = b.add_node();
        // Jitter (5 ms) far above the serialization gap (80 us): heavy
        // reordering is guaranteed, loss is impossible (huge queue).
        b.add_link(LinkSpec {
            jitter: Dur::from_millis(5),
            ..LinkSpec::new(
                a,
                z,
                100_000_000,
                Dur::from_millis(10),
                Capacity::Packets(10_000),
            )
        });
        b.add_link(LinkSpec::new(
            z,
            a,
            100_000_000,
            Dur::from_millis(10),
            Capacity::Packets(10_000),
        ));
        let mut sim = Simulator::new(b.build());
        sim.add_agent(
            a,
            1,
            Box::new(Blaster {
                peer: z,
                peer_port: 2,
                port: 1,
                count: 200,
                size: 1000,
                gap: Dur::from_micros(80),
                sent: 0,
            }),
        );
        let sink = sim.add_agent(z, 2, Box::<Sink>::default());
        sim.run_to_completion();
        let s = sim.agent_as::<Sink>(sink).unwrap();
        assert_eq!(s.received.len(), 200, "jitter must not lose packets");
        let inversions = s.received.windows(2).filter(|w| w[1].0 < w[0].0).count();
        assert!(
            inversions > 10,
            "expected reordering, got {inversions} inversions"
        );
        // Determinism: the same run reorders identically.
        let rerun = {
            let mut b = TopologyBuilder::new();
            let a = b.add_node();
            let z = b.add_node();
            b.add_link(LinkSpec {
                jitter: Dur::from_millis(5),
                ..LinkSpec::new(
                    a,
                    z,
                    100_000_000,
                    Dur::from_millis(10),
                    Capacity::Packets(10_000),
                )
            });
            b.add_link(LinkSpec::new(
                z,
                a,
                100_000_000,
                Dur::from_millis(10),
                Capacity::Packets(10_000),
            ));
            let mut sim2 = Simulator::new(b.build());
            sim2.add_agent(
                a,
                1,
                Box::new(Blaster {
                    peer: z,
                    peer_port: 2,
                    port: 1,
                    count: 200,
                    size: 1000,
                    gap: Dur::from_micros(80),
                    sent: 0,
                }),
            );
            let sink2 = sim2.add_agent(z, 2, Box::<Sink>::default());
            sim2.run_to_completion();
            sim2.agent_as::<Sink>(sink2).unwrap().received.clone()
        };
        assert_eq!(s.received, rerun);
    }

    #[test]
    fn custom_disciplines_installed_per_link() {
        use crate::queue::Red;
        let (t, a, z) = two_nodes(1_000_000, Dur::from_millis(1), Capacity::Packets(10));
        // RED with thresholds far below the load: early drops must occur
        // where plain drop-tail (capacity 10_000) would accept everything.
        let mut sim = Simulator::with_disciplines(t, |id, spec| {
            if id.0 == 0 {
                Box::new(Red::new(Capacity::Packets(10_000), 2.0, 6.0, 1.0))
            } else {
                Box::new(DropTail::new(spec.capacity))
            }
        });
        sim.add_agent(
            a,
            1,
            Box::new(Blaster {
                peer: z,
                peer_port: 2,
                port: 1,
                count: 500,
                size: 1000,
                gap: Dur::ZERO,
                sent: 0,
            }),
        );
        sim.add_agent(z, 2, Box::<Sink>::default());
        sim.run_to_completion();
        let stats = sim.link_stats(crate::packet::LinkId(0));
        assert!(stats.dropped > 0, "RED should have dropped early");
        assert!(stats.transmitted > 0);
    }

    #[test]
    fn tracer_sees_full_packet_lifecycle() {
        use crate::trace::{SharedTraceCollector, TraceOp};
        let (t, a, z) = two_nodes(1_000_000, Dur::from_millis(2), Capacity::Packets(2));
        let mut sim = Simulator::new(t);
        sim.add_agent(
            a,
            1,
            Box::new(Blaster {
                peer: z,
                peer_port: 2,
                port: 1,
                count: 6,
                size: 1000,
                gap: Dur::from_micros(100), // bursts into the 2-packet queue
                sent: 0,
            }),
        );
        sim.add_agent(z, 2, Box::<Sink>::default());
        let (tracer, events) = SharedTraceCollector::new();
        sim.set_tracer(tracer);
        sim.run_to_completion();
        let events = events.borrow();
        let count = |op: TraceOp| events.iter().filter(|e| e.op == op).count() as u64;
        let stats = sim.link_stats(crate::packet::LinkId(0));
        assert_eq!(count(TraceOp::Enqueue), stats.enqueued);
        assert_eq!(count(TraceOp::Drop), stats.dropped);
        assert_eq!(count(TraceOp::Transmit), stats.transmitted);
        assert!(count(TraceOp::Drop) > 0, "queue of 2 must drop under burst");
        assert_eq!(count(TraceOp::Deliver), stats.transmitted);
        // Trace is time-ordered.
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn census_conserves_packets_mid_run_and_at_completion() {
        // Tiny queue + fast arrivals: drops, queueing, and in-flight
        // packets all occur, so every census term is exercised.
        let (t, a, z) = two_nodes(1_000_000, Dur::from_millis(5), Capacity::Packets(3));
        let mut sim = Simulator::new(t);
        sim.add_agent(
            a,
            1,
            Box::new(Blaster {
                peer: z,
                peer_port: 2,
                port: 1,
                count: 50,
                size: 1000,
                gap: Dur::from_millis(1),
                sent: 0,
            }),
        );
        let sink = sim.add_agent(z, 2, Box::<Sink>::default());

        // Stop mid-stream: some packets must still be queued or in flight.
        sim.run_until(Time::from_millis(20));
        let mid = sim.packet_census();
        assert!(mid.conserved(), "mid-run census leaks packets: {mid:?}");
        assert!(
            mid.outstanding() > 0,
            "expected packets in transit: {mid:?}"
        );

        sim.run_to_completion();
        let end = sim.packet_census();
        assert!(end.conserved(), "final census leaks packets: {end:?}");
        assert_eq!(end.outstanding(), 0, "packets stuck after drain: {end:?}");
        assert_eq!(end.injected, 50);
        assert!(end.dropped > 0, "queue of 3 must drop under this burst");
        let received = sim.agent_as::<Sink>(sink).unwrap().received.len() as u64;
        assert_eq!(end.delivered, received);
        assert_eq!(end.delivered + end.dropped, 50);
    }

    #[test]
    fn census_counts_undeliverable_as_terminal() {
        let (t, a, z) = two_nodes(1_000_000, Dur::from_millis(1), Capacity::Packets(10));
        let mut sim = Simulator::new(t);
        sim.add_agent(
            a,
            1,
            Box::new(Blaster {
                peer: z,
                peer_port: 99, // nothing bound on port 99
                port: 1,
                count: 3,
                size: 100,
                gap: Dur::ZERO,
                sent: 0,
            }),
        );
        sim.run_to_completion();
        let c = sim.packet_census();
        assert!(c.conserved(), "{c:?}");
        assert_eq!(c.undeliverable, 3);
        assert_eq!(c.delivered, 0);
        assert_eq!(c.outstanding(), 0);
    }

    #[test]
    fn recycled_heap_buffers_do_not_change_results() {
        // Back-to-back simulators on one thread hit the heap pool; the
        // second run must start from a logically empty queue.
        let run = || {
            let (t, a, z) = two_nodes(2_000_000, Dur::from_millis(2), Capacity::Packets(5));
            let mut sim = Simulator::new(t);
            sim.add_agent(
                a,
                1,
                Box::new(Blaster {
                    peer: z,
                    peer_port: 2,
                    port: 1,
                    count: 80,
                    size: 900,
                    gap: Dur::from_micros(500),
                    sent: 0,
                }),
            );
            sim.add_agent(z, 2, Box::<Sink>::default());
            sim.run_to_completion();
            (sim.events_processed(), sim.packet_census())
        };
        let first = run();
        for _ in 0..4 {
            assert_eq!(run(), first);
        }
    }

    #[test]
    fn deterministic_event_counts() {
        let run = || {
            let (t, a, z) = two_nodes(5_000_000, Dur::from_millis(3), Capacity::Packets(7));
            let mut sim = Simulator::new(t);
            sim.add_agent(
                a,
                1,
                Box::new(Blaster {
                    peer: z,
                    peer_port: 2,
                    port: 1,
                    count: 200,
                    size: 700,
                    gap: Dur::from_micros(300),
                    sent: 0,
                }),
            );
            sim.add_agent(z, 2, Box::<Sink>::default());
            sim.run_to_completion();
            (
                sim.events_processed(),
                sim.link_stats(crate::packet::LinkId(0)).dropped,
            )
        };
        assert_eq!(run(), run());
    }
}
