//! The discrete-event simulation engine.
//!
//! Execution model:
//!
//! * A single event queue ordered by `(time, sequence)` — the sequence
//!   number makes simultaneous events fire in scheduling order, so runs
//!   are fully deterministic. The queue is a [`TieredScheduler`]: a
//!   bucketed calendar for the dense near-future band of
//!   TxEnd/Deliver/timer events with a binary-heap overflow for
//!   far-future events, popping in exactly the same total order a plain
//!   heap would (see `sched.rs`).
//! * **Links** do all store-and-forward work: a packet handed to a link is
//!   queued (or dropped, drop-tail), serialized at the link rate, then
//!   delivered to the far node after the propagation delay.
//! * **Agents** (transport endpoints, traffic sources…) live on nodes and
//!   are addressed by `(node, port)`. The engine calls [`Agent::on_packet`]
//!   when a packet reaches its destination node and port, and
//!   [`Agent::on_timer`] when a timer the agent set fires.
//!
//! Agents interact with the world exclusively through [`Ctx`], which can
//! send packets, set timers (and lazily cancel them via [`TimerHandle`]),
//! and read link statistics (the read access is the "ideal oracle" used
//! by Remy-Phi-ideal, paper §2.2.4).

use std::any::Any;
use std::sync::Mutex;
use std::time::Instant;

use phi_workload::SeedRng;
use serde::{Deserialize, Serialize};

use crate::faults::{DownPolicy, EgressVerdict, FaultStats, ImpairmentPlan, LinkFault};
use crate::packet::{AgentId, Flags, FlowId, LinkId, NodeId, Packet, SackBlocks};
use crate::queue::{LinkQueue, Verdict};
use crate::sched::TieredScheduler;
use crate::stats::{LinkStats, RollingUtil};
use crate::switch::{AdmitOutcome, PfcEdge, SwitchSpec, SwitchState, SwitchStats};
use crate::time::{Dur, Time};
use crate::topology::Topology;
use crate::trace::{TraceEvent, TraceOp, Tracer};

/// A simulation participant attached to a node.
///
/// `Send` because the parallel engine (`par.rs`) runs each topology
/// domain — simulator, agents and all — on its own worker thread. Agents
/// are still called from exactly one event loop at a time, never
/// concurrently.
pub trait Agent: Any + Send {
    /// Called once when the simulation starts.
    fn start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// A packet addressed to this agent arrived.
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>);

    /// A timer set via [`Ctx::set_timer_at`] fired.
    fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}

    /// Downcast support, for retrieving agent state after a run.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

#[derive(Debug)]
enum Event {
    /// The packet at the head of the link finished serializing.
    TxEnd { link: LinkId, pkt: Packet },
    /// A packet reached a node. `via` is the link it arrived on
    /// ([`NO_LINK`] for agent injections) — switch ingress attribution.
    Deliver {
        node: NodeId,
        pkt: Packet,
        via: LinkId,
    },
    /// A PFC PAUSE (`xoff`) or RESUME frame arrives at the transmitting
    /// end of `link`. `seq` is the emitting switch's per-ingress edge
    /// counter (tie-break key).
    Pfc { link: LinkId, xoff: bool, seq: u64 },
    /// A pause-storm watchdog armed by the switch on `node` for ingress
    /// `link` expires; `epoch` validates against the switch's pause
    /// state (a resume in the meantime makes the timer stale).
    PfcWatchdog {
        node: NodeId,
        link: LinkId,
        epoch: u64,
    },
    /// An agent timer fired. `slot`/`gen` validate against the timer slab:
    /// a mismatch means the timer was cancelled (or superseded) after it
    /// was scheduled, and the event is skipped without touching the agent.
    /// `arm` is the agent's monotonically increasing arm counter, used
    /// only as a partition-invariant tie-break key in parallel runs.
    Timer {
        agent: AgentId,
        token: u64,
        slot: u32,
        gen: u64,
        arm: u64,
    },
    /// A precomputed link state transition from the fault plane: the link
    /// goes down (`up == false`) or heals (`up == true`). `idx` is the
    /// edge's index in the plan's precomputed schedule (tie-break key).
    FaultEdge { link: LinkId, up: bool, idx: u32 },
}

impl Event {
    /// Content-derived `(class, a, b)` triple identifying this event among
    /// all events scheduled for the same timestamp. Used by [`ParKey`] to
    /// give parallel runs a tie-break order that does not depend on which
    /// domain scheduled an event first (the serial engine's FIFO counter
    /// does, so it cannot survive partitioning).
    ///
    /// Uniqueness at equal timestamps: a link serializes one packet at a
    /// time (`TxEnd`), packet ids are globally unique (`Deliver`; the only
    /// collision is a fault-plane duplicate, which is a byte-identical
    /// event, so its order is unobservable), `arm` counts per agent
    /// (`Timer`), and `idx` counts per plan (`FaultEdge`).
    fn key_parts(&self) -> (u8, u32, u64) {
        match self {
            Event::FaultEdge { link, idx, .. } => (0, link.0, u64::from(*idx)),
            Event::TxEnd { link, pkt } => (1, link.0, pkt.id),
            Event::Deliver { node, pkt, .. } => (2, node.0, pkt.id),
            Event::Timer { agent, arm, .. } => (3, agent.0, *arm),
            Event::Pfc { link, seq, .. } => (4, link.0, *seq),
            Event::PfcWatchdog { link, epoch, .. } => (5, link.0, *epoch),
        }
    }
}

/// Tie-break key for simultaneous events in parallel (domain-partitioned)
/// runs: events at equal timestamps order by `(class, a, b)` from
/// [`Event::key_parts`] instead of by scheduling order. The resulting pop
/// order is a pure function of event *content*, so every domain count
/// produces the same execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct ParKey {
    class: u8,
    a: u32,
    b: u64,
}

/// A handle identifying one scheduled timer, returned by
/// [`Ctx::set_timer_at`] and accepted by [`Ctx::cancel_timer`].
///
/// Cancellation is *lazy*: the event stays in the queue, but its
/// generation no longer matches the slab's, so the engine discards it at
/// pop time instead of dispatching it. This makes cancel (and the
/// re-arm-instead-of-flood pattern in the TCP sender) O(1) with no queue
/// surgery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerHandle {
    slot: u32,
    gen: u64,
}

/// Generation slots validating pending timers. A slot is live from
/// `alloc` until the matching event fires or is cancelled; either path
/// bumps the generation (invalidating any outstanding handle/event with
/// the old one) and returns the slot to the free list. Slot allocation
/// order is purely event-driven, so reuse is deterministic.
#[derive(Debug, Default)]
struct TimerSlab {
    gens: Vec<u64>,
    free: Vec<u32>,
}

impl TimerSlab {
    fn alloc(&mut self) -> (u32, u64) {
        match self.free.pop() {
            Some(slot) => (slot, self.gens[slot as usize]),
            None => {
                let slot = self.gens.len() as u32;
                self.gens.push(0);
                (slot, 0)
            }
        }
    }

    /// Retire `(slot, gen)` if it is still live; false means the handle
    /// (or event) was stale.
    fn retire(&mut self, slot: u32, gen: u64) -> bool {
        let g = &mut self.gens[slot as usize];
        if *g == gen {
            *g += 1;
            self.free.push(slot);
            true
        } else {
            false
        }
    }

    fn clear(&mut self) {
        self.gens.clear();
        self.free.clear();
    }
}

/// Runtime state of one link.
struct LinkState {
    queue: LinkQueue,
    busy: bool,
    stats: LinkStats,
    rolling: RollingUtil,
    /// PFC: true while the downstream switch has this link paused. A
    /// paused link finishes the frame in flight but starts no new
    /// serialization (head-of-line blocking on everything queued).
    paused: bool,
    /// When the current pause began (valid while `paused`).
    paused_since: Time,
    /// Accumulated paused nanoseconds over closed pause intervals.
    paused_ns: u64,
    /// Chaos-plane state, when an [`ImpairmentPlan`] is installed. Boxed:
    /// the overwhelmingly common case is no faults, and the untouched
    /// pointer keeps `LinkState` small for the hot path.
    fault: Option<Box<LinkFault>>,
}

mod sealed {
    // Signatures here mention private engine types on purpose: the trait
    // is reachable only as the sealed supertrait of `EventSeq`, which
    // external code can neither implement nor call methods on.
    #![allow(private_interfaces)]

    use super::{CtxInner, Event, SimCore, TimerSlab};
    use crate::sched::TieredScheduler;
    use std::sync::Mutex;

    /// Crate-internal half of [`super::EventSeq`]: the operations that
    /// mention private engine types, kept out of the public trait.
    pub trait Sealed: Sized {
        /// Mint the tie-break key for an event scheduled as the `fifo`-th
        /// push with content triple `(class, a, b)`.
        fn mint(fifo: &mut u64, class: u8, a: u32, b: u64) -> Self;
        /// The carcass-recycling pool for this key discipline.
        fn pool() -> &'static Mutex<Vec<(TieredScheduler<Event, Self>, TimerSlab)>>;
        /// Wrap a core borrow into the type-erased agent context.
        fn ctx_inner(core: &mut SimCore<Self>) -> CtxInner<'_>
        where
            Self: super::EventSeq;
    }
}

/// The event queue's tie-break discipline: how simultaneous events order.
///
/// Two implementations exist, and the set is sealed:
/// * `u64` (the default) — FIFO by scheduling order, the serial engine's
///   historical behavior; every pinned golden trace runs under it.
/// * the parallel engine's content-derived key — identical pop order for
///   any domain count, used by [`crate::par::ParallelSimulator`].
pub trait EventSeq: sealed::Sealed + Copy + Ord + std::fmt::Debug + Send + 'static {}

// The engine types in these signatures are deliberately unnameable
// outside the crate: the trait is only reachable through the sealed
// supertrait of `EventSeq`, which external code cannot implement or call.
#[allow(private_interfaces)]
impl sealed::Sealed for u64 {
    fn mint(fifo: &mut u64, _class: u8, _a: u32, _b: u64) -> u64 {
        let seq = *fifo;
        *fifo += 1;
        seq
    }
    fn pool() -> &'static Mutex<Vec<(TieredScheduler<Event, u64>, TimerSlab)>> {
        static POOL: Mutex<Vec<(TieredScheduler<Event, u64>, TimerSlab)>> = Mutex::new(Vec::new());
        &POOL
    }
    fn ctx_inner(core: &mut SimCore<u64>) -> CtxInner<'_> {
        CtxInner::Serial(core)
    }
}
impl EventSeq for u64 {}

#[allow(private_interfaces)]
impl sealed::Sealed for ParKey {
    fn mint(_fifo: &mut u64, class: u8, a: u32, b: u64) -> ParKey {
        ParKey { class, a, b }
    }
    fn pool() -> &'static Mutex<Vec<(TieredScheduler<Event, ParKey>, TimerSlab)>> {
        static POOL: Mutex<Vec<(TieredScheduler<Event, ParKey>, TimerSlab)>> =
            Mutex::new(Vec::new());
        &POOL
    }
    fn ctx_inner(core: &mut SimCore<ParKey>) -> CtxInner<'_> {
        CtxInner::Par(core)
    }
}
impl EventSeq for ParKey {}

/// A cross-domain handoff arriving at `node` (owned by another domain)
/// at `at`: a packet delivery, or a PFC pause/resume frame whose paused
/// link is transmitted from a foreign node. Collected in the sending
/// domain's outbox during a window and injected into the receiving
/// domain at the next barrier. PFC frames can ride the same mailboxes
/// because they travel one ingress-link propagation delay upstream, and
/// a partition-cut link's delay is at least the lookahead.
#[derive(Debug)]
pub(crate) struct Xmsg {
    pub(crate) at: Time,
    pub(crate) node: NodeId,
    pub(crate) body: XmsgBody,
}

/// Payload of one cross-domain handoff.
#[derive(Debug)]
pub(crate) enum XmsgBody {
    /// `pkt` reaches `node` having arrived over `via`.
    Deliver { pkt: Packet, via: LinkId },
    /// A PAUSE (`xoff`) or RESUME frame for `link` (transmitted from
    /// `node`, which the receiving domain owns).
    Pfc { link: LinkId, xoff: bool, seq: u64 },
}

/// Domain-partitioning state carried by a parallel-run core. `None` on
/// serial simulators, so the single branch it costs on the forwarding
/// path is perfectly predicted.
#[derive(Debug, Default)]
struct ParState {
    /// This simulator's domain.
    my_domain: u32,
    /// Owning domain of every node.
    node_domain: Vec<u32>,
    /// Cross-domain deliveries produced this window, awaiting the barrier.
    outbox: Vec<Xmsg>,
    /// Per-agent packet-id counters (`id = agent << 40 | counter`), so
    /// ids are unique and identical for any domain count.
    agent_pkt: Vec<u64>,
    /// Per-agent timer arm counters (tie-break key for `Event::Timer`).
    agent_arm: Vec<u64>,
    /// Lifetime count of exported (cross-domain) deliveries.
    exported: u64,
}

impl ParState {
    fn counter(v: &mut Vec<u64>, agent: AgentId) -> &mut u64 {
        let idx = agent.0 as usize;
        if v.len() <= idx {
            v.resize(idx + 1, 0);
        }
        &mut v[idx]
    }
}

/// Everything the engine owns except the agents themselves. Splitting this
/// out lets [`Ctx`] hold `&mut SimCore` while an agent (removed from the
/// agent table for the duration of its callback) runs.
/// Sentinel for "no agent bound" in the dense per-node port tables.
const NO_AGENT: AgentId = AgentId(u32::MAX);

/// Sentinel ingress for packets injected by a local agent (no inbound
/// link to attribute PFC accounting to).
const NO_LINK: LinkId = LinkId(u32::MAX);

struct SimCore<S: EventSeq> {
    now: Time,
    queue: TieredScheduler<Event, S>,
    timers: TimerSlab,
    topology: Topology,
    links: Vec<LinkState>,
    /// Shared-buffer switch state, indexed by node; `None` for hosts and
    /// plain (per-link-island) routers.
    switches: Vec<Option<Box<SwitchState>>>,
    /// Dense dispatch tables: `ports[node][port]` is the bound agent (or
    /// [`NO_AGENT`]). Replaces a per-delivery `HashMap<(NodeId, u16), _>`
    /// lookup with two array indexes; ports in use are small (well under
    /// 100), so the tables stay tiny.
    ports: Vec<Vec<AgentId>>,
    agent_nodes: Vec<NodeId>,
    /// FIFO sequence counter feeding `u64` key minting; unused (but
    /// harmless) under content-derived keys.
    fifo: u64,
    /// Domain-partitioning state; `None` on serial simulators.
    par: Option<Box<ParState>>,
    /// Packets injected via [`Ctx::send`] by agents on this core (in
    /// serial runs this doubles as the next packet id).
    next_packet_id: u64,
    /// Packets that arrived for a (node, port) with no agent bound.
    pub undeliverable: u64,
    /// Packets consumed by a bound agent at their destination.
    delivered: u64,
    /// Events dispatched (stale timers are skipped, not fired).
    events_fired: u64,
    /// Timer events discarded at pop time because their generation no
    /// longer matched (cancelled or superseded).
    skipped_stale: u64,
    /// Successful [`Ctx::cancel_timer`] calls.
    cancelled: u64,
    tracer: Option<Box<dyn Tracer>>,
    /// Resource budget, if any. `None` takes the historical un-budgeted
    /// pop loop, so budget-free runs replay bit-for-bit.
    budget: Option<RunBudget>,
    /// Host time of the first budgeted pump (wall-clock watchdog base).
    wall_start: Option<Instant>,
    /// Set once a budget limit fires; the run stops dispatching and
    /// reports the reason through [`Simulator::termination`].
    terminated: Option<BudgetExceeded>,
}

/// Carcasses kept per pool; beyond this, retiring schedulers deallocate.
/// Sized for a `RunPool`'s worth of concurrent serial sweeps or a
/// parallel run's worth of domains, whichever retires first.
const SCHED_POOL_LIMIT: usize = 16;

/// Recycled scheduler carcasses. Parameter sweeps and trainer rounds
/// build thousands of short-lived simulators; each would otherwise regrow
/// the calendar's bucket vectors and overflow heap from empty. A retiring
/// simulator parks its (cleared) scheduler and timer slab in a per-key-
/// discipline global pool (a `Mutex`, touched once per simulator lifetime
/// — never on the event hot path — so K parallel domains neither contend
/// nor leak carcasses across runs). A cleared scheduler is logically
/// identical to a fresh one (sequence numbers, cursor, and counters all
/// reset), so pooling cannot perturb results.
fn recycled_scheduler<S: EventSeq>() -> (TieredScheduler<Event, S>, TimerSlab) {
    S::pool()
        .lock()
        .expect("scheduler pool poisoned")
        .pop()
        .unwrap_or_default()
}

impl<S: EventSeq> Drop for SimCore<S> {
    fn drop(&mut self) {
        let mut sched = std::mem::take(&mut self.queue);
        let mut timers = std::mem::take(&mut self.timers);
        sched.clear();
        timers.clear();
        let mut pool = S::pool().lock().expect("scheduler pool poisoned");
        if pool.len() < SCHED_POOL_LIMIT {
            pool.push((sched, timers));
        }
    }
}

impl<S: EventSeq> SimCore<S> {
    fn trace(&mut self, op: TraceOp, link: Option<LinkId>, node: Option<NodeId>, pkt: &Packet) {
        if let Some(t) = self.tracer.as_mut() {
            t.event(&TraceEvent::new(self.now, op, link, node, pkt));
        }
    }
}

impl<S: EventSeq> SimCore<S> {
    fn schedule(&mut self, at: Time, event: Event) {
        debug_assert!(at >= self.now, "cannot schedule into the past");
        let (class, a, b) = event.key_parts();
        let key = S::mint(&mut self.fifo, class, a, b);
        self.queue.push_keyed(at, key, event);
    }

    /// Assign the id for a packet injected by `agent` and count the
    /// injection. Serial runs use one global counter (the historical id
    /// sequence every golden trace pins); parallel runs partition the id
    /// space by agent so ids are identical for any domain count.
    fn mint_packet_id(&mut self, agent: AgentId) -> u64 {
        self.next_packet_id += 1;
        match self.par.as_deref_mut() {
            Some(p) => {
                let c = ParState::counter(&mut p.agent_pkt, agent);
                let id = (u64::from(agent.0) << 40) | *c;
                *c += 1;
                id
            }
            None => self.next_packet_id - 1,
        }
    }

    /// Next timer arm number for `agent` (0 in serial runs, where the
    /// FIFO key makes the arm counter redundant).
    fn next_arm(&mut self, agent: AgentId) -> u64 {
        match self.par.as_deref_mut() {
            Some(p) => {
                let c = ParState::counter(&mut p.agent_arm, agent);
                let arm = *c;
                *c += 1;
                arm
            }
            None => 0,
        }
    }

    /// Schedule delivery of `pkt` (arriving over `via`) at `node`, or
    /// export it to the owning domain's mailbox when `node` lives across
    /// a partition cut.
    fn deliver_or_export(&mut self, at: Time, node: NodeId, pkt: Packet, via: LinkId) {
        if let Some(p) = self.par.as_deref_mut() {
            if p.node_domain[node.0 as usize] != p.my_domain {
                p.exported += 1;
                p.outbox.push(Xmsg {
                    at,
                    node,
                    body: XmsgBody::Deliver { pkt, via },
                });
                return;
            }
        }
        self.schedule(at, Event::Deliver { node, pkt, via });
    }

    /// Route `pkt` (which arrived at `at` over `via`) toward its
    /// destination; enqueue on the next link.
    fn forward(&mut self, at: NodeId, pkt: Packet, via: LinkId) {
        let Some(link_id) = self.topology.next_hop(at, pkt.dst) else {
            // Destination is this node but no agent consumed it, or routing
            // is impossible; count and drop.
            self.undeliverable += 1;
            return;
        };
        self.enqueue_on_link(link_id, pkt, via);
    }

    fn enqueue_on_link(&mut self, link_id: LinkId, mut pkt: Packet, via: LinkId) {
        let now = self.now;
        let ls = &mut self.links[link_id.0 as usize];
        // A downed link with the Drop policy destroys arrivals outright;
        // under Park they queue normally and wait for the healing edge.
        if let Some(f) = ls.fault.as_deref_mut() {
            if !f.up && f.plan.down_policy == DownPolicy::Drop {
                f.stats.blackholed += 1;
                if let Some(t) = self.tracer.as_mut() {
                    t.event(&TraceEvent::new(
                        now,
                        TraceOp::Blackhole,
                        Some(link_id),
                        None,
                        &pkt,
                    ));
                }
                return;
            }
        }
        // Shared-buffer admission, when the transmitting node is a
        // switch: Dynamic-Threshold rejection drops here (counted on the
        // egress link), acceptance may CE-mark the packet and cross a
        // PFC pause threshold.
        let from = self.topology.link(link_id).from;
        let mut pfc_edge = None;
        if let Some(sw) = self.switches[from.0 as usize].as_deref_mut() {
            match sw.admit(link_id, via, &mut pkt) {
                AdmitOutcome::Rejected => {
                    let ls = &mut self.links[link_id.0 as usize];
                    ls.stats.advance_occupancy(now, ls.queue.len_bytes());
                    ls.stats.dropped += 1;
                    self.trace(TraceOp::Drop, Some(link_id), None, &pkt);
                    return;
                }
                AdmitOutcome::Admitted(edge) => pfc_edge = edge,
            }
        }
        let has_switch = self.switches[from.0 as usize].is_some();
        let ls = &mut self.links[link_id.0 as usize];
        ls.stats.advance_occupancy(now, ls.queue.len_bytes());
        // The queue consumes the packet; clone identity bits only when
        // someone downstream needs them (tracing, or release accounting
        // on a rejected offer at a switch node).
        let kept = (self.tracer.is_some() || has_switch).then(|| pkt.clone());
        match ls.queue.offer(pkt, now) {
            Verdict::Enqueued => {
                ls.stats.enqueued += 1;
                if let Some(p) = &kept {
                    self.trace(TraceOp::Enqueue, Some(link_id), None, p);
                }
                if !self.links[link_id.0 as usize].busy {
                    self.begin_tx(link_id);
                }
            }
            Verdict::Dropped => {
                ls.stats.dropped += 1;
                if let Some(p) = &kept {
                    // The inner queue refused a packet the shared buffer
                    // admitted: give the pool its bytes back.
                    if let Some(sw) = self.switches[from.0 as usize].as_deref_mut() {
                        if let Some(e) = sw.release(link_id, p) {
                            debug_assert!(pfc_edge.is_none());
                            pfc_edge = Some(e);
                        }
                    }
                    self.trace(TraceOp::Drop, Some(link_id), None, p);
                }
            }
        }
        if let Some(edge) = pfc_edge {
            self.emit_pfc(edge);
        }
    }

    /// Start serializing the next queued packet, if any.
    fn begin_tx(&mut self, link_id: LinkId) {
        let now = self.now;
        let spec = self.topology.link(link_id);
        let (spec_rate, from) = (spec.rate_bps, spec.from);
        let ls = &mut self.links[link_id.0 as usize];
        debug_assert!(!ls.busy);
        // A downed link does not serialize: parked packets stay queued
        // until the healing edge calls `begin_tx` again.
        if ls.fault.as_deref().is_some_and(|f| !f.up) {
            return;
        }
        // A PFC-paused link holds its queue until the RESUME frame (or a
        // watchdog drain) arrives — head-of-line blocking by design.
        if ls.paused {
            return;
        }
        ls.stats.advance_occupancy(now, ls.queue.len_bytes());
        let Some((pkt, enqueued_at)) = ls.queue.take() else {
            return;
        };
        ls.busy = true;
        ls.rolling.begin_busy(now);
        ls.stats
            .queue_wait
            .push(now.saturating_since(enqueued_at).as_secs_f64());
        let tx = Dur::transmission(pkt.size, spec_rate);
        // A switch releases shared-buffer bytes when serialization
        // starts; falling to the resume threshold un-pauses the ingress.
        let edge = self.switches[from.0 as usize]
            .as_deref_mut()
            .and_then(|sw| sw.release(link_id, &pkt));
        self.schedule(now + tx, Event::TxEnd { link: link_id, pkt });
        if let Some(e) = edge {
            self.emit_pfc(e);
        }
    }

    fn on_tx_end(&mut self, link_id: LinkId, pkt: Packet) {
        let now = self.now;
        let spec = self.topology.link(link_id);
        let mut delay = spec.delay;
        if !spec.jitter.is_zero() {
            // Deterministic per-packet jitter: splitmix64 of the packet id.
            let j = splitmix64(pkt.id) % spec.jitter.as_nanos().max(1);
            delay += Dur::from_nanos(j);
        }
        let to = spec.to;
        {
            let ls = &mut self.links[link_id.0 as usize];
            ls.busy = false;
            ls.rolling.end_busy(now);
            ls.stats.transmitted += 1;
            ls.stats.bytes_transmitted += u64::from(pkt.size);
            ls.stats.busy += Dur::transmission(pkt.size, self.topology.link(link_id).rate_bps);
        }
        self.trace(TraceOp::Transmit, Some(link_id), None, &pkt);
        // The fault plane decides the packet's fate at link egress. The
        // per-packet draws happen here, in TxEnd order, so the impairment
        // trace follows the engine's deterministic total event order.
        let verdict = match self.links[link_id.0 as usize].fault.as_deref_mut() {
            Some(f) => f.egress(),
            None => EgressVerdict::Forward {
                extra: Dur::ZERO,
                duplicate: false,
            },
        };
        match verdict {
            EgressVerdict::Forward { extra, duplicate } => {
                let dup = duplicate.then(|| pkt.clone());
                self.deliver_or_export(now + delay + extra, to, pkt, link_id);
                if let Some(p) = dup {
                    self.trace(TraceOp::Duplicate, Some(link_id), None, &p);
                    self.deliver_or_export(now + delay + extra, to, p, link_id);
                }
            }
            EgressVerdict::Blackhole => self.trace(TraceOp::Blackhole, Some(link_id), None, &pkt),
            EgressVerdict::Corrupt => self.trace(TraceOp::Corrupt, Some(link_id), None, &pkt),
        }
        // Immediately pull the next packet, if queued.
        if self.links[link_id.0 as usize].queue.len_packets() > 0 {
            self.begin_tx(link_id);
        }
    }

    /// Execute a scheduled link up/down transition. Healing restarts
    /// transmission of parked packets; a down edge under the Drop policy
    /// drains the queue into the blackhole counter.
    fn on_fault_edge(&mut self, link_id: LinkId, up: bool) {
        enum Action {
            Nothing,
            Restart,
            Drain,
        }
        let now = self.now;
        let action = {
            let ls = &mut self.links[link_id.0 as usize];
            let Some(f) = ls.fault.as_deref_mut() else {
                return;
            };
            if !f.apply_edge(up) {
                // Redundant edge (e.g. a flap regime ending while up).
                return;
            }
            if up {
                if !ls.busy && ls.queue.len_packets() > 0 {
                    Action::Restart
                } else {
                    Action::Nothing
                }
            } else if f.plan.down_policy == DownPolicy::Drop {
                Action::Drain
            } else {
                Action::Nothing
            }
        };
        match action {
            Action::Restart => self.begin_tx(link_id),
            Action::Drain => {
                let ls = &mut self.links[link_id.0 as usize];
                ls.stats.advance_occupancy(now, ls.queue.len_bytes());
                let mut killed = Vec::new();
                while let Some((p, _)) = ls.queue.take() {
                    killed.push(p);
                }
                let f = ls.fault.as_deref_mut().expect("fault checked above");
                f.stats.blackholed += killed.len() as u64;
                for p in &killed {
                    self.trace(TraceOp::Blackhole, Some(link_id), None, p);
                }
            }
            Action::Nothing => {}
        }
    }

    /// Turn a switch-produced pause-plane transition into scheduled
    /// events: the PAUSE/RESUME frame arrives at the transmitting end of
    /// the ingress link one propagation delay upstream, and every XOFF
    /// arms a watchdog at the emitting switch.
    fn emit_pfc(&mut self, edge: PfcEdge) {
        match edge {
            PfcEdge::Xoff {
                link,
                seq,
                epoch,
                watchdog,
            } => {
                let spec = self.topology.link(link);
                let (delay, node) = (spec.delay, spec.to);
                self.pfc_or_export(self.now + delay, link, true, seq);
                self.schedule(
                    self.now + watchdog,
                    Event::PfcWatchdog { node, link, epoch },
                );
            }
            PfcEdge::Xon { link, seq } => {
                let delay = self.topology.link(link).delay;
                self.pfc_or_export(self.now + delay, link, false, seq);
            }
        }
    }

    /// Schedule a PFC frame's arrival at `link`'s transmitting node, or
    /// export it when that node belongs to another domain. Safe at
    /// barriers for the same reason deliveries are: the frame travels
    /// one cut-link propagation delay, which is at least the lookahead.
    fn pfc_or_export(&mut self, at: Time, link: LinkId, xoff: bool, seq: u64) {
        let from = self.topology.link(link).from;
        if let Some(p) = self.par.as_deref_mut() {
            if p.node_domain[from.0 as usize] != p.my_domain {
                p.outbox.push(Xmsg {
                    at,
                    node: from,
                    body: XmsgBody::Pfc { link, xoff, seq },
                });
                return;
            }
        }
        self.schedule(at, Event::Pfc { link, xoff, seq });
    }

    /// A PFC frame arrives at `link`'s transmitting end: gate (or
    /// restart) serialization and account paused time.
    fn on_pfc(&mut self, link_id: LinkId, xoff: bool) {
        let now = self.now;
        let ls = &mut self.links[link_id.0 as usize];
        if xoff {
            if !ls.paused {
                ls.paused = true;
                ls.paused_since = now;
            }
            return;
        }
        if !ls.paused {
            return;
        }
        ls.paused = false;
        ls.paused_ns += now.saturating_since(ls.paused_since).as_nanos();
        if !ls.busy && ls.queue.len_packets() > 0 {
            self.begin_tx(link_id);
        }
    }

    /// A pause-storm watchdog expires. If the ingress has been
    /// continuously paused since the XOFF that armed it (`epoch` still
    /// matches), the switch is in a sustained pause — possibly a cyclic
    /// buffer dependency that will never resolve on its own. Break it:
    /// drain this switch's egress queues (ascending link id, FIFO order)
    /// until the stuck ingress clears its resume threshold, counting the
    /// victims as `pfc_dropped`, then force-resume.
    fn on_pfc_watchdog(&mut self, node: NodeId, link: LinkId, epoch: u64) {
        let now = self.now;
        // Disjoint field borrows: the drain alternates between switch
        // accounting and link queues.
        let switches = &mut self.switches;
        let links = &mut self.links;
        let tracer = &mut self.tracer;
        let Some(sw) = switches[node.0 as usize].as_deref_mut() else {
            return;
        };
        if !sw.watchdog_pending(link, epoch) {
            return;
        }
        sw.note_watchdog_fire();
        let xon = sw.spec.pfc.map_or(0, |p| p.xon_bytes);
        let egress: Vec<LinkId> = sw.egress_links().to_vec();
        'drain: for e in egress {
            loop {
                if sw.ingress_bytes(link) <= xon {
                    break 'drain;
                }
                let ls = &mut links[e.0 as usize];
                ls.stats.advance_occupancy(now, ls.queue.len_bytes());
                let Some((p, _)) = ls.queue.take() else {
                    break;
                };
                sw.drain_release(e, &p);
                if let Some(t) = tracer.as_mut() {
                    t.event(&TraceEvent::new(now, TraceOp::PfcDrop, Some(e), None, &p));
                }
            }
        }
        let resumes = sw.watchdog_resumes(link);
        for edge in resumes {
            self.emit_pfc(edge);
        }
    }
}

/// Type-erased borrow of a simulator core, so [`Ctx`] (and therefore the
/// object-safe [`Agent`] trait) stays a single concrete type while the
/// engine is generic over its key discipline. Exactly two variants exist
/// because [`EventSeq`] is sealed.
#[allow(private_interfaces)]
pub(crate) enum CtxInner<'a> {
    /// A serial (FIFO-keyed) core.
    Serial(&'a mut SimCore<u64>),
    /// A parallel-domain (content-keyed) core.
    Par(&'a mut SimCore<ParKey>),
}

/// Dispatch a body over whichever core variant this context wraps. The
/// body is written once and monomorphized per variant, like a generic
/// function — but through an enum, so `Ctx` can cross the object-safe
/// `dyn Agent` boundary.
macro_rules! on_core {
    ($ctx:expr, |$core:ident| $body:expr) => {
        match &$ctx.inner {
            CtxInner::Serial($core) => $body,
            CtxInner::Par($core) => $body,
        }
    };
}
macro_rules! on_core_mut {
    ($ctx:expr, |$core:ident| $body:expr) => {
        match &mut $ctx.inner {
            CtxInner::Serial($core) => $body,
            CtxInner::Par($core) => $body,
        }
    };
}

/// The handle through which agents act on the simulation.
pub struct Ctx<'a> {
    inner: CtxInner<'a>,
    agent: AgentId,
    node: NodeId,
}

impl Ctx<'_> {
    /// Current simulated time.
    pub fn now(&self) -> Time {
        on_core!(self, |c| c.now)
    }

    /// The id of the agent being called.
    pub fn agent_id(&self) -> AgentId {
        self.agent
    }

    /// The node this agent is attached to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Send a packet from this agent's node. The engine assigns the unique
    /// packet id and stamps `sent_at`; routing starts immediately.
    pub fn send(&mut self, mut pkt: Packet) {
        let (agent, node) = (self.agent, self.node);
        on_core_mut!(self, |c| {
            pkt.id = c.mint_packet_id(agent);
            pkt.sent_at = c.now;
            pkt.src = node;
            c.forward(node, pkt, NO_LINK);
        })
    }

    /// Schedule [`Agent::on_timer`] with `token` at absolute time `at`.
    ///
    /// The returned [`TimerHandle`] can be passed to
    /// [`Ctx::cancel_timer`]; agents that never cancel can ignore it.
    pub fn set_timer_at(&mut self, at: Time, token: u64) -> TimerHandle {
        let agent = self.agent;
        on_core_mut!(self, |c| {
            let at = at.max(c.now);
            let (slot, gen) = c.timers.alloc();
            let arm = c.next_arm(agent);
            c.schedule(
                at,
                Event::Timer {
                    agent,
                    token,
                    slot,
                    gen,
                    arm,
                },
            );
            TimerHandle { slot, gen }
        })
    }

    /// Schedule [`Agent::on_timer`] with `token` after `delay`.
    pub fn set_timer_after(&mut self, delay: Dur, token: u64) -> TimerHandle {
        let at = self.now() + delay;
        self.set_timer_at(at, token)
    }

    /// Cancel a pending timer. Lazy: the event is discarded when popped,
    /// never dispatched. Returns false if the timer already fired or was
    /// already cancelled (both are harmless).
    pub fn cancel_timer(&mut self, handle: TimerHandle) -> bool {
        on_core_mut!(self, |c| {
            let live = c.timers.retire(handle.slot, handle.gen);
            if live {
                c.cancelled += 1;
            }
            live
        })
    }

    /// Cumulative statistics of a link (ideal-oracle read access).
    ///
    /// In parallel runs only links whose source node belongs to this
    /// agent's domain carry live statistics; oracle reads are therefore
    /// meaningful only for domain-local paths (see DESIGN.md).
    pub fn link_stats(&self, link: LinkId) -> &LinkStats {
        on_core!(self, |c| &c.links[link.0 as usize].stats)
    }

    /// Busy-fraction of a link over its rolling window (ideal oracle).
    pub fn link_utilization(&self, link: LinkId) -> f64 {
        on_core!(self, |c| c.links[link.0 as usize]
            .rolling
            .utilization(c.now))
    }

    /// Packets currently queued at a link.
    pub fn link_queue_bytes(&self, link: LinkId) -> u64 {
        on_core!(self, |c| c.links[link.0 as usize].queue.len_bytes())
    }
}

/// The simulator: topology + agents + event loop.
///
/// `S` is the event queue's tie-break discipline (see [`EventSeq`]); the
/// default `u64` is the serial engine every public constructor builds.
pub struct Simulator<S: EventSeq = u64> {
    core: SimCore<S>,
    agents: Vec<Option<Box<dyn Agent>>>,
    started: bool,
}

/// Window over which links report rolling utilization to the ideal oracle.
pub const UTIL_WINDOW: Dur = Dur::from_millis(500);

impl Simulator {
    /// Create a simulator over `topology` with drop-tail queues on every
    /// link, per the link specs.
    pub fn new(topology: Topology) -> Self {
        Simulator::with_disciplines(topology, |_, spec| LinkQueue::drop_tail(spec.capacity))
    }

    /// Create a simulator with a custom queueing discipline per link.
    ///
    /// The factory receives each link's id and spec and returns the
    /// [`LinkQueue`] to install — [`LinkQueue::drop_tail`] for the
    /// devirtualized common case, or [`LinkQueue::custom`] for any other
    /// [`crate::queue::Discipline`] (e.g. [`crate::queue::Red`] on the
    /// bottleneck) — the hook behind the §3.1 incentives ablation.
    pub fn with_disciplines(
        topology: Topology,
        factory: impl FnMut(LinkId, &crate::topology::LinkSpec) -> LinkQueue,
    ) -> Self {
        Simulator::build(topology, factory, None)
    }
}

impl Simulator<ParKey> {
    /// Build the domain-`my_domain` member of a partitioned run: content-
    /// keyed events, deliveries to foreign nodes exported at barriers.
    /// Every domain receives the full topology (foreign links stay inert);
    /// `node_domain` maps each node to its owner.
    pub(crate) fn for_domain(
        topology: Topology,
        factory: impl FnMut(LinkId, &crate::topology::LinkSpec) -> LinkQueue,
        my_domain: u32,
        node_domain: Vec<u32>,
    ) -> Self {
        let par = ParState {
            my_domain,
            node_domain,
            ..ParState::default()
        };
        Simulator::build(topology, factory, Some(Box::new(par)))
    }
}

impl<S: EventSeq> Simulator<S> {
    fn build(
        topology: Topology,
        mut factory: impl FnMut(LinkId, &crate::topology::LinkSpec) -> LinkQueue,
        par: Option<Box<ParState>>,
    ) -> Self {
        let links = topology
            .links()
            .iter()
            .enumerate()
            .map(|(idx, spec)| LinkState {
                queue: factory(LinkId(idx as u32), spec),
                busy: false,
                stats: LinkStats::new(),
                rolling: RollingUtil::new(UTIL_WINDOW),
                paused: false,
                paused_since: Time::ZERO,
                paused_ns: 0,
                fault: None,
            })
            .collect();
        let (queue, timers) = recycled_scheduler::<S>();
        let ports = vec![Vec::new(); topology.node_count()];
        let switches = (0..topology.node_count()).map(|_| None).collect();
        Simulator {
            core: SimCore {
                now: Time::ZERO,
                queue,
                timers,
                topology,
                links,
                switches,
                ports,
                agent_nodes: Vec::new(),
                fifo: 0,
                par,
                next_packet_id: 0,
                undeliverable: 0,
                delivered: 0,
                events_fired: 0,
                skipped_stale: 0,
                cancelled: 0,
                tracer: None,
                budget: None,
                wall_start: None,
                terminated: None,
            },
            agents: Vec::new(),
            started: false,
        }
    }

    /// Attach an agent to `node`, listening on `port`.
    ///
    /// # Panics
    /// Panics if `(node, port)` is already bound or the sim has started.
    pub fn add_agent(&mut self, node: NodeId, port: u16, agent: Box<dyn Agent>) -> AgentId {
        assert!(!self.started, "cannot add agents after start");
        let id = AgentId(self.agents.len() as u32);
        let table = &mut self.core.ports[node.0 as usize];
        if table.len() <= usize::from(port) {
            table.resize(usize::from(port) + 1, NO_AGENT);
        }
        assert!(
            table[usize::from(port)] == NO_AGENT,
            "({node}, :{port}) already bound"
        );
        table[usize::from(port)] = id;
        self.agents.push(Some(agent));
        self.core.agent_nodes.push(node);
        id
    }

    /// Install a fault-injection [`ImpairmentPlan`] on `link`.
    ///
    /// All randomness — flap durations and the per-packet loss,
    /// corruption, duplication, and reordering draws — comes from a
    /// stream forked off `root` as `fork_indexed("faults/link", link)`,
    /// so plans on different links are independent and the whole
    /// impairment trace is bit-reproducible for any worker count.
    /// Outage and flap edges are precomputed here and scheduled as
    /// engine events.
    ///
    /// # Panics
    /// Panics if the simulation has started or the link already has a
    /// plan installed.
    pub fn install_impairments(&mut self, link: LinkId, plan: ImpairmentPlan, root: &SeedRng) {
        assert!(!self.started, "install impairments before the run starts");
        let ls = &mut self.core.links[link.0 as usize];
        assert!(
            ls.fault.is_none(),
            "{link} already has an impairment plan installed"
        );
        let rng = root.fork_indexed("faults/link", u64::from(link.0));
        let (fault, edges) = LinkFault::new(plan, rng);
        ls.fault = Some(Box::new(fault));
        for (idx, (at, up)) in edges.into_iter().enumerate() {
            self.core.schedule(
                at,
                Event::FaultEdge {
                    link,
                    up,
                    idx: idx as u32,
                },
            );
        }
    }

    /// Install a shared-buffer switch model (DT admission, optional ECN
    /// marking and PFC backpressure) on `node`: every egress link of the
    /// node draws from one buffer pool, per [`SwitchSpec`].
    ///
    /// The inner link queues still apply their own capacity after
    /// admission; give them at least the pool's worth of room (the
    /// harness uses `Capacity::Bytes(pool_bytes)`) so the shared buffer
    /// is the only thing that rejects.
    ///
    /// # Panics
    /// Panics if the simulation has started, the node already has a
    /// switch, or the spec is invalid (zero pool, non-positive α,
    /// `xon > xoff`, zero watchdog).
    pub fn install_switch(&mut self, node: NodeId, spec: SwitchSpec) {
        assert!(!self.started, "install switches before the run starts");
        assert!(
            self.core.switches[node.0 as usize].is_none(),
            "{node} already has a switch installed"
        );
        let sw = SwitchState::new(node, spec, &self.core.topology);
        self.core.switches[node.0 as usize] = Some(Box::new(sw));
    }

    /// Per-switch backpressure counters, [`Simulator::fault_stats`]-style:
    /// all-zero when no switch is installed on `node`.
    pub fn switch_stats(&self, node: NodeId) -> SwitchStats {
        self.core.switches[node.0 as usize]
            .as_deref()
            .map(|s| s.stats)
            .unwrap_or_default()
    }

    /// Per-link chaos-plane counters; all-zero when no plan is installed.
    pub fn fault_stats(&self, link: LinkId) -> FaultStats {
        self.core.links[link.0 as usize]
            .fault
            .as_deref()
            .map(|f| f.stats)
            .unwrap_or_default()
    }

    /// Whether `link` is currently up (always true without a plan).
    pub fn link_is_up(&self, link: LinkId) -> bool {
        self.core.links[link.0 as usize]
            .fault
            .as_deref()
            .is_none_or(|f| f.up)
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.core.now
    }

    /// Total events dispatched so far (stale timers, skipped at pop time,
    /// are counted separately — see [`Simulator::sched_stats`]).
    pub fn events_processed(&self) -> u64 {
        self.core.events_fired
    }

    /// Scheduler-level accounting: how events moved through the tiered
    /// queue. The conservation identity
    /// `scheduled == fired + skipped_stale + pending`
    /// holds at every instant.
    pub fn sched_stats(&self) -> SchedStats {
        let c = self.core.queue.counters();
        SchedStats {
            scheduled: c.scheduled,
            fired: self.core.events_fired,
            skipped_stale: self.core.skipped_stale,
            cancelled: self.core.cancelled,
            overflowed: c.overflowed,
            peak_pending: c.peak_pending,
            pending: self.core.queue.len() as u64,
        }
    }

    /// Packets that reached a node with no agent bound to their port.
    pub fn undeliverable(&self) -> u64 {
        self.core.undeliverable
    }

    /// A point-in-time census of every packet the simulation created.
    ///
    /// The conservation invariant — every injected packet is in exactly
    /// one place — holds at any instant, mid-run or after completion:
    /// see [`PacketCensus::conserved`].
    pub fn packet_census(&self) -> PacketCensus {
        let mut in_flight = 0u64;
        for event in self.core.queue.iter() {
            if matches!(event, Event::TxEnd { .. } | Event::Deliver { .. }) {
                in_flight += 1;
            }
        }
        let mut queued = 0u64;
        let mut dropped = 0u64;
        let mut corrupted = 0u64;
        let mut duplicated = 0u64;
        let mut blackholed = 0u64;
        let mut paused_ns = 0u64;
        for ls in &self.core.links {
            queued += ls.queue.len_packets() as u64;
            dropped += ls.stats.dropped;
            paused_ns += ls.paused_ns;
            if ls.paused {
                // Open pause interval: count it up to the current clock
                // so the census is point-in-time accurate mid-pause.
                paused_ns += self.core.now.saturating_since(ls.paused_since).as_nanos();
            }
            if let Some(f) = ls.fault.as_deref() {
                corrupted += f.stats.corrupted;
                duplicated += f.stats.duplicated;
                blackholed += f.stats.blackholed;
            }
        }
        let mut ecn_marked = 0u64;
        let mut pfc_dropped = 0u64;
        for sw in self.core.switches.iter().flatten() {
            ecn_marked += sw.stats.ecn_marked;
            pfc_dropped += sw.stats.pfc_dropped;
        }
        PacketCensus {
            injected: self.core.next_packet_id,
            delivered: self.core.delivered,
            dropped,
            undeliverable: self.core.undeliverable,
            corrupted,
            duplicated,
            blackholed,
            pfc_dropped,
            queued,
            in_flight,
            ecn_marked,
            paused_ns,
        }
    }

    /// The topology under simulation.
    pub fn topology(&self) -> &Topology {
        &self.core.topology
    }

    /// Statistics of one link.
    pub fn link_stats(&self, link: LinkId) -> &LinkStats {
        &self.core.links[link.0 as usize].stats
    }

    /// Install a packet tracer (ns-2-style observation of every enqueue,
    /// drop, transmission, and delivery). Replaces any previous tracer.
    pub fn set_tracer(&mut self, tracer: Box<dyn Tracer>) {
        self.core.tracer = Some(tracer);
    }

    /// Remove and return the installed tracer (to read a collector after
    /// the run).
    pub fn take_tracer(&mut self) -> Option<Box<dyn Tracer>> {
        self.core.tracer.take()
    }

    /// Borrow an agent for post-run inspection.
    ///
    /// ```ignore
    /// let sender: &TcpSender = sim.agent_as::<TcpSender>(id).unwrap();
    /// ```
    pub fn agent_as<T: Agent>(&self, id: AgentId) -> Option<&T> {
        self.agents[id.0 as usize]
            .as_deref()
            .and_then(|a| a.as_any().downcast_ref::<T>())
    }

    /// Mutably borrow an agent.
    pub fn agent_as_mut<T: Agent>(&mut self, id: AgentId) -> Option<&mut T> {
        self.agents[id.0 as usize]
            .as_deref_mut()
            .and_then(|a| a.as_any_mut().downcast_mut::<T>())
    }

    /// Dispatch every agent's `start` callback once, in id order. Idempotent.
    pub(crate) fn start_agents(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.agents.len() {
            // In partitioned runs foreign agents leave placeholder slots.
            if self.agents[i].is_some() {
                self.with_agent(AgentId(i as u32), |agent, ctx| agent.start(ctx));
            }
        }
    }

    fn with_agent(&mut self, id: AgentId, f: impl FnOnce(&mut dyn Agent, &mut Ctx<'_>)) {
        let mut agent = self.agents[id.0 as usize]
            .take()
            .expect("agent re-entrancy is impossible: events are dispatched serially");
        let node = self.core.agent_nodes[id.0 as usize];
        let mut ctx = Ctx {
            inner: S::ctx_inner(&mut self.core),
            agent: id,
            node,
        };
        f(agent.as_mut(), &mut ctx);
        self.agents[id.0 as usize] = Some(agent);
    }

    /// Dispatch pending events in `(time, key)` order until none remain at
    /// or before `upto`. The clock follows the popped events; it is NOT
    /// advanced to `upto` afterwards (see [`Simulator::advance_clock`]) —
    /// the parallel engine pumps one bounded window per barrier round and
    /// only squares up clocks at the very end of a run.
    pub(crate) fn pump(&mut self, upto: Time) {
        if self.core.budget.is_some() {
            return self.pump_budgeted(upto);
        }
        while let Some((at, event)) = self.core.queue.pop_if(upto) {
            self.core.now = at;
            self.dispatch(event);
        }
    }

    /// Dispatch one popped event. Shared verbatim by the un-budgeted and
    /// budgeted pop loops so the execution (and every digest derived from
    /// it) cannot depend on whether a budget is installed.
    #[inline(always)]
    fn dispatch(&mut self, event: Event) {
        match event {
            Event::TxEnd { link, pkt } => {
                self.core.events_fired += 1;
                self.core.on_tx_end(link, pkt);
            }
            Event::Deliver { node, pkt, via } => {
                self.core.events_fired += 1;
                if pkt.dst == node {
                    self.core.trace(TraceOp::Deliver, None, Some(node), &pkt);
                    let agent = self
                        .core
                        .ports
                        .get(node.0 as usize)
                        .and_then(|t| t.get(usize::from(pkt.dst_port)))
                        .copied()
                        .filter(|&a| a != NO_AGENT);
                    match agent {
                        Some(agent) => {
                            self.core.delivered += 1;
                            self.with_agent(agent, |a, ctx| a.on_packet(pkt, ctx));
                        }
                        None => self.core.undeliverable += 1,
                    }
                } else {
                    self.core.forward(node, pkt, via);
                }
            }
            Event::Timer {
                agent,
                token,
                slot,
                gen,
                arm: _,
            } => {
                if self.core.timers.retire(slot, gen) {
                    self.core.events_fired += 1;
                    self.with_agent(agent, |a, ctx| a.on_timer(token, ctx));
                } else {
                    self.core.skipped_stale += 1;
                }
            }
            Event::FaultEdge { link, up, idx: _ } => {
                self.core.events_fired += 1;
                self.core.on_fault_edge(link, up);
            }
            Event::Pfc { link, xoff, seq: _ } => {
                self.core.events_fired += 1;
                self.core.on_pfc(link, xoff);
            }
            Event::PfcWatchdog { node, link, epoch } => {
                self.core.events_fired += 1;
                self.core.on_pfc_watchdog(node, link, epoch);
            }
        }
    }

    /// The budgeted pop loop: identical dispatch, plus limit checks after
    /// every event. Split from [`Simulator::pump`] so un-budgeted runs pay
    /// nothing — not even a per-pop branch beyond the one at pump entry.
    fn pump_budgeted(&mut self, upto: Time) {
        /// Wall-clock reads are amortized: one `Instant::now` per this
        /// many dispatched events.
        const WALL_CHECK_INTERVAL: u64 = 1024;
        if self.core.terminated.is_some() {
            return;
        }
        let budget = self.core.budget.unwrap_or_default();
        let upto = match budget.sim_cap() {
            Some(cap) => upto.min(cap),
            None => upto,
        };
        if budget.max_wall_ms.is_some() && self.core.wall_start.is_none() {
            self.core.wall_start = Some(Instant::now());
        }
        let mut since_check = 0u64;
        while let Some((at, event)) = self.core.queue.pop_if(upto) {
            self.core.now = at;
            self.dispatch(event);
            if let Some(max) = budget.max_events {
                if self.core.events_fired >= max {
                    self.core.terminated = Some(BudgetExceeded::Events);
                    return;
                }
            }
            if let Some(ms) = budget.max_wall_ms {
                since_check += 1;
                if since_check >= WALL_CHECK_INTERVAL {
                    since_check = 0;
                    let start = self.core.wall_start.expect("wall base set above");
                    if start.elapsed().as_millis() as u64 >= ms {
                        self.core.terminated = Some(BudgetExceeded::WallClock);
                        return;
                    }
                }
            }
        }
    }

    /// Advance the clock to the deadline so utilization denominators and
    /// occupancy integrals cover the full requested span.
    pub(crate) fn advance_clock(&mut self, deadline: Time) {
        if self.core.now < deadline && deadline != Time::MAX {
            self.core.now = deadline;
            for ls in &mut self.core.links {
                let bytes = ls.queue.len_bytes();
                ls.stats.advance_occupancy(deadline, bytes);
            }
        }
    }

    /// Run until the event queue drains or `deadline` passes, whichever is
    /// first. Returns the time the run stopped.
    ///
    /// With a [`RunBudget`] installed the run may also stop early; the
    /// reason is readable from [`Simulator::termination`] and the clock is
    /// only squared up over the span actually covered.
    pub fn run_until(&mut self, deadline: Time) -> Time {
        self.start_agents();
        self.pump(deadline);
        if self.core.budget.is_some() {
            return self.finish_budgeted(deadline);
        }
        self.advance_clock(deadline);
        self.core.now
    }

    /// Post-pump bookkeeping for budgeted runs: classify why the pump
    /// stopped and advance the clock only over the span it covered.
    fn finish_budgeted(&mut self, deadline: Time) -> Time {
        if self.core.terminated.is_some() {
            // Events / wall-clock: the run stops mid-flight; advancing the
            // clock further would count unsimulated span into occupancy
            // and utilization integrals.
            return self.core.now;
        }
        if let Some(cap) = self.core.budget.as_ref().and_then(|b| b.sim_cap()) {
            if cap < deadline {
                if self.next_event_time().is_some_and(|t| t <= deadline) {
                    // Events the caller asked for remain beyond the cap:
                    // the sim-time budget bound.
                    self.core.terminated = Some(BudgetExceeded::SimTime);
                }
                self.advance_clock(cap);
                return self.core.now;
            }
        }
        self.advance_clock(deadline);
        self.core.now
    }

    /// Install a resource [`RunBudget`] enforced from the next pump on.
    /// Installing the unlimited budget is equivalent to never calling
    /// this. Replaces any previously installed budget; the wall-clock
    /// watchdog base is the first budgeted pump after installation.
    pub fn set_budget(&mut self, budget: RunBudget) {
        self.core.budget = if budget.is_unlimited() {
            None
        } else {
            Some(budget)
        };
    }

    /// Why the run terminated early, if a [`RunBudget`] limit fired.
    /// `None` means no budget bound (the run completed or is still
    /// resumable).
    pub fn termination(&self) -> Option<BudgetExceeded> {
        self.core.terminated
    }

    /// Run until no events remain.
    pub fn run_to_completion(&mut self) -> Time {
        self.run_until(Time::MAX)
    }

    /// Timestamp of the earliest pending event (barrier-window voting).
    pub(crate) fn next_event_time(&self) -> Option<Time> {
        self.core.queue.next_time()
    }

    /// Drain this domain's cross-domain outbox (empty on serial cores).
    pub(crate) fn take_outbox(&mut self) -> Vec<Xmsg> {
        match self.core.par.as_deref_mut() {
            Some(p) => std::mem::take(&mut p.outbox),
            None => Vec::new(),
        }
    }

    /// Inject a cross-domain handoff received at a barrier. The message's
    /// arrival time is at least one lookahead past the window that
    /// produced it, so it is never in this domain's past.
    pub(crate) fn inject(&mut self, m: Xmsg) {
        match m.body {
            XmsgBody::Deliver { pkt, via } => self.core.schedule(
                m.at,
                Event::Deliver {
                    node: m.node,
                    pkt,
                    via,
                },
            ),
            XmsgBody::Pfc { link, xoff, seq } => {
                self.core.schedule(m.at, Event::Pfc { link, xoff, seq });
            }
        }
    }

    /// Lifetime count of deliveries exported across the partition cut.
    pub(crate) fn exported_count(&self) -> u64 {
        self.core.par.as_deref().map_or(0, |p| p.exported)
    }

    /// Register global agent id `id` on this domain simulator. Foreign
    /// agents (owned by another domain) pass `None`: the slot exists so
    /// ids stay globally aligned, but no port binding is created and the
    /// agent is never started or dispatched here.
    pub(crate) fn add_agent_slot(
        &mut self,
        id: AgentId,
        node: NodeId,
        port: u16,
        agent: Option<Box<dyn Agent>>,
    ) {
        assert!(!self.started, "cannot add agents after start");
        let idx = id.0 as usize;
        if self.agents.len() <= idx {
            self.agents.resize_with(idx + 1, || None);
            self.core.agent_nodes.resize(idx + 1, NodeId(u32::MAX));
        }
        assert!(self.agents[idx].is_none(), "agent slot {idx} already bound");
        self.core.agent_nodes[idx] = node;
        if agent.is_some() {
            let table = &mut self.core.ports[node.0 as usize];
            if table.len() <= usize::from(port) {
                table.resize(usize::from(port) + 1, NO_AGENT);
            }
            assert!(
                table[usize::from(port)] == NO_AGENT,
                "({node}, :{port}) already bound"
            );
            table[usize::from(port)] = id;
            self.agents[idx] = agent;
        }
    }
}

/// Where every packet the simulation ever created currently is.
///
/// Taken with [`Simulator::packet_census`]. A packet is *injected* when an
/// agent calls [`Ctx::send`] (or *duplicated* into existence by the fault
/// plane); from then on it is in exactly one terminal or transient state,
/// so [`PacketCensus::conserved`] must hold at every instant — it is the
/// engine's bookkeeping invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketCensus {
    /// Packets created via [`Ctx::send`].
    pub injected: u64,
    /// Packets consumed by a bound agent at their destination.
    pub delivered: u64,
    /// Packets dropped at link queues (summed over links).
    pub dropped: u64,
    /// Packets that hit a routing dead-end or an unbound port.
    pub undeliverable: u64,
    /// Packets corrupted in transit by the fault plane and discarded at
    /// the link egress, as a failed checksum would be.
    pub corrupted: u64,
    /// Extra packet copies created by fault-plane duplication; each one
    /// also shows up downstream as delivered/dropped/… like an injection.
    pub duplicated: u64,
    /// Packets destroyed by the fault plane: killed by a downed link
    /// (arriving, queued, or mid-serialization) or by random loss.
    pub blackholed: u64,
    /// Packets destroyed by PFC pause-storm watchdog drains (summed over
    /// switches) — a terminal state, like `dropped`.
    pub pfc_dropped: u64,
    /// Packets sitting in link queues right now.
    pub queued: u64,
    /// Packets serializing on a link or propagating toward a node
    /// (scheduled `TxEnd`/`Deliver` events).
    pub in_flight: u64,
    /// Informational (not a packet state): packets CE-marked by switch
    /// ECN on admission. A marked packet continues toward delivery.
    pub ecn_marked: u64,
    /// Informational (not a packet state): nanoseconds links spent
    /// PFC-paused, summed over links, open intervals included.
    pub paused_ns: u64,
}

impl PacketCensus {
    /// Injected packets not yet in a terminal state.
    pub fn outstanding(&self) -> u64 {
        self.queued + self.in_flight
    }

    /// The conservation invariant, extended for the fault plane and the
    /// backpressure plane:
    /// `injected + duplicated == delivered + dropped + undeliverable
    ///  + corrupted + blackholed + pfc_dropped + queued + in_flight`.
    ///
    /// Duplication mints a packet copy mid-network, so copies join the
    /// injected side of the ledger; watchdog drains (`pfc_dropped`) are
    /// a terminal state like queue drops. `ecn_marked` and `paused_ns`
    /// are informational and deliberately outside the identity — a
    /// marked packet is still in exactly one of the states above. With
    /// no impairments or switches installed every extension term is zero
    /// and this reduces to the original law.
    pub fn conserved(&self) -> bool {
        self.injected + self.duplicated
            == self.delivered
                + self.dropped
                + self.undeliverable
                + self.corrupted
                + self.blackholed
                + self.pfc_dropped
                + self.queued
                + self.in_flight
    }
}

/// How events moved through the tiered scheduler, from
/// [`Simulator::sched_stats`].
///
/// Like [`PacketCensus`] for packets, these counters obey a conservation
/// identity — every scheduled event is eventually fired or skipped, or is
/// still pending: see [`SchedStats::conserved`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Events ever pushed onto the queue.
    pub scheduled: u64,
    /// Events popped and dispatched.
    pub fired: u64,
    /// Timer events popped but discarded because their generation was
    /// stale (cancelled or superseded before firing).
    pub skipped_stale: u64,
    /// Successful [`Ctx::cancel_timer`] calls (each later surfaces as one
    /// `skipped_stale` pop).
    pub cancelled: u64,
    /// Events that took the far-future overflow heap at push time rather
    /// than the near-future calendar.
    pub overflowed: u64,
    /// High-water mark of pending events.
    pub peak_pending: u64,
    /// Events currently pending.
    pub pending: u64,
}

/// Resource budget for one run, enforced in the engine's pop loop (and,
/// for partitioned runs, at the parallel engine's barrier windows — see
/// `par.rs`). Every limit is optional; the default budget is unlimited
/// and an unlimited budget leaves the hot loop untouched, so runs
/// without a budget replay bit-for-bit against their historical digests.
///
/// A run that hits a limit stops *gracefully*: agents keep their state,
/// statistics and censuses stay conserved, and the caller reads the
/// reason from [`Simulator::termination`]. The first limit observed
/// wins.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunBudget {
    /// Stop after this many dispatched events (stale-timer skips do not
    /// count). Deterministic for a fixed engine configuration: the same
    /// run always terminates on the same event.
    #[serde(default)]
    pub max_events: Option<u64>,
    /// Cap the simulated span: the run never advances past
    /// `Time::ZERO + max_sim_time`, even if the caller's deadline is
    /// later. Deterministic, and — uniquely among the three limits —
    /// also invariant across domain counts in parallel runs.
    #[serde(default)]
    pub max_sim_time: Option<Dur>,
    /// Wall-clock watchdog, in milliseconds of host time since the first
    /// budgeted pump. Inherently nondeterministic (it measures the host,
    /// not the simulation); use it as a last-resort backstop against
    /// runaway scenarios, not as a reproducible limit.
    #[serde(default)]
    pub max_wall_ms: Option<u64>,
}

impl RunBudget {
    /// The budget that never binds (the default).
    pub const UNLIMITED: RunBudget = RunBudget {
        max_events: None,
        max_sim_time: None,
        max_wall_ms: None,
    };

    /// A budget limited only by dispatched-event count.
    pub fn events(max: u64) -> Self {
        RunBudget {
            max_events: Some(max),
            ..RunBudget::UNLIMITED
        }
    }

    /// A budget limited only by simulated time.
    pub fn sim_time(max: Dur) -> Self {
        RunBudget {
            max_sim_time: Some(max),
            ..RunBudget::UNLIMITED
        }
    }

    /// A budget limited only by host wall-clock time.
    pub fn wall_ms(max: u64) -> Self {
        RunBudget {
            max_wall_ms: Some(max),
            ..RunBudget::UNLIMITED
        }
    }

    /// Whether no limit is set (such a budget is never enforced).
    pub fn is_unlimited(&self) -> bool {
        self.max_events.is_none() && self.max_sim_time.is_none() && self.max_wall_ms.is_none()
    }

    /// The absolute sim-time ceiling, if a sim-time limit is set.
    pub(crate) fn sim_cap(&self) -> Option<Time> {
        self.max_sim_time.map(|d| Time::ZERO + d)
    }
}

/// Why a budgeted run terminated early (see [`RunBudget`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BudgetExceeded {
    /// [`RunBudget::max_events`] was reached.
    Events,
    /// [`RunBudget::max_sim_time`] was reached with events still pending
    /// inside the caller's deadline.
    SimTime,
    /// [`RunBudget::max_wall_ms`] elapsed on the host.
    WallClock,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BudgetExceeded::Events => "event budget exceeded",
            BudgetExceeded::SimTime => "sim-time budget exceeded",
            BudgetExceeded::WallClock => "wall-clock budget exceeded",
        })
    }
}

impl SchedStats {
    /// The scheduler's conservation invariant:
    /// `scheduled == fired + skipped_stale + pending`.
    pub fn conserved(&self) -> bool {
        self.scheduled == self.fired + self.skipped_stale + self.pending
    }
}

/// SplitMix64: a tiny, high-quality bit mixer used for deterministic
/// per-packet jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Convenience constructor for packets sent by agents (the engine fills in
/// `id`, `src`, and `sent_at`).
pub fn packet_to(dst: NodeId, dst_port: u16, src_port: u16, flow: FlowId, size: u32) -> Packet {
    Packet {
        id: 0,
        flow,
        src: NodeId(u32::MAX), // overwritten by Ctx::send
        dst,
        src_port,
        dst_port,
        seq: 0,
        ack: 0,
        flags: Flags::empty(),
        size,
        sent_at: Time::ZERO,
        echo: Time::ZERO,
        sack: SackBlocks::EMPTY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::Capacity;
    use crate::topology::TopologyBuilder;

    /// Sends `count` packets of `size` bytes to a peer, spaced by `gap`.
    struct Blaster {
        peer: NodeId,
        peer_port: u16,
        port: u16,
        count: u32,
        size: u32,
        gap: Dur,
        sent: u32,
    }

    impl Agent for Blaster {
        fn start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer_after(Dur::ZERO, 0);
        }
        fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
        fn on_timer(&mut self, _token: u64, ctx: &mut Ctx<'_>) {
            if self.sent < self.count {
                let mut p = packet_to(self.peer, self.peer_port, self.port, FlowId(1), self.size);
                p.seq = u64::from(self.sent);
                ctx.send(p);
                self.sent += 1;
                ctx.set_timer_after(self.gap, 0);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Records every packet it receives with its arrival time.
    #[derive(Default)]
    struct Sink {
        received: Vec<(u64, Time)>,
    }

    impl Agent for Sink {
        fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
            self.received.push((pkt.seq, ctx.now()));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn two_nodes(rate_bps: u64, delay: Dur, cap: Capacity) -> (Topology, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let a = b.add_node();
        let z = b.add_node();
        b.add_duplex(a, z, rate_bps, delay, cap);
        (b.build(), a, z)
    }

    #[test]
    fn single_packet_latency_is_tx_plus_prop() {
        // 1000-byte packet at 1 Mbit/s = 8 ms tx; +2 ms prop = 10 ms.
        let (t, a, z) = two_nodes(1_000_000, Dur::from_millis(2), Capacity::Packets(10));
        let mut sim = Simulator::new(t);
        sim.add_agent(
            a,
            1,
            Box::new(Blaster {
                peer: z,
                peer_port: 2,
                port: 1,
                count: 1,
                size: 1000,
                gap: Dur::from_secs(1),
                sent: 0,
            }),
        );
        let sink = sim.add_agent(z, 2, Box::<Sink>::default());
        sim.run_to_completion();
        let s = sim.agent_as::<Sink>(sink).unwrap();
        assert_eq!(s.received.len(), 1);
        assert_eq!(s.received[0].1, Time::from_millis(10));
    }

    #[test]
    fn back_to_back_packets_serialize() {
        // Two packets sent at t=0; the second must wait for the first's tx.
        let (t, a, z) = two_nodes(1_000_000, Dur::from_millis(2), Capacity::Packets(10));
        let mut sim = Simulator::new(t);
        sim.add_agent(
            a,
            1,
            Box::new(Blaster {
                peer: z,
                peer_port: 2,
                port: 1,
                count: 2,
                size: 1000,
                gap: Dur::ZERO,
                sent: 0,
            }),
        );
        let sink = sim.add_agent(z, 2, Box::<Sink>::default());
        sim.run_to_completion();
        let s = sim.agent_as::<Sink>(sink).unwrap();
        assert_eq!(s.received.len(), 2);
        assert_eq!(s.received[0].1, Time::from_millis(10));
        assert_eq!(s.received[1].1, Time::from_millis(18)); // +8 ms serialization
                                                            // FIFO order.
        assert_eq!(s.received[0].0, 0);
        assert_eq!(s.received[1].0, 1);
    }

    #[test]
    fn droptail_loses_overflow_and_counts_it() {
        // Queue capacity 2 packets; 5 packets arrive while the first
        // serializes (tx = 8 ms each, arrivals every 1 ms).
        let (t, a, z) = two_nodes(1_000_000, Dur::from_millis(1), Capacity::Packets(2));
        let mut sim = Simulator::new(t);
        sim.add_agent(
            a,
            1,
            Box::new(Blaster {
                peer: z,
                peer_port: 2,
                port: 1,
                count: 5,
                size: 1000,
                gap: Dur::from_millis(1),
                sent: 0,
            }),
        );
        let sink = sim.add_agent(z, 2, Box::<Sink>::default());
        sim.run_to_completion();
        let s = sim.agent_as::<Sink>(sink).unwrap();
        let link = crate::packet::LinkId(0);
        let stats = sim.link_stats(link);
        assert!(stats.dropped > 0, "expected drops, got none");
        assert_eq!(
            stats.enqueued + stats.dropped,
            5,
            "all offered packets accounted"
        );
        assert_eq!(s.received.len() as u64, stats.transmitted);
    }

    #[test]
    fn utilization_and_throughput_accounting() {
        let (t, a, z) = two_nodes(8_000_000, Dur::from_millis(1), Capacity::Packets(100));
        let mut sim = Simulator::new(t);
        // 100 packets of 1000 bytes = 800_000 bits = 0.1 s of tx at 8 Mbit/s.
        sim.add_agent(
            a,
            1,
            Box::new(Blaster {
                peer: z,
                peer_port: 2,
                port: 1,
                count: 100,
                size: 1000,
                gap: Dur::ZERO,
                sent: 0,
            }),
        );
        sim.add_agent(z, 2, Box::<Sink>::default());
        sim.run_until(Time::from_millis(200));
        let stats = sim.link_stats(crate::packet::LinkId(0));
        let elapsed = Dur::from_millis(200);
        assert!((stats.utilization(elapsed) - 0.5).abs() < 0.01);
        assert!((stats.throughput_bps(elapsed) - 4_000_000.0).abs() < 50_000.0);
        assert_eq!(stats.transmitted, 100);
    }

    #[test]
    fn undeliverable_packets_counted() {
        let (t, a, z) = two_nodes(1_000_000, Dur::from_millis(1), Capacity::Packets(10));
        let mut sim = Simulator::new(t);
        sim.add_agent(
            a,
            1,
            Box::new(Blaster {
                peer: z,
                peer_port: 99, // nothing bound on port 99
                port: 1,
                count: 3,
                size: 100,
                gap: Dur::ZERO,
                sent: 0,
            }),
        );
        sim.run_to_completion();
        assert_eq!(sim.undeliverable(), 3);
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn duplicate_binding_rejected() {
        let (t, a, _z) = two_nodes(1_000_000, Dur::from_millis(1), Capacity::Packets(1));
        let mut sim = Simulator::new(t);
        sim.add_agent(a, 1, Box::<Sink>::default());
        sim.add_agent(a, 1, Box::<Sink>::default());
    }

    #[test]
    fn run_until_stops_at_deadline_and_resumes() {
        let (t, a, z) = two_nodes(1_000_000, Dur::from_millis(2), Capacity::Packets(50));
        let mut sim = Simulator::new(t);
        sim.add_agent(
            a,
            1,
            Box::new(Blaster {
                peer: z,
                peer_port: 2,
                port: 1,
                count: 10,
                size: 1000,
                gap: Dur::from_millis(20),
                sent: 0,
            }),
        );
        let sink = sim.add_agent(z, 2, Box::<Sink>::default());
        sim.run_until(Time::from_millis(50));
        let got_midway = sim.agent_as::<Sink>(sink).unwrap().received.len();
        assert!(got_midway > 0 && got_midway < 10, "got {got_midway}");
        sim.run_to_completion();
        assert_eq!(sim.agent_as::<Sink>(sink).unwrap().received.len(), 10);
    }

    #[test]
    fn jitter_reorders_but_delivers_everything() {
        use crate::topology::LinkSpec;
        let mut b = TopologyBuilder::new();
        let a = b.add_node();
        let z = b.add_node();
        // Jitter (5 ms) far above the serialization gap (80 us): heavy
        // reordering is guaranteed, loss is impossible (huge queue).
        b.add_link(LinkSpec {
            jitter: Dur::from_millis(5),
            ..LinkSpec::new(
                a,
                z,
                100_000_000,
                Dur::from_millis(10),
                Capacity::Packets(10_000),
            )
        });
        b.add_link(LinkSpec::new(
            z,
            a,
            100_000_000,
            Dur::from_millis(10),
            Capacity::Packets(10_000),
        ));
        let mut sim = Simulator::new(b.build());
        sim.add_agent(
            a,
            1,
            Box::new(Blaster {
                peer: z,
                peer_port: 2,
                port: 1,
                count: 200,
                size: 1000,
                gap: Dur::from_micros(80),
                sent: 0,
            }),
        );
        let sink = sim.add_agent(z, 2, Box::<Sink>::default());
        sim.run_to_completion();
        let s = sim.agent_as::<Sink>(sink).unwrap();
        assert_eq!(s.received.len(), 200, "jitter must not lose packets");
        let inversions = s.received.windows(2).filter(|w| w[1].0 < w[0].0).count();
        assert!(
            inversions > 10,
            "expected reordering, got {inversions} inversions"
        );
        // Determinism: the same run reorders identically.
        let rerun = {
            let mut b = TopologyBuilder::new();
            let a = b.add_node();
            let z = b.add_node();
            b.add_link(LinkSpec {
                jitter: Dur::from_millis(5),
                ..LinkSpec::new(
                    a,
                    z,
                    100_000_000,
                    Dur::from_millis(10),
                    Capacity::Packets(10_000),
                )
            });
            b.add_link(LinkSpec::new(
                z,
                a,
                100_000_000,
                Dur::from_millis(10),
                Capacity::Packets(10_000),
            ));
            let mut sim2 = Simulator::new(b.build());
            sim2.add_agent(
                a,
                1,
                Box::new(Blaster {
                    peer: z,
                    peer_port: 2,
                    port: 1,
                    count: 200,
                    size: 1000,
                    gap: Dur::from_micros(80),
                    sent: 0,
                }),
            );
            let sink2 = sim2.add_agent(z, 2, Box::<Sink>::default());
            sim2.run_to_completion();
            sim2.agent_as::<Sink>(sink2).unwrap().received.clone()
        };
        assert_eq!(s.received, rerun);
    }

    #[test]
    fn custom_disciplines_installed_per_link() {
        use crate::queue::DisciplineSpec;
        let (t, a, z) = two_nodes(1_000_000, Dur::from_millis(1), Capacity::Packets(10));
        // RED with thresholds far below the load: early drops must occur
        // where plain drop-tail (capacity 10_000) would accept everything.
        // Routed through the same serializable DisciplineSpec the
        // parallel engine's factory consumes, so the exact queue built
        // here is also installable on partitioned runs.
        let mut sim = Simulator::with_disciplines(t, |id, spec| {
            if id.0 == 0 {
                DisciplineSpec::Red {
                    min_th: 2.0,
                    max_th: 6.0,
                    max_p: 1.0,
                }
                .build(Capacity::Packets(10_000))
            } else {
                DisciplineSpec::DropTail.build(spec.capacity)
            }
        });
        sim.add_agent(
            a,
            1,
            Box::new(Blaster {
                peer: z,
                peer_port: 2,
                port: 1,
                count: 500,
                size: 1000,
                gap: Dur::ZERO,
                sent: 0,
            }),
        );
        sim.add_agent(z, 2, Box::<Sink>::default());
        sim.run_to_completion();
        let stats = sim.link_stats(crate::packet::LinkId(0));
        assert!(stats.dropped > 0, "RED should have dropped early");
        assert!(stats.transmitted > 0);
    }

    #[test]
    fn tracer_sees_full_packet_lifecycle() {
        use crate::trace::{SharedTraceCollector, TraceOp};
        let (t, a, z) = two_nodes(1_000_000, Dur::from_millis(2), Capacity::Packets(2));
        let mut sim = Simulator::new(t);
        sim.add_agent(
            a,
            1,
            Box::new(Blaster {
                peer: z,
                peer_port: 2,
                port: 1,
                count: 6,
                size: 1000,
                gap: Dur::from_micros(100), // bursts into the 2-packet queue
                sent: 0,
            }),
        );
        sim.add_agent(z, 2, Box::<Sink>::default());
        let (tracer, events) = SharedTraceCollector::new();
        sim.set_tracer(tracer);
        sim.run_to_completion();
        let events = events.lock().unwrap();
        let count = |op: TraceOp| events.iter().filter(|e| e.op == op).count() as u64;
        let stats = sim.link_stats(crate::packet::LinkId(0));
        assert_eq!(count(TraceOp::Enqueue), stats.enqueued);
        assert_eq!(count(TraceOp::Drop), stats.dropped);
        assert_eq!(count(TraceOp::Transmit), stats.transmitted);
        assert!(count(TraceOp::Drop) > 0, "queue of 2 must drop under burst");
        assert_eq!(count(TraceOp::Deliver), stats.transmitted);
        // Trace is time-ordered.
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn census_conserves_packets_mid_run_and_at_completion() {
        // Tiny queue + fast arrivals: drops, queueing, and in-flight
        // packets all occur, so every census term is exercised.
        let (t, a, z) = two_nodes(1_000_000, Dur::from_millis(5), Capacity::Packets(3));
        let mut sim = Simulator::new(t);
        sim.add_agent(
            a,
            1,
            Box::new(Blaster {
                peer: z,
                peer_port: 2,
                port: 1,
                count: 50,
                size: 1000,
                gap: Dur::from_millis(1),
                sent: 0,
            }),
        );
        let sink = sim.add_agent(z, 2, Box::<Sink>::default());

        // Stop mid-stream: some packets must still be queued or in flight.
        sim.run_until(Time::from_millis(20));
        let mid = sim.packet_census();
        assert!(mid.conserved(), "mid-run census leaks packets: {mid:?}");
        assert!(
            mid.outstanding() > 0,
            "expected packets in transit: {mid:?}"
        );
        let mid_sched = sim.sched_stats();
        assert!(
            mid_sched.conserved(),
            "mid-run scheduler leaks events: {mid_sched:?}"
        );

        sim.run_to_completion();
        let end = sim.packet_census();
        assert!(end.conserved(), "final census leaks packets: {end:?}");
        let end_sched = sim.sched_stats();
        assert!(
            end_sched.conserved(),
            "final scheduler census leaks events: {end_sched:?}"
        );
        assert_eq!(end_sched.pending, 0, "events stuck after drain");
        assert_eq!(end.outstanding(), 0, "packets stuck after drain: {end:?}");
        assert_eq!(end.injected, 50);
        assert!(end.dropped > 0, "queue of 3 must drop under this burst");
        let received = sim.agent_as::<Sink>(sink).unwrap().received.len() as u64;
        assert_eq!(end.delivered, received);
        assert_eq!(end.delivered + end.dropped, 50);
    }

    #[test]
    fn census_counts_undeliverable_as_terminal() {
        let (t, a, z) = two_nodes(1_000_000, Dur::from_millis(1), Capacity::Packets(10));
        let mut sim = Simulator::new(t);
        sim.add_agent(
            a,
            1,
            Box::new(Blaster {
                peer: z,
                peer_port: 99, // nothing bound on port 99
                port: 1,
                count: 3,
                size: 100,
                gap: Dur::ZERO,
                sent: 0,
            }),
        );
        sim.run_to_completion();
        let c = sim.packet_census();
        assert!(c.conserved(), "{c:?}");
        assert_eq!(c.undeliverable, 3);
        assert_eq!(c.delivered, 0);
        assert_eq!(c.outstanding(), 0);
    }

    #[test]
    fn recycled_scheduler_carcasses_do_not_change_results() {
        // Back-to-back simulators on one thread hit the scheduler pool;
        // the second run must start from a logically fresh queue (empty,
        // sequence numbers and timer generations reset).
        let run = || {
            let (t, a, z) = two_nodes(2_000_000, Dur::from_millis(2), Capacity::Packets(5));
            let mut sim = Simulator::new(t);
            sim.add_agent(
                a,
                1,
                Box::new(Blaster {
                    peer: z,
                    peer_port: 2,
                    port: 1,
                    count: 80,
                    size: 900,
                    gap: Dur::from_micros(500),
                    sent: 0,
                }),
            );
            sim.add_agent(z, 2, Box::<Sink>::default());
            sim.run_to_completion();
            (sim.events_processed(), sim.packet_census())
        };
        let first = run();
        for _ in 0..4 {
            assert_eq!(run(), first);
        }
    }

    /// Arms a timer far out, then cancels and re-arms it on each of a
    /// series of tick timers — the re-arm pattern the TCP sender uses for
    /// its RTO.
    struct Canceller {
        ticks: u32,
        armed: Option<TimerHandle>,
        long_fired: u32,
        cancels_ok: u32,
    }

    impl Agent for Canceller {
        fn start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer_after(Dur::from_millis(1), 0);
        }
        fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
        fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
            match token {
                0 => {
                    if let Some(h) = self.armed.take() {
                        if ctx.cancel_timer(h) {
                            self.cancels_ok += 1;
                        }
                    }
                    self.armed = Some(ctx.set_timer_after(Dur::from_secs(5), 1));
                    if self.ticks > 0 {
                        self.ticks -= 1;
                        ctx.set_timer_after(Dur::from_millis(1), 0);
                    }
                }
                1 => self.long_fired += 1,
                _ => unreachable!(),
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn cancelled_timers_skip_without_dispatch() {
        let (t, a, _z) = two_nodes(1_000_000, Dur::from_millis(1), Capacity::Packets(1));
        let mut sim = Simulator::new(t);
        let id = sim.add_agent(
            a,
            1,
            Box::new(Canceller {
                ticks: 9,
                armed: None,
                long_fired: 0,
                cancels_ok: 0,
            }),
        );
        sim.run_to_completion();
        let agent = sim.agent_as::<Canceller>(id).unwrap();
        // 10 arms, 9 cancelled by the next tick, the last one fires.
        assert_eq!(agent.cancels_ok, 9);
        assert_eq!(agent.long_fired, 1);
        let s = sim.sched_stats();
        assert!(s.conserved(), "{s:?}");
        assert_eq!(s.cancelled, 9);
        assert_eq!(s.skipped_stale, 9);
        // 10 ticks + 10 long arms, minus the 9 cancelled pops.
        assert_eq!(s.fired, 11);
        // The 5-second arms sit far beyond the calendar horizon.
        assert!(s.overflowed >= 10, "{s:?}");
    }

    #[test]
    fn deterministic_event_counts() {
        let run = || {
            let (t, a, z) = two_nodes(5_000_000, Dur::from_millis(3), Capacity::Packets(7));
            let mut sim = Simulator::new(t);
            sim.add_agent(
                a,
                1,
                Box::new(Blaster {
                    peer: z,
                    peer_port: 2,
                    port: 1,
                    count: 200,
                    size: 700,
                    gap: Dur::from_micros(300),
                    sent: 0,
                }),
            );
            sim.add_agent(z, 2, Box::<Sink>::default());
            sim.run_to_completion();
            (
                sim.events_processed(),
                sim.link_stats(crate::packet::LinkId(0)).dropped,
            )
        };
        assert_eq!(run(), run());
    }

    fn blast_sim(count: u32) -> Simulator {
        let (t, a, z) = two_nodes(5_000_000, Dur::from_millis(3), Capacity::Packets(7));
        let mut sim = Simulator::new(t);
        sim.add_agent(
            a,
            1,
            Box::new(Blaster {
                peer: z,
                peer_port: 2,
                port: 1,
                count,
                size: 700,
                gap: Dur::from_micros(300),
                sent: 0,
            }),
        );
        sim.add_agent(z, 2, Box::<Sink>::default());
        sim
    }

    #[test]
    fn event_budget_terminates_gracefully_and_conserves() {
        let mut sim = blast_sim(200);
        sim.set_budget(RunBudget::events(50));
        sim.run_to_completion();
        assert_eq!(sim.termination(), Some(BudgetExceeded::Events));
        assert_eq!(sim.events_processed(), 50);
        // Graceful stop: every ledger still balances mid-flight.
        assert!(sim.packet_census().conserved());
        assert!(sim.sched_stats().conserved());
        // Termination is sticky: further pumping is a no-op.
        let t = sim.now();
        sim.run_to_completion();
        assert_eq!(sim.events_processed(), 50);
        assert_eq!(sim.now(), t);
    }

    #[test]
    fn event_budget_is_deterministic() {
        let run = || {
            let mut sim = blast_sim(200);
            sim.set_budget(RunBudget::events(77));
            sim.run_to_completion();
            (sim.now(), sim.events_processed(), sim.packet_census())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sim_time_budget_caps_the_clock() {
        let mut sim = blast_sim(200);
        sim.set_budget(RunBudget::sim_time(Dur::from_millis(10)));
        let end = sim.run_until(Time::from_secs(5));
        assert_eq!(end, Time::from_millis(10));
        assert_eq!(sim.termination(), Some(BudgetExceeded::SimTime));
        assert!(sim.packet_census().conserved());
    }

    #[test]
    fn sim_time_budget_beyond_the_run_never_fires() {
        // The workload drains long before the cap: no termination, and
        // the result matches the un-budgeted run exactly.
        let mut plain = blast_sim(20);
        plain.run_until(Time::from_secs(2));
        let mut capped = blast_sim(20);
        capped.set_budget(RunBudget::sim_time(Dur::from_secs(60)));
        capped.run_until(Time::from_secs(2));
        assert_eq!(capped.termination(), None);
        assert_eq!(capped.events_processed(), plain.events_processed());
        assert_eq!(capped.now(), plain.now());
    }

    #[test]
    fn unlimited_budget_is_inert() {
        let mut plain = blast_sim(50);
        plain.run_to_completion();
        let mut budgeted = blast_sim(50);
        budgeted.set_budget(RunBudget::UNLIMITED);
        budgeted.run_to_completion();
        assert_eq!(budgeted.termination(), None);
        assert_eq!(budgeted.events_processed(), plain.events_processed());
        assert_eq!(budgeted.now(), plain.now());
    }

    #[test]
    fn wall_clock_budget_eventually_stops_a_runaway() {
        // A self-perpetuating timer ping-pong never drains its queue; the
        // watchdog is the only thing that can stop it.
        struct Forever;
        impl Agent for Forever {
            fn start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer_after(Dur::ZERO, 0);
            }
            fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
            fn on_timer(&mut self, _token: u64, ctx: &mut Ctx<'_>) {
                ctx.set_timer_after(Dur::from_nanos(1), 0);
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let (t, a, _z) = two_nodes(1_000_000, Dur::from_millis(1), Capacity::Packets(4));
        let mut sim = Simulator::new(t);
        sim.add_agent(a, 1, Box::new(Forever));
        sim.set_budget(RunBudget::wall_ms(10));
        sim.run_to_completion();
        assert_eq!(sim.termination(), Some(BudgetExceeded::WallClock));
        assert!(sim.events_processed() > 0);
    }
}
