//! Topology description and static routing.
//!
//! A topology is a directed graph of nodes and unidirectional links. Routes
//! are computed once, up front, as shortest paths by hop count (BFS per
//! destination) — the experiments in the paper all run on static topologies
//! where hop-count shortest paths are unique by construction.
//!
//! [`dumbbell`] builds the Figure 1 topology: N sender hosts and N receiver
//! hosts joined by a single bottleneck link whose buffer defaults to five
//! times the bandwidth-delay product, exactly as the paper configures ns-2.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::packet::{LinkId, NodeId};
use crate::queue::Capacity;
use crate::time::Dur;

/// Static description of one unidirectional link.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Node the link transmits from.
    pub from: NodeId,
    /// Node the link delivers to.
    pub to: NodeId,
    /// Transmission rate in bits per second.
    pub rate_bps: u64,
    /// One-way propagation delay.
    pub delay: Dur,
    /// Queue capacity at the head of the link.
    pub capacity: Capacity,
    /// Maximum extra per-packet delay jitter. Each delivered packet gets a
    /// deterministic pseudo-random extra delay in `[0, jitter)` derived by
    /// hashing its packet id, so jittered runs stay reproducible. Non-zero
    /// jitter reorders packets (used by the §3.2 dup-ACK experiments).
    pub jitter: Dur,
}

impl LinkSpec {
    /// A link spec with no jitter.
    pub fn new(from: NodeId, to: NodeId, rate_bps: u64, delay: Dur, capacity: Capacity) -> Self {
        LinkSpec {
            from,
            to,
            rate_bps,
            delay,
            capacity,
            jitter: Dur::ZERO,
        }
    }
}

/// An immutable network topology with precomputed next-hop routes.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: usize,
    links: Vec<LinkSpec>,
    /// `routes[at * nodes + dst]` = link to take at node `at` toward `dst`.
    routes: Vec<Option<LinkId>>,
}

/// Incrementally builds a [`Topology`].
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    nodes: usize,
    links: Vec<LinkSpec>,
}

impl TopologyBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node and return its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.nodes as u32);
        self.nodes += 1;
        id
    }

    /// Add a unidirectional link and return its id.
    pub fn add_link(&mut self, spec: LinkSpec) -> LinkId {
        assert!(
            (spec.from.0 as usize) < self.nodes && (spec.to.0 as usize) < self.nodes,
            "link endpoints must be existing nodes"
        );
        assert_ne!(spec.from, spec.to, "self-loops are not allowed");
        let id = LinkId(self.links.len() as u32);
        self.links.push(spec);
        id
    }

    /// Add a symmetric pair of links between `a` and `b`.
    ///
    /// Returns `(a→b, b→a)`.
    pub fn add_duplex(
        &mut self,
        a: NodeId,
        b: NodeId,
        rate_bps: u64,
        delay: Dur,
        capacity: Capacity,
    ) -> (LinkId, LinkId) {
        let fwd = self.add_link(LinkSpec::new(a, b, rate_bps, delay, capacity));
        let rev = self.add_link(LinkSpec::new(b, a, rate_bps, delay, capacity));
        (fwd, rev)
    }

    /// Compute routes and freeze the topology.
    ///
    /// # Panics
    /// Panics if the graph is disconnected when treated as directed — every
    /// node must be able to reach every other node, since the experiments
    /// assume full reachability.
    pub fn build(self) -> Topology {
        let nodes = self.nodes;
        let mut routes = vec![None; nodes * nodes];

        // Outgoing adjacency: for each node, links departing it.
        let mut out: Vec<Vec<(LinkId, NodeId)>> = vec![Vec::new(); nodes];
        for (idx, l) in self.links.iter().enumerate() {
            out[l.from.0 as usize].push((LinkId(idx as u32), l.to));
        }

        // BFS backwards from each destination over the reversed graph gives
        // shortest-path next hops. Equivalent and simpler: BFS forward from
        // every source. Node counts here are tiny (dumbbells), so O(V·E) is
        // more than fine.
        for src in 0..nodes {
            let mut dist = vec![usize::MAX; nodes];
            let mut first_link: Vec<Option<LinkId>> = vec![None; nodes];
            dist[src] = 0;
            let mut q = VecDeque::new();
            q.push_back(src);
            while let Some(at) = q.pop_front() {
                for &(lid, next) in &out[at] {
                    let n = next.0 as usize;
                    if dist[n] == usize::MAX {
                        dist[n] = dist[at] + 1;
                        first_link[n] = if at == src { Some(lid) } else { first_link[at] };
                        q.push_back(n);
                    }
                }
            }
            for dst in 0..nodes {
                if dst == src {
                    continue;
                }
                assert!(
                    dist[dst] != usize::MAX,
                    "node n{dst} unreachable from n{src}; topology must be strongly connected"
                );
                routes[src * nodes + dst] = first_link[dst];
            }
        }

        Topology {
            nodes,
            links: self.links,
            routes,
        }
    }
}

impl Topology {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The spec of a link.
    pub fn link(&self, id: LinkId) -> &LinkSpec {
        &self.links[id.0 as usize]
    }

    /// All link specs, indexed by `LinkId`.
    pub fn links(&self) -> &[LinkSpec] {
        &self.links
    }

    /// The link a packet at `at` destined for `dst` should take.
    pub fn next_hop(&self, at: NodeId, dst: NodeId) -> Option<LinkId> {
        if at == dst {
            return None;
        }
        self.routes[at.0 as usize * self.nodes + dst.0 as usize]
    }
}

/// Parameters for the Figure 1 dumbbell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DumbbellSpec {
    /// Number of sender/receiver host pairs.
    pub pairs: usize,
    /// Bottleneck rate, bits per second.
    pub bottleneck_bps: u64,
    /// End-to-end base (unloaded) round-trip time.
    pub rtt: Dur,
    /// Bottleneck buffer as a multiple of the bandwidth-delay product.
    pub buffer_bdp_multiple: f64,
    /// Access link rate, bits per second.
    pub access_bps: u64,
}

impl DumbbellSpec {
    /// The paper's Table 3 topology: 15 Mbit/s bottleneck, 150 ms RTT,
    /// buffer = 5 × BDP, 1 Gbit/s access links.
    pub fn paper(pairs: usize) -> Self {
        DumbbellSpec {
            pairs,
            bottleneck_bps: 15_000_000,
            rtt: Dur::from_millis(150),
            buffer_bdp_multiple: 5.0,
            access_bps: 1_000_000_000,
        }
    }

    /// Bandwidth-delay product of the bottleneck in bytes.
    pub fn bdp_bytes(&self) -> u64 {
        (self.bottleneck_bps as f64 * self.rtt.as_secs_f64() / 8.0) as u64
    }
}

/// A built dumbbell: the topology plus the ids experiments need.
#[derive(Debug, Clone)]
pub struct Dumbbell {
    /// The network graph.
    pub topology: Topology,
    /// Host nodes on the sending side, one per pair.
    pub senders: Vec<NodeId>,
    /// Host nodes on the receiving side, one per pair.
    pub receivers: Vec<NodeId>,
    /// Left aggregation router.
    pub left_router: NodeId,
    /// Right aggregation router.
    pub right_router: NodeId,
    /// The bottleneck link (left router → right router).
    pub bottleneck: LinkId,
    /// The reverse-path link (right router → left router), carrying ACKs.
    pub reverse: LinkId,
}

/// Build the paper's dumbbell (Figure 1).
///
/// Per-pair access links run at `spec.access_bps` with negligible delay;
/// the base RTT is carried almost entirely by the bottleneck pair so that
/// `spec.rtt` is the unloaded round-trip between any sender/receiver pair.
/// The bottleneck buffer holds `buffer_bdp_multiple × BDP` bytes (Figure 1
/// uses 5×); access queues are deep enough never to drop.
pub fn dumbbell(spec: &DumbbellSpec) -> Dumbbell {
    assert!(spec.pairs > 0, "dumbbell needs at least one pair");
    let mut b = TopologyBuilder::new();

    let left_router = b.add_node();
    let right_router = b.add_node();

    // Tiny access delay, accounted for in the bottleneck delay below.
    let access_delay = Dur::from_micros(10);
    let one_way = spec.rtt / 2;
    let backbone_delay = one_way.saturating_sub(access_delay * 2);

    let buffer_bytes =
        ((spec.bdp_bytes() as f64) * spec.buffer_bdp_multiple).max(2.0 * 1500.0) as u64;
    let (bottleneck, reverse) = b.add_duplex(
        left_router,
        right_router,
        spec.bottleneck_bps,
        backbone_delay,
        Capacity::Bytes(buffer_bytes),
    );

    // Access queues: effectively unbounded (hosts pace themselves; losses
    // must happen at the bottleneck, as in the ns-2 setup).
    let access_cap = Capacity::Packets(1_000_000);
    let mut senders = Vec::with_capacity(spec.pairs);
    let mut receivers = Vec::with_capacity(spec.pairs);
    for _ in 0..spec.pairs {
        let s = b.add_node();
        let r = b.add_node();
        b.add_duplex(s, left_router, spec.access_bps, access_delay, access_cap);
        b.add_duplex(right_router, r, spec.access_bps, access_delay, access_cap);
        senders.push(s);
        receivers.push(r);
    }

    Dumbbell {
        topology: b.build(),
        senders,
        receivers,
        left_router,
        right_router,
        bottleneck,
        reverse,
    }
}

/// Parameters for a "parking lot" chain: R0 — R1 — … — Rn with hosts on
/// each router, the classic multi-bottleneck benchmark topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParkingLotSpec {
    /// Number of backbone links (routers = hops + 1).
    pub hops: usize,
    /// Rate of every backbone link, bits per second.
    pub backbone_bps: u64,
    /// One-way propagation delay per backbone link.
    pub hop_delay: Dur,
    /// Backbone queue capacity per link.
    pub capacity: Capacity,
    /// Access link rate, bits per second.
    pub access_bps: u64,
}

/// A built parking lot.
#[derive(Debug, Clone)]
pub struct ParkingLot {
    /// The network graph.
    pub topology: Topology,
    /// The backbone routers, in chain order.
    pub routers: Vec<NodeId>,
    /// Forward backbone links (`routers[i] → routers[i+1]`).
    pub backbone: Vec<LinkId>,
    /// End-to-end host pair: (source at router 0, sink at the last router).
    pub long_path: (NodeId, NodeId),
    /// Per-hop cross-traffic host pairs: `cross[i]` spans backbone link `i`.
    pub cross: Vec<(NodeId, NodeId)>,
}

/// Build a parking lot: one host pair spanning the whole chain plus one
/// single-hop cross-traffic pair per backbone link.
pub fn parking_lot(spec: &ParkingLotSpec) -> ParkingLot {
    assert!(spec.hops >= 2, "a parking lot needs at least two hops");
    let mut b = TopologyBuilder::new();
    let routers: Vec<NodeId> = (0..=spec.hops).map(|_| b.add_node()).collect();
    let mut backbone = Vec::with_capacity(spec.hops);
    for w in routers.windows(2) {
        let (fwd, _rev) =
            b.add_duplex(w[0], w[1], spec.backbone_bps, spec.hop_delay, spec.capacity);
        backbone.push(fwd);
    }
    let access_cap = Capacity::Packets(1_000_000);
    let access_delay = Dur::from_micros(100);
    let host = |b: &mut TopologyBuilder, r: NodeId| {
        let h = b.add_node();
        b.add_duplex(h, r, spec.access_bps, access_delay, access_cap);
        h
    };
    let long_src = host(&mut b, routers[0]);
    let long_dst = host(&mut b, routers[spec.hops]);
    let cross: Vec<(NodeId, NodeId)> = (0..spec.hops)
        .map(|i| {
            let s = host(&mut b, routers[i]);
            let d = host(&mut b, routers[i + 1]);
            (s, d)
        })
        .collect();
    ParkingLot {
        topology: b.build(),
        routers,
        backbone,
        long_path: (long_src, long_dst),
        cross,
    }
}

/// A stable assignment of nodes to `domains` simulation domains, plus the
/// cut statistics the conservative parallel engine synchronizes on.
///
/// Computed by [`Partition::compute`] from the topology alone — no seeds,
/// no RNG, no hash-map iteration — so the same topology always partitions
/// the same way on every machine and for every run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Number of domains actually produced (≤ the requested count when
    /// the topology has fewer mergeable atoms than domains asked for).
    pub domains: u32,
    /// Owning domain of each node, indexed by node id. Labels are dense
    /// (`0..domains`) and ordered by each domain's minimum node id.
    pub node_domain: Vec<u32>,
    /// Minimum propagation delay over all cut (cross-domain) links: the
    /// barrier-window width. Safety: a packet crossing the cut at time
    /// `t` arrives no earlier than `t + lookahead`, so a domain that has
    /// processed window `[W, W + lookahead)` has already seen every
    /// message that could land in it. [`Dur::MAX`] when nothing is cut.
    pub lookahead: Dur,
    /// Links whose endpoints live in different domains.
    pub cut_links: usize,
    /// All links, for computing the cross-traffic fraction.
    pub total_links: usize,
}

/// Union-find over node ids with path halving; merge order is driven
/// only by sorted link data, so the result is deterministic.
struct DisjointSets {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl DisjointSets {
    fn new(n: usize) -> Self {
        DisjointSets {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns false if already joined.
    fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        // Deterministic orientation: the smaller root id wins, so the
        // representative of a set is always its minimum-rooted member.
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[hi as usize] = lo;
        self.size[lo as usize] += self.size[hi as usize];
        true
    }
}

impl Partition {
    /// Partition `topology` into (at most) `k` domains.
    ///
    /// The heuristic is a capacity-capped Kruskal pass: links are merged
    /// in ascending `(delay, link id)` order — gluing tightly coupled
    /// (low-delay) nodes into the same domain so the *cut* falls across
    /// the highest-delay links, which maximizes the lookahead — subject
    /// to a `ceil(n / k)` domain-size cap that keeps domains balanced.
    /// Zero-delay links are pre-merged unconditionally (a zero-delay cut
    /// would make the lookahead zero and serialize the whole run). If the
    /// cap strands more than `k` components, the smallest are folded into
    /// their cheapest neighbor until `k` remain.
    pub fn compute(topology: &Topology, k: u32) -> Partition {
        let n = topology.node_count();
        let total_links = topology.link_count();
        let k = k.clamp(1, n.max(1) as u32);
        let mut sets = DisjointSets::new(n);
        let mut components = n as u32;

        // Zero-delay links must never be cut.
        for spec in topology.links() {
            if spec.delay.is_zero() && sets.union(spec.from.0, spec.to.0) {
                components -= 1;
            }
        }

        if components > k {
            let cap = n.div_ceil(k as usize) as u32;
            let mut order: Vec<u32> = (0..total_links as u32).collect();
            order.sort_by_key(|&l| (topology.link(LinkId(l)).delay, l));
            for &l in &order {
                if components == k {
                    break;
                }
                let spec = topology.link(LinkId(l));
                let (ra, rb) = (sets.find(spec.from.0), sets.find(spec.to.0));
                if ra != rb && sets.size[ra as usize] + sets.size[rb as usize] <= cap {
                    sets.union(ra, rb);
                    components -= 1;
                }
            }
            // The cap can strand small components; fold the smallest into
            // whichever neighbor the cheapest connecting link reaches.
            while components > k {
                let mut roots: Vec<u32> = (0..n as u32).filter(|&x| sets.find(x) == x).collect();
                roots.sort_by_key(|&r| (sets.size[r as usize], r));
                let victim = roots[0];
                let mut best: Option<(Dur, u32, u32)> = None;
                for l in 0..total_links as u32 {
                    let spec = topology.link(LinkId(l));
                    let (ra, rb) = (sets.find(spec.from.0), sets.find(spec.to.0));
                    let other = match (ra == victim, rb == victim) {
                        (true, false) => rb,
                        (false, true) => ra,
                        _ => continue,
                    };
                    let cand = (spec.delay, l, other);
                    best = Some(best.map_or(cand, |b| b.min(cand)));
                }
                let (_, _, other) = best.expect("builder guarantees a connected topology");
                sets.union(victim, other);
                components -= 1;
            }
        }

        // Dense relabeling ordered by minimum node id, so labels do not
        // depend on union-find internals.
        let mut node_domain = vec![u32::MAX; n];
        let mut next = 0u32;
        let mut label_of_root = vec![u32::MAX; n];
        for node in 0..n as u32 {
            let root = sets.find(node) as usize;
            if label_of_root[root] == u32::MAX {
                label_of_root[root] = next;
                next += 1;
            }
            node_domain[node as usize] = label_of_root[root];
        }

        let mut cut_links = 0usize;
        let mut lookahead = Dur::MAX;
        for spec in topology.links() {
            if node_domain[spec.from.0 as usize] != node_domain[spec.to.0 as usize] {
                cut_links += 1;
                lookahead = lookahead.min(spec.delay);
            }
        }
        Partition {
            domains: next,
            node_domain,
            lookahead,
            cut_links,
            total_links,
        }
    }

    /// Owning domain of `node`.
    pub fn domain_of(&self, node: NodeId) -> u32 {
        self.node_domain[node.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line3() -> (Topology, [NodeId; 3]) {
        let mut b = TopologyBuilder::new();
        let a = b.add_node();
        let m = b.add_node();
        let c = b.add_node();
        let cap = Capacity::Packets(10);
        b.add_duplex(a, m, 1_000_000, Dur::from_millis(1), cap);
        b.add_duplex(m, c, 1_000_000, Dur::from_millis(1), cap);
        (b.build(), [a, m, c])
    }

    #[test]
    fn routes_follow_shortest_path() {
        let (t, [a, m, c]) = line3();
        // a -> c goes via the a->m link first.
        let l1 = t.next_hop(a, c).unwrap();
        assert_eq!(t.link(l1).from, a);
        assert_eq!(t.link(l1).to, m);
        // Then m -> c.
        let l2 = t.next_hop(m, c).unwrap();
        assert_eq!(t.link(l2).to, c);
        // No next hop at the destination itself.
        assert_eq!(t.next_hop(c, c), None);
    }

    #[test]
    fn routes_are_symmetric_on_duplex_line() {
        let (t, [a, _m, c]) = line3();
        let fwd = t.next_hop(a, c).unwrap();
        let rev = t.next_hop(c, a).unwrap();
        assert_eq!(t.link(fwd).from, a);
        assert_eq!(t.link(rev).from, c);
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn disconnected_graph_rejected() {
        let mut b = TopologyBuilder::new();
        let a = b.add_node();
        let x = b.add_node();
        let y = b.add_node();
        // Only x <-> y are connected; `a` is isolated.
        b.add_duplex(x, y, 1_000, Dur::ZERO, Capacity::Packets(1));
        let _ = a;
        b.build();
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let mut b = TopologyBuilder::new();
        let a = b.add_node();
        b.add_link(LinkSpec::new(a, a, 1, Dur::ZERO, Capacity::Packets(1)));
    }

    #[test]
    fn dumbbell_shape() {
        let spec = DumbbellSpec::paper(4);
        let d = dumbbell(&spec);
        assert_eq!(d.senders.len(), 4);
        assert_eq!(d.receivers.len(), 4);
        // 2 routers + 8 hosts.
        assert_eq!(d.topology.node_count(), 10);
        // 1 duplex backbone + 8 duplex access = 18 unidirectional links.
        assert_eq!(d.topology.link_count(), 18);

        // Every sender routes to every receiver over the bottleneck.
        for &s in &d.senders {
            for &r in &d.receivers {
                let l = d.topology.next_hop(s, r).unwrap();
                assert_eq!(d.topology.link(l).to, d.left_router);
                let l2 = d.topology.next_hop(d.left_router, r).unwrap();
                assert_eq!(l2, d.bottleneck);
            }
        }
        // ACK path uses the reverse link.
        let back = d.topology.next_hop(d.right_router, d.senders[0]).unwrap();
        assert_eq!(back, d.reverse);
    }

    #[test]
    fn dumbbell_buffer_is_bdp_multiple() {
        let spec = DumbbellSpec::paper(2);
        let d = dumbbell(&spec);
        let bdp = spec.bdp_bytes();
        // 15 Mbit/s * 0.150 s / 8 = 281_250 bytes.
        assert_eq!(bdp, 281_250);
        match d.topology.link(d.bottleneck).capacity {
            Capacity::Bytes(b) => assert_eq!(b, (bdp as f64 * 5.0) as u64),
            _ => panic!("bottleneck must be byte-limited"),
        }
    }

    #[test]
    fn parking_lot_routes_span_the_chain() {
        let spec = ParkingLotSpec {
            hops: 3,
            backbone_bps: 10_000_000,
            hop_delay: Dur::from_millis(10),
            capacity: Capacity::Packets(100),
            access_bps: 1_000_000_000,
        };
        let lot = parking_lot(&spec);
        assert_eq!(lot.routers.len(), 4);
        assert_eq!(lot.backbone.len(), 3);
        assert_eq!(lot.cross.len(), 3);
        // The long path's first backbone hop is backbone[0], then [1], [2].
        let (src, dst) = lot.long_path;
        let mut at = src;
        let mut backbone_hops = Vec::new();
        while at != dst {
            let l = lot.topology.next_hop(at, dst).expect("route");
            if lot.backbone.contains(&l) {
                backbone_hops.push(l);
            }
            at = lot.topology.link(l).to;
        }
        assert_eq!(backbone_hops, lot.backbone);
        // Cross pair i crosses exactly backbone link i.
        for (i, &(s, d)) in lot.cross.iter().enumerate() {
            let mut at = s;
            let mut crossed = Vec::new();
            while at != d {
                let l = lot.topology.next_hop(at, d).expect("route");
                if lot.backbone.contains(&l) {
                    crossed.push(l);
                }
                at = lot.topology.link(l).to;
            }
            assert_eq!(crossed, vec![lot.backbone[i]]);
        }
    }

    #[test]
    #[should_panic(expected = "at least two hops")]
    fn parking_lot_needs_hops() {
        parking_lot(&ParkingLotSpec {
            hops: 1,
            backbone_bps: 1,
            hop_delay: Dur::ZERO,
            capacity: Capacity::Packets(1),
            access_bps: 1,
        });
    }

    #[test]
    fn dumbbell_base_rtt_is_spec_rtt() {
        let spec = DumbbellSpec::paper(1);
        let d = dumbbell(&spec);
        // Sum of propagation delays sender->receiver->sender.
        let mut total = Dur::ZERO;
        let path = [
            d.topology.next_hop(d.senders[0], d.receivers[0]).unwrap(),
            d.topology.next_hop(d.left_router, d.receivers[0]).unwrap(),
            d.topology.next_hop(d.right_router, d.receivers[0]).unwrap(),
            d.topology.next_hop(d.receivers[0], d.senders[0]).unwrap(),
            d.topology.next_hop(d.right_router, d.senders[0]).unwrap(),
            d.topology.next_hop(d.left_router, d.senders[0]).unwrap(),
        ];
        for l in path {
            total += d.topology.link(l).delay;
        }
        assert_eq!(total, spec.rtt);
    }

    fn lot(hops: usize) -> ParkingLot {
        parking_lot(&ParkingLotSpec {
            hops,
            backbone_bps: 10_000_000,
            hop_delay: Dur::from_millis(5),
            capacity: Capacity::Packets(50),
            access_bps: 100_000_000,
        })
    }

    #[test]
    fn partition_k1_is_one_domain() {
        let d = dumbbell(&DumbbellSpec::paper(3));
        let p = Partition::compute(&d.topology, 1);
        assert_eq!(p.domains, 1);
        assert!(p.node_domain.iter().all(|&d| d == 0));
        assert_eq!(p.cut_links, 0);
        assert_eq!(p.lookahead, Dur::MAX);
    }

    #[test]
    fn partition_dumbbell_cuts_backbone() {
        let d = dumbbell(&DumbbellSpec::paper(3));
        let p = Partition::compute(&d.topology, 2);
        assert_eq!(p.domains, 2);
        // The two routers end up on opposite sides, each with its hosts.
        assert_ne!(p.domain_of(d.left_router), p.domain_of(d.right_router));
        for (&s, &r) in d.senders.iter().zip(&d.receivers) {
            assert_eq!(p.domain_of(s), p.domain_of(d.left_router));
            assert_eq!(p.domain_of(r), p.domain_of(d.right_router));
        }
        // Only the duplex backbone pair crosses the cut, so the lookahead
        // is the full backbone propagation delay.
        assert_eq!(p.cut_links, 2);
        assert_eq!(p.lookahead, d.topology.link(d.bottleneck).delay);
    }

    #[test]
    fn partition_parking_lot_cuts_only_backbone_links() {
        let l = lot(3);
        let p = Partition::compute(&l.topology, 2);
        assert_eq!(p.domains, 2);
        // Hosts always ride with their router (access delay ≪ hop delay).
        for (i, &(s, d)) in l.cross.iter().enumerate() {
            assert_eq!(p.domain_of(s), p.domain_of(l.routers[i]));
            assert_eq!(p.domain_of(d), p.domain_of(l.routers[i + 1]));
        }
        assert_eq!(p.lookahead, Dur::from_millis(5));
        // Labels are dense and start at the domain of node 0.
        assert_eq!(p.node_domain[0], 0);
        let mut seen: Vec<u32> = p.node_domain.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, vec![0, 1]);
    }

    #[test]
    fn partition_is_deterministic() {
        let l = lot(4);
        let a = Partition::compute(&l.topology, 4);
        let b = Partition::compute(&l.topology, 4);
        assert_eq!(a, b);
        assert_eq!(a.domains, 4);
    }

    #[test]
    fn partition_k_at_least_nodes_clamps() {
        let (t, _) = (lot(2).topology, ());
        let n = t.node_count() as u32;
        let p = Partition::compute(&t, n + 50);
        assert!(p.domains <= n);
        // Every label in range and dense.
        let mut seen: Vec<u32> = p.node_domain.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, (0..p.domains).collect::<Vec<_>>());
    }

    #[test]
    fn partition_never_cuts_zero_delay_links() {
        let mut b = TopologyBuilder::new();
        let a = b.add_node();
        let c = b.add_node();
        let d = b.add_node();
        let e = b.add_node();
        let cap = Capacity::Packets(10);
        // a=c and d=e glued by zero-delay links; a—d has real delay.
        b.add_duplex(a, c, 1_000_000, Dur::ZERO, cap);
        b.add_duplex(d, e, 1_000_000, Dur::ZERO, cap);
        b.add_duplex(a, d, 1_000_000, Dur::from_millis(2), cap);
        let p = Partition::compute(&b.build(), 4);
        assert_eq!(p.domain_of(a), p.domain_of(c));
        assert_eq!(p.domain_of(d), p.domain_of(e));
        assert_eq!(p.domains, 2);
        assert!(p.lookahead >= Dur::from_millis(2));
    }
}
