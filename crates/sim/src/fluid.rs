//! Flow-level (fluid) fast path for million-flow scenarios.
//!
//! The packet engine costs ~74 ns/event and a busy dumbbell generates
//! hundreds of events per flow, which caps a run near 10⁴ flows. This
//! module trades packet realism for scale: flows are fluid volumes served
//! at their instantaneous max-min fair share, and the solver touches the
//! clock only at *flow arrivals*, *flow departures*, and the implied
//! *bottleneck-set changes* (every arrival/departure re-runs the
//! water-filling allocation, so rate changes never need their own
//! events). Cost is O(events · classes · links) with events ≈ 2 × flows,
//! independent of bandwidth, RTT, or flow size.
//!
//! # Model
//!
//! - A [`FluidSim`] holds capacity-constrained **links** (payload
//!   bits/second — the caller folds framing overhead into the rate) and
//!   **classes**. A class is a set of flows that share the same path
//!   (ordered set of links) and the same per-flow rate cap; within a
//!   class every active flow receives the identical rate, so the class
//!   is served processor-sharing style and needs only one virtual-time
//!   counter regardless of how many flows it carries.
//! - **Senders** alternate on/off: one active flow at a time, the next
//!   flow drawn from a caller-supplied plan source after the previous
//!   one completes plus its off-gap. This mirrors the packet engine's
//!   `OnOffSource` pacing, so a fluid run and a packet run driven by the
//!   same seeded workload stream see the *same flow sizes in the same
//!   order*.
//! - Rates come from **max-min water-filling** over the links with
//!   per-class caps: repeatedly give every unfrozen class the smallest
//!   share any of them can support, freeze the classes that are pinned
//!   at that share (by a link or by their cap), subtract, and repeat.
//!   This is the classic fluid approximation of long-run TCP fairness;
//!   the caller models congestion control by choosing the cap (see
//!   `phi_tcp::cubic::steady_state_rate_bps`).
//! - Flows in a class depart in arrival order of their *service
//!   targets*: each flow records the class virtual time `v` at arrival
//!   and departs when `v` has advanced by its size. A per-class min-heap
//!   keyed `(target, sender)` makes the next departure O(log n) and the
//!   tie-break on sender index keeps simultaneous departures in a fixed
//!   order — determinism never rests on f64 totality alone.
//!
//! # Determinism
//!
//! All state is integer time plus f64 accumulators advanced in a fixed
//! order (class index, then link index, then heap order). There is no
//! randomness in the solver itself — every draw lives in the caller's
//! seeded plan sources — and no wall-clock or pointer-identity input, so
//! two runs with the same sources are bit-identical on any machine and
//! under any `PHI_JOBS` parallelism (the solver is single-threaded; the
//! run pool only shards *repetitions*).
//!
//! # What the fluid model cannot see
//!
//! No packets means no queues: loss is structurally zero, queueing delay
//! is structurally zero, and transient behaviour (slow-start overshoot,
//! incast bursts, RTO storms, fault-plan impairments) is invisible. The
//! optional [`FluidSim::set_start_penalty`] hook lets the caller bolt a
//! closed-form ramp-up correction onto completion times, which recovers
//! most of the FCT gap for short flows, but any experiment whose point
//! *is* queue dynamics must stay on the packet engine. See DESIGN.md
//! §"Hybrid flow-level simulation" for the validation envelope.

use std::cmp::Ordering;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::{Dur, Time};

/// Index of a link registered with [`FluidSim::add_link`].
pub type FluidLinkId = usize;

/// Index of a class registered with [`FluidSim::add_class`].
pub type FluidClassId = usize;

/// One flow the sender will run: `bytes` of payload, started `off_ns`
/// after the previous flow on the same sender completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FluidFlowPlan {
    /// Payload bytes to transfer. Zero-byte plans complete instantly.
    pub bytes: u64,
    /// Idle gap before this flow starts, in nanoseconds.
    pub off_ns: u64,
}

/// A completed (or, for partials, truncated) flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FluidFlowRecord {
    /// Sender that ran the flow (index from [`FluidSim::add_sender`]).
    pub sender: usize,
    /// Zero-based flow index on that sender.
    pub index: u64,
    /// Payload bytes actually served.
    pub bytes: u64,
    /// Instant the flow entered service.
    pub start: Time,
    /// Instant the flow completed (including any start penalty), or the
    /// run deadline for partial records.
    pub end: Time,
}

impl FluidFlowRecord {
    /// Mean service rate over the flow's lifetime, in bits/second.
    pub fn mean_rate_bps(&self) -> f64 {
        let secs = (self.end - self.start).as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.bytes as f64 * 8.0 / secs
    }
}

/// Byte-conservation ledger, the fluid analogue of the packet engine's
/// `PacketCensus`: every byte a sender offered is either delivered by a
/// completed flow, served to a still-active flow, or not yet served.
#[derive(Debug, Clone, Copy, Default)]
pub struct FluidCensus {
    /// Total bytes of all flows that entered service.
    pub offered_bytes: f64,
    /// Bytes of flows that ran to completion.
    pub completed_bytes: f64,
    /// Bytes served so far to flows still in service.
    pub in_progress_bytes: f64,
    /// Bytes of active flows not yet served.
    pub unserved_bytes: f64,
    /// Service integral summed over classes (∑ active · rate · dt) —
    /// accumulated independently of the per-flow ledger above.
    pub served_integral_bytes: f64,
}

impl FluidCensus {
    /// True when the per-flow ledger closes against the independently
    /// accumulated service integral within relative tolerance `tol`.
    ///
    /// Two invariants are checked: offered = completed + in-progress +
    /// unserved (exact bookkeeping), and completed + in-progress ≈
    /// ∑ rate·dt (the integrator and the heap agree about how many bytes
    /// moved). The second is the one that catches solver bugs — a missed
    /// reallocation or a mishandled heap shows up as drift between them.
    pub fn conserved(&self, tol: f64) -> bool {
        let ledger = self.completed_bytes + self.in_progress_bytes + self.unserved_bytes;
        let scale = self.offered_bytes.max(1.0);
        if (ledger - self.offered_bytes).abs() > tol * scale {
            return false;
        }
        let moved = self.completed_bytes + self.in_progress_bytes;
        (moved - self.served_integral_bytes).abs() <= tol * scale
    }
}

/// Departure-heap key: the class virtual time at which the flow has
/// received its full size. Ordered min-first by target with a sender
/// tie-break so simultaneous departures pop in a platform-independent
/// order.
#[derive(Debug, Clone, Copy)]
struct DepKey {
    target_v: f64,
    sender: usize,
}

impl PartialEq for DepKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for DepKey {}
impl Ord for DepKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.target_v
            .total_cmp(&other.target_v)
            .then(self.sender.cmp(&other.sender))
    }
}
impl PartialOrd for DepKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

struct FluidLink {
    rate_bps: f64,
    served_bytes: f64,
}

struct ClassState {
    links: Vec<FluidLinkId>,
    cap_bps: f64,
    /// Number of flows currently in service.
    active: usize,
    /// Current per-flow rate, bits/second (0 when idle).
    rate_bps: f64,
    /// Virtual per-flow service: bytes every flow active since v=0 would
    /// have received. Flows store `v` at arrival and depart at
    /// `v_arrival + size`.
    v: f64,
    /// Bytes served to this class, accumulated as active·rate·dt.
    served_bytes: f64,
    /// Pending departures, min-first by target virtual time.
    heap: BinaryHeap<Reverse<DepKey>>,
}

struct ActiveFlow {
    index: u64,
    bytes: u64,
    start: Time,
    v_start: f64,
}

struct SenderState {
    class: FluidClassId,
    source: Box<dyn FnMut() -> FluidFlowPlan>,
    flows_started: u64,
    active: Option<ActiveFlow>,
    /// Size of the flow scheduled to arrive next (already drawn from the
    /// source so the arrival heap entry knows its own time).
    pending_bytes: u64,
}

/// Closed-form correction added to a flow's completion time to model the
/// transport's ramp-up (slow start); `(bytes, mean_rate_bps) -> extra`.
pub type StartPenalty = Box<dyn Fn(u64, f64) -> Dur>;

/// The flow-level solver. See the module docs for the model.
pub struct FluidSim {
    links: Vec<FluidLink>,
    classes: Vec<ClassState>,
    senders: Vec<SenderState>,
    /// Pending arrivals, min-first by (time, sender).
    arrivals: BinaryHeap<Reverse<(Time, usize)>>,
    now: Time,
    records: Vec<FluidFlowRecord>,
    events: u64,
    offered_bytes: f64,
    completed_bytes: f64,
    start_penalty: Option<StartPenalty>,
    /// Scratch buffers for the water-filling pass, kept between events.
    wf_remaining: Vec<f64>,
    wf_count: Vec<usize>,
    wf_unfrozen: Vec<FluidClassId>,
}

impl Default for FluidSim {
    fn default() -> Self {
        Self::new()
    }
}

impl FluidSim {
    /// An empty solver with no links, classes, or senders.
    pub fn new() -> Self {
        FluidSim {
            links: Vec::new(),
            classes: Vec::new(),
            senders: Vec::new(),
            arrivals: BinaryHeap::new(),
            now: Time::ZERO,
            records: Vec::new(),
            events: 0,
            offered_bytes: 0.0,
            completed_bytes: 0.0,
            start_penalty: None,
            wf_remaining: Vec::new(),
            wf_count: Vec::new(),
            wf_unfrozen: Vec::new(),
        }
    }

    /// Register a capacity-constrained link carrying `rate_bps` payload
    /// bits/second. Panics on a non-positive or non-finite rate.
    pub fn add_link(&mut self, rate_bps: f64) -> FluidLinkId {
        assert!(
            rate_bps.is_finite() && rate_bps > 0.0,
            "fluid link rate must be positive and finite, got {rate_bps}"
        );
        self.links.push(FluidLink {
            rate_bps,
            served_bytes: 0.0,
        });
        self.links.len() - 1
    }

    /// Register a class of flows sharing the path `links` with a
    /// per-flow rate cap of `cap_bps` (use `f64::INFINITY` for no cap).
    /// A class must traverse at least one link or carry a finite cap,
    /// otherwise its flows would never complete.
    pub fn add_class(&mut self, links: Vec<FluidLinkId>, cap_bps: f64) -> FluidClassId {
        assert!(
            !links.is_empty() || (cap_bps.is_finite() && cap_bps > 0.0),
            "a fluid class needs a link or a finite positive cap"
        );
        assert!(
            cap_bps > 0.0,
            "fluid class cap must be positive, got {cap_bps}"
        );
        for &l in &links {
            assert!(l < self.links.len(), "unknown fluid link {l}");
        }
        self.classes.push(ClassState {
            links,
            cap_bps,
            active: 0,
            rate_bps: 0.0,
            v: 0.0,
            served_bytes: 0.0,
            heap: BinaryHeap::new(),
        });
        self.classes.len() - 1
    }

    /// Register a sender in `class` whose flows are drawn from `source`.
    /// The first plan's `off_ns` is its start offset from t = 0 (the
    /// workload layer's stagger); each later flow starts `off_ns` after
    /// the previous flow's completion. Returns the sender index.
    pub fn add_sender(
        &mut self,
        class: FluidClassId,
        source: Box<dyn FnMut() -> FluidFlowPlan>,
    ) -> usize {
        assert!(class < self.classes.len(), "unknown fluid class {class}");
        self.senders.push(SenderState {
            class,
            source,
            flows_started: 0,
            active: None,
            pending_bytes: 0,
        });
        self.senders.len() - 1
    }

    /// Install a ramp-up correction applied to every completed flow's
    /// end time (and therefore to the start of the sender's next
    /// off-gap). See [`StartPenalty`].
    pub fn set_start_penalty(&mut self, penalty: StartPenalty) {
        self.start_penalty = Some(penalty);
    }

    /// Run until `deadline`. Flows still in service at the deadline stay
    /// active and are reported by [`FluidSim::partial`].
    pub fn run_until(&mut self, deadline: Time) {
        // Draw and schedule each sender's first flow, in sender order so
        // the source streams advance deterministically.
        for i in 0..self.senders.len() {
            if self.senders[i].active.is_none() && self.senders[i].pending_bytes == 0 {
                let plan = (self.senders[i].source)();
                self.senders[i].pending_bytes = plan.bytes.max(1);
                self.arrivals
                    .push(Reverse((self.now + Dur::from_nanos(plan.off_ns), i)));
            }
        }

        loop {
            // Earliest departure across classes: the class whose heap
            // minimum is reached first at the current rates.
            let mut next_dep: Option<(Time, FluidClassId)> = None;
            for (c, class) in self.classes.iter().enumerate() {
                if class.active == 0 || class.rate_bps <= 0.0 {
                    continue;
                }
                let Some(&Reverse(key)) = class.heap.peek() else {
                    continue;
                };
                let gap_bytes = (key.target_v - class.v).max(0.0);
                let secs = gap_bytes / (class.rate_bps / 8.0);
                let t = self.now + Dur::from_secs_f64(secs);
                if next_dep.is_none_or(|(best, _)| t < best) {
                    next_dep = Some((t, c));
                }
            }
            let next_arr = self.arrivals.peek().map(|&Reverse((t, _))| t);

            // Departures win ties so a back-to-back flow on the same
            // sender sees its predecessor complete first.
            enum Ev {
                Dep(FluidClassId),
                Arr,
            }
            let (t_next, ev) = match (next_dep, next_arr) {
                (None, None) => break,
                (Some((td, c)), None) => (td, Ev::Dep(c)),
                (None, Some(ta)) => (ta, Ev::Arr),
                (Some((td, c)), Some(ta)) => {
                    if td <= ta {
                        (td, Ev::Dep(c))
                    } else {
                        (ta, Ev::Arr)
                    }
                }
            };
            if t_next > deadline {
                self.advance_to(deadline);
                break;
            }
            self.advance_to(t_next);

            match ev {
                Ev::Dep(c) => {
                    // Force-complete the heap minimum: rounding the
                    // departure instant to integer nanoseconds can leave
                    // the virtual time a hair short of the target, but
                    // the flow *is* the next to finish — the residue is
                    // sub-nanosecond and deterministic. Credit the snap
                    // to the service integrals too: each snapped byte of
                    // virtual time is real service to every active flow,
                    // and without the credit the integrator drifts below
                    // the ledger by ~a byte per departure, which breaks
                    // `FluidCensus::conserved` at million-flow scale.
                    let Reverse(key) = self.classes[c].heap.pop().expect("departure from peek");
                    let class = &mut self.classes[c];
                    let snap = (key.target_v - class.v).max(0.0);
                    if snap > 0.0 {
                        class.v = key.target_v;
                        let total = snap * class.active as f64;
                        class.served_bytes += total;
                        for &l in &class.links {
                            self.links[l].served_bytes += total;
                        }
                    }
                    self.complete_flow(key.sender);
                    // Anything else that reached its target at the same
                    // instant (synchronized workloads) departs now too.
                    while let Some(&Reverse(k)) = self.classes[c].heap.peek() {
                        if k.target_v <= self.classes[c].v {
                            self.classes[c].heap.pop();
                            self.complete_flow(k.sender);
                        } else {
                            break;
                        }
                    }
                }
                Ev::Arr => {
                    while let Some(&Reverse((t, _))) = self.arrivals.peek() {
                        if t != self.now {
                            break;
                        }
                        let Reverse((_, s)) = self.arrivals.pop().expect("arrival from peek");
                        self.start_flow(s);
                    }
                }
            }
            self.reallocate();
        }
    }

    /// Flows completed so far, in completion order.
    pub fn records(&self) -> &[FluidFlowRecord] {
        &self.records
    }

    /// Drain the completed-flow records, leaving the solver's ledgers
    /// intact. Lets a million-flow sweep bound its memory by harvesting
    /// between [`FluidSim::run_until`] segments.
    pub fn take_records(&mut self) -> Vec<FluidFlowRecord> {
        std::mem::take(&mut self.records)
    }

    /// A truncated record for the flow still active on `sender`, as of
    /// the last instant the solver advanced to. `None` when idle or when
    /// nothing has been served yet (mirroring the packet engine's
    /// `partial_report`, which skips flows with no acked data).
    pub fn partial(&self, sender: usize) -> Option<FluidFlowRecord> {
        let st = self.senders.get(sender)?;
        let flow = st.active.as_ref()?;
        let served = (self.classes[st.class].v - flow.v_start)
            .max(0.0)
            .min(flow.bytes as f64);
        let bytes = served.round() as u64;
        if bytes == 0 {
            return None;
        }
        Some(FluidFlowRecord {
            sender,
            index: flow.index,
            bytes,
            start: flow.start,
            end: self.now,
        })
    }

    /// Events processed (arrivals + departures).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Bytes served over `link` so far (service integral).
    pub fn link_served_bytes(&self, link: FluidLinkId) -> f64 {
        self.links[link].served_bytes
    }

    /// The byte-conservation ledger. See [`FluidCensus`].
    pub fn census(&self) -> FluidCensus {
        let mut in_progress = 0.0;
        let mut unserved = 0.0;
        for st in &self.senders {
            if let Some(flow) = &st.active {
                let served = (self.classes[st.class].v - flow.v_start)
                    .max(0.0)
                    .min(flow.bytes as f64);
                in_progress += served;
                unserved += flow.bytes as f64 - served;
            }
        }
        FluidCensus {
            offered_bytes: self.offered_bytes,
            completed_bytes: self.completed_bytes,
            in_progress_bytes: in_progress,
            unserved_bytes: unserved,
            served_integral_bytes: self.classes.iter().map(|c| c.served_bytes).sum(),
        }
    }

    /// Advance virtual time and the service integrals to `t`.
    fn advance_to(&mut self, t: Time) {
        if t <= self.now {
            return;
        }
        let dt = (t - self.now).as_secs_f64();
        for class in &mut self.classes {
            if class.active == 0 || class.rate_bps <= 0.0 {
                continue;
            }
            let per_flow_bytes = class.rate_bps / 8.0 * dt;
            class.v += per_flow_bytes;
            let total = per_flow_bytes * class.active as f64;
            class.served_bytes += total;
            for &l in &class.links {
                self.links[l].served_bytes += total;
            }
        }
        self.now = t;
    }

    /// Move sender `s`'s pending flow into service at the current time.
    fn start_flow(&mut self, s: usize) {
        self.events += 1;
        let st = &mut self.senders[s];
        let bytes = st.pending_bytes;
        debug_assert!(bytes > 0, "arrival without a pending plan");
        debug_assert!(st.active.is_none(), "arrival while a flow is active");
        st.pending_bytes = 0;
        let index = st.flows_started;
        st.flows_started += 1;
        let class = &mut self.classes[st.class];
        st.active = Some(ActiveFlow {
            index,
            bytes,
            start: self.now,
            v_start: class.v,
        });
        class.active += 1;
        class.heap.push(Reverse(DepKey {
            target_v: class.v + bytes as f64,
            sender: s,
        }));
        self.offered_bytes += bytes as f64;
    }

    /// Record sender `s`'s active flow as complete and schedule its next
    /// arrival. Arrivals past the caller's deadline simply stay queued —
    /// the event loop stops before reaching them, and a later
    /// [`FluidSim::run_until`] with a longer deadline picks them up.
    fn complete_flow(&mut self, s: usize) {
        self.events += 1;
        let st = &mut self.senders[s];
        let flow = st.active.take().expect("departure without an active flow");
        self.classes[st.class].active -= 1;
        self.completed_bytes += flow.bytes as f64;

        // Ramp-up correction: the fluid service finished at `now`, but a
        // real transport would have spent extra RTTs growing its window.
        // Shift both the reported end and the next flow's start so the
        // on/off process keeps packet-level pacing.
        let mut end = self.now;
        if let Some(penalty) = &self.start_penalty {
            let fluid_secs = (self.now - flow.start).as_secs_f64();
            let mean_bps = if fluid_secs > 0.0 {
                flow.bytes as f64 * 8.0 / fluid_secs
            } else {
                f64::INFINITY
            };
            end += penalty(flow.bytes, mean_bps);
        }
        self.records.push(FluidFlowRecord {
            sender: s,
            index: flow.index,
            bytes: flow.bytes,
            start: flow.start,
            end,
        });

        let plan = (self.senders[s].source)();
        let next_start = end + Dur::from_nanos(plan.off_ns);
        self.senders[s].pending_bytes = plan.bytes.max(1);
        self.arrivals.push(Reverse((next_start, s)));
    }

    /// Max-min water-filling with per-class caps. Every active class
    /// gets the largest rate such that no link is oversubscribed and no
    /// class exceeds its cap; classes pinned by a tight link or their
    /// cap freeze at the waterline, the rest keep filling.
    fn reallocate(&mut self) {
        self.wf_remaining.clear();
        self.wf_remaining
            .extend(self.links.iter().map(|l| l.rate_bps));
        self.wf_count.clear();
        self.wf_count.resize(self.links.len(), 0);
        self.wf_unfrozen.clear();
        for (c, class) in self.classes.iter_mut().enumerate() {
            if class.active == 0 {
                class.rate_bps = 0.0;
                continue;
            }
            for &l in &class.links {
                self.wf_count[l] += class.active;
            }
            self.wf_unfrozen.push(c);
        }

        while !self.wf_unfrozen.is_empty() {
            // Waterline: the smallest per-flow share any unfrozen class
            // can support, over its cap and its links' fair shares.
            let mut waterline = f64::INFINITY;
            for &c in &self.wf_unfrozen {
                let class = &self.classes[c];
                let mut share = class.cap_bps;
                for &l in &class.links {
                    share = share.min(self.wf_remaining[l] / self.wf_count[l] as f64);
                }
                waterline = waterline.min(share);
            }
            debug_assert!(
                waterline.is_finite(),
                "unbounded fluid class survived water-filling"
            );

            // Freeze every class pinned at the waterline (within a
            // relative epsilon so float noise can't starve the loop),
            // granting exactly the waterline to keep links feasible.
            let thresh = waterline * (1.0 + 1e-12);
            let mut progressed = false;
            let mut i = 0;
            while i < self.wf_unfrozen.len() {
                let c = self.wf_unfrozen[i];
                let mut share = self.classes[c].cap_bps;
                for &l in &self.classes[c].links {
                    share = share.min(self.wf_remaining[l] / self.wf_count[l] as f64);
                }
                if share <= thresh {
                    let class = &mut self.classes[c];
                    class.rate_bps = waterline;
                    let used = waterline * class.active as f64;
                    for &l in &class.links {
                        self.wf_remaining[l] = (self.wf_remaining[l] - used).max(0.0);
                        self.wf_count[l] -= class.active;
                    }
                    self.wf_unfrozen.remove(i);
                    progressed = true;
                } else {
                    i += 1;
                }
            }
            debug_assert!(progressed, "water-filling made no progress");
            if !progressed {
                // Release-mode backstop: freeze everything at the
                // waterline rather than spin.
                for &c in &self.wf_unfrozen {
                    self.classes[c].rate_bps = waterline;
                }
                self.wf_unfrozen.clear();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A source yielding a fixed sequence of plans, then huge gaps so
    /// the sender goes quiet.
    fn seq(plans: Vec<FluidFlowPlan>) -> Box<dyn FnMut() -> FluidFlowPlan> {
        let mut iter = plans.into_iter();
        Box::new(move || {
            iter.next().unwrap_or(FluidFlowPlan {
                bytes: 1,
                off_ns: u64::MAX,
            })
        })
    }

    const MBIT: f64 = 1_000_000.0;

    #[test]
    fn single_flow_runs_at_link_rate() {
        let mut sim = FluidSim::new();
        let link = sim.add_link(8.0 * MBIT); // 1 MB/s
        let class = sim.add_class(vec![link], f64::INFINITY);
        sim.add_sender(
            class,
            seq(vec![FluidFlowPlan {
                bytes: 1_000_000,
                off_ns: 0,
            }]),
        );
        sim.run_until(Time::from_secs(10));
        let recs = sim.records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].bytes, 1_000_000);
        assert_eq!(recs[0].start, Time::ZERO);
        // 1 MB at 1 MB/s = 1 s.
        assert_eq!(recs[0].end, Time::from_secs(1));
        assert!((sim.link_served_bytes(link) - 1_000_000.0).abs() < 1.0);
        assert!(sim.census().conserved(1e-9));
    }

    #[test]
    fn two_flows_share_the_bottleneck_fairly() {
        let mut sim = FluidSim::new();
        let link = sim.add_link(8.0 * MBIT);
        let class = sim.add_class(vec![link], f64::INFINITY);
        for _ in 0..2 {
            sim.add_sender(
                class,
                seq(vec![FluidFlowPlan {
                    bytes: 1_000_000,
                    off_ns: 0,
                }]),
            );
        }
        sim.run_until(Time::from_secs(10));
        let recs = sim.records();
        assert_eq!(recs.len(), 2);
        // Both served at 0.5 MB/s until simultaneous completion at 2 s.
        for r in recs {
            assert_eq!(r.end, Time::from_secs(2));
        }
        // Sender tie-break orders the simultaneous departures.
        assert_eq!(recs[0].sender, 0);
        assert_eq!(recs[1].sender, 1);
        assert!(sim.census().conserved(1e-9));
    }

    #[test]
    fn departure_restores_the_survivor_to_full_rate() {
        let mut sim = FluidSim::new();
        let link = sim.add_link(8.0 * MBIT);
        let class = sim.add_class(vec![link], f64::INFINITY);
        sim.add_sender(
            class,
            seq(vec![FluidFlowPlan {
                bytes: 500_000,
                off_ns: 0,
            }]),
        );
        sim.add_sender(
            class,
            seq(vec![FluidFlowPlan {
                bytes: 1_500_000,
                off_ns: 0,
            }]),
        );
        sim.run_until(Time::from_secs(10));
        let recs = sim.records();
        assert_eq!(recs.len(), 2);
        // Shared at 0.5 MB/s: flow 0 (500 KB) departs at t=1. Flow 1 has
        // 1 MB left at full 1 MB/s: departs at t=2.
        assert_eq!(recs[0].sender, 0);
        assert_eq!(recs[0].end, Time::from_secs(1));
        assert_eq!(recs[1].sender, 1);
        assert_eq!(recs[1].end, Time::from_secs(2));
        assert!(sim.census().conserved(1e-9));
    }

    #[test]
    fn per_flow_cap_binds_below_the_link_share() {
        let mut sim = FluidSim::new();
        let link = sim.add_link(8.0 * MBIT);
        // Cap each flow at 1/4 of the link.
        let class = sim.add_class(vec![link], 2.0 * MBIT);
        sim.add_sender(
            class,
            seq(vec![FluidFlowPlan {
                bytes: 250_000,
                off_ns: 0,
            }]),
        );
        sim.run_until(Time::from_secs(10));
        // 250 KB at 0.25 MB/s = 1 s, despite the idle link capacity.
        assert_eq!(sim.records()[0].end, Time::from_secs(1));
        assert!(sim.census().conserved(1e-9));
    }

    #[test]
    fn parking_lot_gives_the_long_class_the_min_share() {
        // Long class crosses both links; each link also carries a local
        // class. Max-min: long = 1/2 of the tighter link? No — water-
        // filling: both links have 2 claimants, shares 0.5·r each, all
        // classes freeze at 0.5·r. Long gets 0.5, locals get 0.5 each.
        let mut sim = FluidSim::new();
        let a = sim.add_link(8.0 * MBIT);
        let b = sim.add_link(16.0 * MBIT);
        let long = sim.add_class(vec![a, b], f64::INFINITY);
        let la = sim.add_class(vec![a], f64::INFINITY);
        let lb = sim.add_class(vec![b], f64::INFINITY);
        let big = FluidFlowPlan {
            bytes: 10_000_000,
            off_ns: 0,
        };
        sim.add_sender(long, seq(vec![big]));
        sim.add_sender(la, seq(vec![big]));
        sim.add_sender(lb, seq(vec![big]));
        sim.run_until(Time::from_secs(4));
        // Link a: long and la split 1 MB/s → 0.5 each. Link b has 1.5
        // MB/s left for lb after long's 0.5 → lb = 1.5 MB/s.
        let p_long = sim.partial(0).expect("long active");
        let p_la = sim.partial(1).expect("la active");
        let p_lb = sim.partial(2).expect("lb active");
        assert!((p_long.bytes as f64 - 2_000_000.0).abs() < 1_000.0);
        assert!((p_la.bytes as f64 - 2_000_000.0).abs() < 1_000.0);
        assert!((p_lb.bytes as f64 - 6_000_000.0).abs() < 1_000.0);
        assert!(sim.census().conserved(1e-9));
    }

    #[test]
    fn on_off_gaps_and_start_offsets_pace_arrivals() {
        let mut sim = FluidSim::new();
        let link = sim.add_link(8.0 * MBIT);
        let class = sim.add_class(vec![link], f64::INFINITY);
        sim.add_sender(
            class,
            seq(vec![
                FluidFlowPlan {
                    bytes: 1_000_000,
                    off_ns: 500_000_000,
                },
                FluidFlowPlan {
                    bytes: 2_000_000,
                    off_ns: 250_000_000,
                },
            ]),
        );
        sim.run_until(Time::from_secs(10));
        let recs = sim.records();
        assert_eq!(recs.len(), 2);
        // Stagger 0.5 s, 1 s of service → done at 1.5 s; gap 0.25 s,
        // 2 s of service → done at 3.75 s.
        assert_eq!(recs[0].start, Time::from_millis(500));
        assert_eq!(recs[0].end, Time::from_millis(1_500));
        assert_eq!(recs[1].start, Time::from_millis(1_750));
        assert_eq!(recs[1].end, Time::from_millis(3_750));
        assert!(sim.census().conserved(1e-9));
    }

    #[test]
    fn partials_report_served_bytes_at_the_deadline() {
        let mut sim = FluidSim::new();
        let link = sim.add_link(8.0 * MBIT);
        let class = sim.add_class(vec![link], f64::INFINITY);
        sim.add_sender(
            class,
            seq(vec![FluidFlowPlan {
                bytes: 10_000_000,
                off_ns: 0,
            }]),
        );
        sim.run_until(Time::from_secs(3));
        assert!(sim.records().is_empty());
        let p = sim.partial(0).expect("flow active at deadline");
        assert!((p.bytes as f64 - 3_000_000.0).abs() < 1_000.0);
        assert_eq!(p.end, Time::from_secs(3));
        assert!(sim.census().conserved(1e-9));
    }

    #[test]
    fn start_penalty_shifts_completion_and_next_arrival() {
        let mut sim = FluidSim::new();
        let link = sim.add_link(8.0 * MBIT);
        let class = sim.add_class(vec![link], f64::INFINITY);
        sim.add_sender(
            class,
            seq(vec![
                FluidFlowPlan {
                    bytes: 1_000_000,
                    off_ns: 0,
                },
                FluidFlowPlan {
                    bytes: 1_000_000,
                    off_ns: 0,
                },
            ]),
        );
        sim.set_start_penalty(Box::new(|_, _| Dur::from_millis(100)));
        sim.run_until(Time::from_secs(10));
        let recs = sim.records();
        assert_eq!(recs[0].end, Time::from_millis(1_100));
        // Next flow starts only after the penalized completion.
        assert_eq!(recs[1].start, Time::from_millis(1_100));
        assert_eq!(recs[1].end, Time::from_millis(2_200));
    }

    #[test]
    fn identical_runs_are_bit_identical() {
        let run = || {
            let mut sim = FluidSim::new();
            let link = sim.add_link(8.0 * MBIT);
            let class = sim.add_class(vec![link], 3.0 * MBIT);
            for s in 0..5u64 {
                sim.add_sender(
                    class,
                    seq((0..20)
                        .map(|k| FluidFlowPlan {
                            bytes: 10_000 + 7_919 * ((s * 31 + k) % 13),
                            off_ns: 1_000_000 * ((s + k) % 7),
                        })
                        .collect()),
                );
            }
            sim.run_until(Time::from_secs(30));
            (sim.records().to_vec(), sim.events())
        };
        let (a, ea) = run();
        let (b, eb) = run();
        assert_eq!(ea, eb);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn events_scale_with_flows_not_bytes() {
        let mut sim = FluidSim::new();
        let link = sim.add_link(1e9);
        let class = sim.add_class(vec![link], f64::INFINITY);
        sim.add_sender(
            class,
            seq((0..100)
                .map(|_| FluidFlowPlan {
                    bytes: 1_000_000_000, // 1 GB each — irrelevant to cost
                    off_ns: 1,
                })
                .collect()),
        );
        sim.run_until(Time::from_secs(1_000_000));
        assert_eq!(sim.records().len(), 100);
        // Exactly one arrival + one departure per flow.
        assert_eq!(sim.events(), 200);
    }
}
