//! Tiered event scheduler: a bucketed near-future calendar backed by a
//! far-future overflow heap.
//!
//! Discrete-event simulation of a network concentrates almost all events
//! in a *dense near-future band*: serialization ends and propagation
//! deliveries sit microseconds-to-milliseconds ahead of the clock, and
//! retransmission timers a few hundred milliseconds. A binary heap pays
//! `O(log n)` element moves on every push and pop; a calendar queue pays
//! amortized `O(1)` — append into the bucket covering the event's time,
//! and sort each bucket once when the clock reaches it.
//!
//! ## Ordering contract
//!
//! Pops come out in **exactly** `(time, seq)` order, where `seq` is the
//! order `push` was called. This is the same total order the simulator's
//! original `BinaryHeap<(Time, u64)>` produced, so replacing the heap
//! with this scheduler is bit-invisible to every experiment: same packet
//! traces, same metrics, same tie-breaks between simultaneous events.
//! The property tests in `tests/props.rs` pit this structure against a
//! reference heap over arbitrary interleaved schedule/pop workloads.
//!
//! ## Structure
//!
//! * **Near tier** — `NUM_BUCKETS` buckets of `2^BUCKET_BITS` ns each,
//!   covering a rolling horizon (≈134 ms). Events land in the bucket
//!   covering their timestamp; a bucket is sorted (descending, so pops
//!   are `Vec::pop`) the first time the cursor reaches it, and re-sorted
//!   only if new events land in the bucket currently being drained.
//! * **Overflow tier** — events beyond the horizon go to a classic
//!   binary heap. When the near tier drains, the wheel re-anchors at the
//!   overflow's minimum and promotes everything inside the new horizon.
//!
//! Bucket indices are *absolute* (`time >> BUCKET_BITS`); the invariant
//! is that every bucketed event lies in `[cursor, limit)` and every
//! overflow event at or beyond `limit`, so the near tier always holds
//! the global minimum whenever it is non-empty.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::Time;

/// log2 of the bucket width in nanoseconds (2^17 ns ≈ 131 µs).
const BUCKET_BITS: u32 = 17;
/// Number of calendar buckets (must be a power of two).
const NUM_BUCKETS: usize = 1024;
const BUCKET_MASK: u64 = NUM_BUCKETS as u64 - 1;
/// Bitmap words tracking bucket occupancy.
const WORDS: usize = NUM_BUCKETS / 64;

/// Ordering key of one scheduled item, plus its index in the item slab.
///
/// Buckets and the overflow heap move these small keys around during
/// sorts, insertions, and sifts; the payload (a `T`, which for the
/// simulator is a full `Event` with an inline packet) is written into
/// the slab once at push and read once at pop.
///
/// `S` is the same-timestamp tie-break. The serial engine uses a `u64`
/// arrival counter (FIFO among simultaneous events); the parallel engine
/// substitutes a content-derived canonical key so that the pop order is
/// independent of which domain scheduled an event first.
#[derive(Debug, Clone, Copy)]
struct Key<S> {
    at: Time,
    seq: S,
    idx: u32,
}

impl<S: Ord + Copy> PartialEq for Key<S> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<S: Ord + Copy> Eq for Key<S> {}
impl<S: Ord + Copy> PartialOrd for Key<S> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<S: Ord + Copy> Ord for Key<S> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Counters describing a scheduler's lifetime workload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierCounters {
    /// Events ever pushed.
    pub scheduled: u64,
    /// Events that took the far-future overflow path at push time.
    pub overflowed: u64,
    /// High-water mark of pending events.
    pub peak_pending: u64,
}

/// A two-tier calendar/heap priority queue popping in `(time, seq)` order.
///
/// `S` is the tie-break key for simultaneous events (default: a `u64`
/// push-order counter, giving FIFO semantics). See the private `Key`
/// struct for the full ordering tuple.
#[derive(Debug)]
pub struct TieredScheduler<T, S = u64> {
    /// Payload slab; `Key::idx` points in here. Freed slots are recycled.
    items: Vec<Option<T>>,
    free: Vec<u32>,
    buckets: Vec<Vec<Key<S>>>,
    bitmap: [u64; WORDS],
    /// Entries currently in the near tier.
    near_len: usize,
    /// Absolute bucket index of the earliest possibly-occupied bucket.
    cursor: u64,
    /// Near tier covers absolute buckets `[cursor, limit)`.
    limit: u64,
    /// Whether the bucket at `cursor` is sorted (descending).
    cur_sorted: bool,
    overflow: BinaryHeap<Reverse<Key<S>>>,
    len: usize,
    /// Next sequence number (used only by the FIFO `push` on `S = u64`).
    seq: u64,
    counters: TierCounters,
}

impl<T, S: Ord + Copy> Default for TieredScheduler<T, S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, S: Ord + Copy> TieredScheduler<T, S> {
    /// An empty scheduler anchored at t = 0.
    pub fn new() -> Self {
        TieredScheduler {
            items: Vec::new(),
            free: Vec::new(),
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            bitmap: [0; WORDS],
            near_len: 0,
            cursor: 0,
            limit: NUM_BUCKETS as u64,
            cur_sorted: false,
            overflow: BinaryHeap::new(),
            len: 0,
            seq: 0,
            counters: TierCounters::default(),
        }
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Lifetime workload counters.
    pub fn counters(&self) -> TierCounters {
        self.counters
    }

    /// Schedule `item` at `at` with an explicit tie-break key `seq`.
    /// Events must not be scheduled before the time of the last popped
    /// event (the simulation's "now").
    pub fn push_keyed(&mut self, at: Time, seq: S, item: T) {
        self.counters.scheduled += 1;
        self.len += 1;
        if self.len as u64 > self.counters.peak_pending {
            self.counters.peak_pending = self.len as u64;
        }
        let b = at.as_nanos() >> BUCKET_BITS;
        // Note: the wheel is deliberately NOT re-anchored forward here,
        // even when the queue is empty — moving the cursor forward at push
        // time would let a later, earlier-timed push land below it and
        // alias a ring slot. Far pushes past a stale horizon simply take
        // the overflow heap and are promoted by `pop_if`'s rebase.
        let idx = match self.free.pop() {
            Some(i) => {
                self.items[i as usize] = Some(item);
                i
            }
            None => {
                self.items.push(Some(item));
                (self.items.len() - 1) as u32
            }
        };
        let e = Key { at, seq, idx };
        if b < self.limit {
            // A deadline-bounded pop advances the cursor to the next
            // occupied bucket before its deadline check, so a failed
            // `pop_if` can leave the cursor parked past `b` even though
            // `at` is not in the past. Walk it back; every occupied
            // bucket lies in `[limit - NUM_BUCKETS, limit)`, so this
            // never re-introduces slot aliasing.
            debug_assert!(
                b + NUM_BUCKETS as u64 >= self.limit,
                "scheduled into the past"
            );
            if b < self.cursor {
                self.cursor = b;
                self.cur_sorted = false;
            }
            let slot = (b & BUCKET_MASK) as usize;
            let v = &mut self.buckets[slot];
            if b == self.cursor && self.cur_sorted {
                // The draining bucket is kept sorted (descending, minimum
                // at the back): a binary insertion preserves that for the
                // price of one memmove, instead of invalidating the sort
                // and paying a full re-sort on every subsequent pop —
                // the common case when agents schedule events a few
                // microseconds ahead, inside the bucket being drained.
                let pos = v.partition_point(|x| *x > e);
                v.insert(pos, e);
            } else {
                v.push(e);
            }
            self.bitmap[slot / 64] |= 1 << (slot % 64);
            self.near_len += 1;
        } else {
            self.overflow.push(Reverse(e));
            self.counters.overflowed += 1;
        }
    }

    /// Remove and return the earliest event if its time is `<= deadline`;
    /// otherwise leave the queue untouched and return `None`.
    pub fn pop_if(&mut self, deadline: Time) -> Option<(Time, T)> {
        if self.len == 0 {
            return None;
        }
        if self.near_len == 0 {
            // Everything pending is beyond the horizon: re-anchor at the
            // overflow minimum and promote the new near-future window.
            let t_min = self.overflow.peek().expect("len > 0").0.at;
            if t_min > deadline {
                return None;
            }
            self.rebase(t_min);
        }
        let b = self.first_nonempty();
        if b != self.cursor {
            self.cursor = b;
            self.cur_sorted = false;
        }
        let slot = (b & BUCKET_MASK) as usize;
        if !self.cur_sorted {
            // Descending, so the minimum is at the tail and pops are O(1).
            self.buckets[slot].sort_unstable_by(|x, y| y.cmp(x));
            self.cur_sorted = true;
        }
        let head = self.buckets[slot].last().expect("bitmap said non-empty");
        if head.at > deadline {
            return None;
        }
        let e = self.buckets[slot].pop().expect("checked above");
        self.near_len -= 1;
        self.len -= 1;
        if self.buckets[slot].is_empty() {
            self.bitmap[slot / 64] &= !(1 << (slot % 64));
        }
        self.free.push(e.idx);
        let item = self.items[e.idx as usize].take().expect("slab slot full");
        Some((e.at, item))
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(Time, T)> {
        self.pop_if(Time::MAX)
    }

    /// Timestamp of the earliest pending event, without removing it.
    ///
    /// Buckets partition time into disjoint, index-ordered ranges, so the
    /// global minimum lives in the first occupied bucket (or, when the
    /// near tier is empty, at the overflow heap's root); within that
    /// bucket a linear scan suffices because the bucket may not be
    /// sorted yet. The parallel engine calls this once per barrier round
    /// to agree on the next synchronization window.
    pub fn next_time(&self) -> Option<Time> {
        if self.len == 0 {
            return None;
        }
        if self.near_len == 0 {
            return Some(self.overflow.peek().expect("len > 0").0.at);
        }
        let slot = (self.first_nonempty() & BUCKET_MASK) as usize;
        self.buckets[slot]
            .iter()
            .map(|e| e.at)
            .min()
            .or_else(|| unreachable!("bitmap said non-empty"))
    }

    /// Iterate over every pending item, in no particular order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buckets
            .iter()
            .flatten()
            .map(|e| e.idx)
            .chain(self.overflow.iter().map(|Reverse(e)| e.idx))
            .map(|i| self.items[i as usize].as_ref().expect("slab slot full"))
    }

    /// Remove all events and reset clocks, sequence numbers, and counters,
    /// keeping allocated capacity (for reuse across simulator instances).
    pub fn clear(&mut self) {
        self.items.clear();
        self.free.clear();
        for b in &mut self.buckets {
            b.clear();
        }
        self.bitmap = [0; WORDS];
        self.near_len = 0;
        self.cursor = 0;
        self.limit = NUM_BUCKETS as u64;
        self.cur_sorted = false;
        self.overflow.clear();
        self.len = 0;
        self.seq = 0;
        self.counters = TierCounters::default();
    }

    /// First occupied bucket at or after `cursor`, as an absolute index.
    /// Caller guarantees `near_len > 0`.
    fn first_nonempty(&self) -> u64 {
        let start = (self.cursor & BUCKET_MASK) as usize;
        let mut word_idx = start / 64;
        // Mask off bits below the cursor within its word.
        let mut word = self.bitmap[word_idx] & (!0u64 << (start % 64));
        for _ in 0..=WORDS {
            if word != 0 {
                let slot = word_idx * 64 + word.trailing_zeros() as usize;
                let delta = (slot + NUM_BUCKETS - start) % NUM_BUCKETS;
                return self.cursor + delta as u64;
            }
            word_idx = (word_idx + 1) % WORDS;
            word = self.bitmap[word_idx];
        }
        unreachable!("near_len > 0 but no occupied bucket");
    }

    /// Re-anchor the wheel so its horizon starts at `t_min`'s bucket, and
    /// promote every overflow event that now falls inside the horizon.
    fn rebase(&mut self, t_min: Time) {
        let b = t_min.as_nanos() >> BUCKET_BITS;
        debug_assert!(b >= self.cursor, "rebase moved backwards");
        self.cursor = b;
        self.limit = b + NUM_BUCKETS as u64;
        self.cur_sorted = false;
        while let Some(Reverse(head)) = self.overflow.peek() {
            let hb = head.at.as_nanos() >> BUCKET_BITS;
            if hb >= self.limit {
                break;
            }
            let Reverse(e) = self.overflow.pop().expect("peeked");
            let slot = (hb & BUCKET_MASK) as usize;
            self.buckets[slot].push(e);
            self.bitmap[slot / 64] |= 1 << (slot % 64);
            self.near_len += 1;
        }
        debug_assert!(self.near_len > 0, "rebase promoted nothing");
    }
}

impl<T> TieredScheduler<T, u64> {
    /// Schedule `item` at `at`. Simultaneous events pop in the order they
    /// were pushed (FIFO): the tie-break is an internal arrival counter.
    pub fn push(&mut self, at: Time, item: T) {
        let seq = self.seq;
        self.seq += 1;
        self.push_keyed(at, seq, item);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(s: &mut TieredScheduler<u32>) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        while let Some((at, v)) = s.pop() {
            out.push((at.as_nanos(), v));
        }
        out
    }

    #[test]
    fn pops_in_time_then_fifo_order() {
        let mut s = TieredScheduler::new();
        s.push(Time::from_nanos(50), 1);
        s.push(Time::from_nanos(10), 2);
        s.push(Time::from_nanos(50), 3); // same time as item 1: FIFO after it
        s.push(Time::from_nanos(30), 4);
        assert_eq!(drain(&mut s), vec![(10, 2), (30, 4), (50, 1), (50, 3)]);
    }

    #[test]
    fn push_below_parked_cursor_after_failed_deadline_pop() {
        // A failed deadline-bounded pop parks the cursor on the next
        // occupied bucket; a later push between "now" and that bucket
        // must still pop first (regression: ring-slot aliasing).
        let mut s = TieredScheduler::new();
        let bucket = 1u64 << BUCKET_BITS;
        s.push(Time::from_nanos(10), 1);
        s.push(Time::from_nanos(10 * bucket), 2);
        assert_eq!(s.pop(), Some((Time::from_nanos(10), 1)));
        assert!(s.pop_if(Time::from_nanos(20)).is_none());
        s.push(Time::from_nanos(2 * bucket), 3); // earlier than item 2
        assert_eq!(s.pop(), Some((Time::from_nanos(2 * bucket), 3)));
        assert_eq!(s.pop(), Some((Time::from_nanos(10 * bucket), 2)));
    }

    #[test]
    fn far_future_takes_overflow_and_comes_back() {
        let mut s = TieredScheduler::new();
        let far = Time::from_secs(10); // way past the ~134 ms horizon
        s.push(far, 1);
        s.push(Time::from_nanos(5), 2);
        assert_eq!(s.counters().overflowed, 1);
        assert_eq!(drain(&mut s), vec![(5, 2), (far.as_nanos(), 1)]);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut s = TieredScheduler::new();
        s.push(Time::from_micros(100), 1);
        s.push(Time::from_micros(200), 2);
        let (t, v) = s.pop().unwrap();
        assert_eq!((t, v), (Time::from_micros(100), 1));
        // Push into the bucket currently being drained, at the same time
        // as a pending event: FIFO means it pops after item 2.
        s.push(Time::from_micros(200), 3);
        s.push(Time::from_micros(150), 4);
        assert_eq!(
            drain(&mut s),
            vec![(150_000, 4), (200_000, 2), (200_000, 3)]
        );
    }

    #[test]
    fn pop_if_respects_deadline_and_preserves_state() {
        let mut s = TieredScheduler::new();
        s.push(Time::from_millis(5), 1);
        assert_eq!(s.pop_if(Time::from_millis(4)), None);
        assert_eq!(s.len(), 1);
        assert_eq!(
            s.pop_if(Time::from_millis(5)),
            Some((Time::from_millis(5), 1))
        );
        assert!(s.is_empty());
        // Deadline gating also applies to overflow-only states.
        s.push(Time::from_secs(30), 2);
        assert_eq!(s.pop_if(Time::from_secs(29)), None);
        assert_eq!(s.counters().overflowed, 1);
        assert_eq!(
            s.pop_if(Time::from_secs(30)),
            Some((Time::from_secs(30), 2))
        );
    }

    #[test]
    fn long_idle_gap_rebases_without_walking_buckets() {
        let mut s = TieredScheduler::new();
        s.push(Time::from_nanos(1), 1);
        s.pop().unwrap();
        // Hours of virtual idle time later:
        s.push(Time::from_secs(7200), 2);
        s.push(Time::from_secs(7200) + crate::time::Dur::from_nanos(1), 3);
        assert_eq!(s.pop().unwrap().1, 2);
        assert_eq!(s.pop().unwrap().1, 3);
    }

    #[test]
    fn clear_resets_for_reuse() {
        let mut s = TieredScheduler::new();
        for i in 0..100 {
            s.push(Time::from_micros(i * 37 % 1000), i as u32);
        }
        s.push(Time::from_secs(99), 1000);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.counters(), TierCounters::default());
        // Sequence numbers restart, so a reused scheduler is
        // indistinguishable from a fresh one.
        s.push(Time::from_nanos(10), 1);
        s.push(Time::from_nanos(10), 2);
        assert_eq!(drain(&mut s), vec![(10, 1), (10, 2)]);
    }

    #[test]
    fn dense_same_timestamp_burst_is_fifo() {
        let mut s = TieredScheduler::new();
        let t = Time::from_millis(1);
        for i in 0..500u32 {
            s.push(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| s.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn counters_track_peak_and_totals() {
        let mut s = TieredScheduler::new();
        s.push(Time::from_nanos(1), 1);
        s.push(Time::from_nanos(2), 2);
        s.pop().unwrap();
        s.push(Time::from_nanos(3), 3);
        let c = s.counters();
        assert_eq!(c.scheduled, 3);
        assert_eq!(c.peak_pending, 2);
    }
}
