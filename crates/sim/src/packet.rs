//! Packets and the identifiers used to address them.
//!
//! The simulator deals in whole packets. A [`Packet`] carries enough header
//! state for a TCP-like transport (sequence and acknowledgment numbers, a
//! flag byte, ports) plus simulator bookkeeping (a globally unique id and
//! the send timestamp, which stands in for a TCP timestamp option and lets
//! receivers echo exact send times for RTT measurement).

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::time::Time;

/// Identifies a node (host or router) within a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifies a unidirectional link within a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub u32);

/// Identifies an agent registered with the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AgentId(pub u32);

/// Identifies one transport-level flow (one on-period connection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowId(pub u64);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Header flag bits, modelled on the TCP flag byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Flags(pub u8);

impl Flags {
    /// Acknowledgment field is valid.
    pub const ACK: Flags = Flags(0b0001);
    /// Connection open.
    pub const SYN: Flags = Flags(0b0010);
    /// Connection close (last segment of a flow).
    pub const FIN: Flags = Flags(0b0100);
    /// Segment is a retransmission (simulator-side diagnostic bit).
    pub const RETX: Flags = Flags(0b1000);
    /// ECN-Capable Transport: the sender opts into ECN marking, so
    /// congested switches mark this packet instead of dropping it.
    pub const ECT: Flags = Flags(0b0001_0000);
    /// Congestion Experienced: set by a switch on an [`Flags::ECT`]
    /// packet whose egress queue crossed the marking threshold.
    pub const CE: Flags = Flags(0b0010_0000);
    /// ECN Echo: set by the receiver on the ACK of a [`Flags::CE`]-marked
    /// segment, carrying the congestion signal back to the sender.
    pub const ECE: Flags = Flags(0b0100_0000);

    /// The empty flag set.
    pub const fn empty() -> Flags {
        Flags(0)
    }

    /// True if every bit of `other` is set in `self`.
    pub const fn contains(self, other: Flags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two flag sets.
    pub const fn union(self, other: Flags) -> Flags {
        Flags(self.0 | other.0)
    }
}

/// Up to three SACK ranges riding on an acknowledgment, as segment-number
/// half-open intervals `[start, end)`. Three blocks matches what fits in a
/// standard TCP SACK option alongside timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SackBlocks {
    len: u8,
    blocks: [(u64, u64); 3],
}

impl SackBlocks {
    /// No SACK information.
    pub const EMPTY: SackBlocks = SackBlocks {
        len: 0,
        blocks: [(0, 0); 3],
    };

    /// Append a block; returns false (and drops it) when full.
    pub fn push(&mut self, start: u64, end: u64) -> bool {
        debug_assert!(start < end, "empty SACK block");
        if usize::from(self.len) == self.blocks.len() {
            return false;
        }
        self.blocks[usize::from(self.len)] = (start, end);
        self.len += 1;
        true
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// True when no blocks are present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate the blocks.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.blocks[..usize::from(self.len)].iter().copied()
    }
}

/// Conventional sizes, shared by the transport crates.
pub mod wire {
    /// Maximum segment size: TCP payload bytes per full-sized segment.
    pub const MSS: u32 = 1448;
    /// Combined IP + TCP header overhead per segment.
    pub const HEADER_BYTES: u32 = 52;
    /// Bytes on the wire for a full-sized data segment.
    pub const FULL_SEGMENT: u32 = MSS + HEADER_BYTES;
    /// Bytes on the wire for a bare acknowledgment.
    pub const ACK_BYTES: u32 = HEADER_BYTES;
}

/// A packet in flight.
///
/// Sequence and acknowledgment numbers are in units of *segments*, not
/// bytes: every data segment is `wire::MSS` payload bytes except possibly
/// the last of a flow, and numbering segments keeps the arithmetic in the
/// transport layer simple without changing any congestion behaviour.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Globally unique packet id, assigned by the simulator at send time.
    pub id: u64,
    /// Flow this packet belongs to.
    pub flow: FlowId,
    /// Originating node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Source port (selects the agent on `src` that owns replies).
    pub src_port: u16,
    /// Destination port (selects the agent on `dst`).
    pub dst_port: u16,
    /// Segment sequence number (data) — index of this segment in the flow.
    pub seq: u64,
    /// Cumulative acknowledgment — next expected segment (valid with `ACK`).
    pub ack: u64,
    /// Header flags.
    pub flags: Flags,
    /// Size on the wire, bytes.
    pub size: u32,
    /// When the packet was handed to the simulator (stamped at send).
    pub sent_at: Time,
    /// Echoed send time of the segment this ACK acknowledges, for RTT
    /// estimation (a TCP timestamp option stand-in). Zero when unused.
    pub echo: Time,
    /// Selective-acknowledgment blocks (on ACKs).
    pub sack: SackBlocks,
}

impl Packet {
    /// True if the ACK flag is set.
    pub fn is_ack(&self) -> bool {
        self.flags.contains(Flags::ACK)
    }

    /// True if this is a retransmitted segment.
    pub fn is_retx(&self) -> bool {
        self.flags.contains(Flags::RETX)
    }

    /// True if this closes its flow.
    pub fn is_fin(&self) -> bool {
        self.flags.contains(Flags::FIN)
    }

    /// True if the sender declared this packet ECN-capable.
    pub fn is_ect(&self) -> bool {
        self.flags.contains(Flags::ECT)
    }

    /// True if a switch marked this packet Congestion Experienced.
    pub fn is_ce(&self) -> bool {
        self.flags.contains(Flags::CE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_ops() {
        let f = Flags::ACK.union(Flags::FIN);
        assert!(f.contains(Flags::ACK));
        assert!(f.contains(Flags::FIN));
        assert!(!f.contains(Flags::SYN));
        assert!(f.contains(Flags::empty()));
    }

    #[test]
    fn wire_constants_are_consistent() {
        assert_eq!(wire::FULL_SEGMENT, wire::MSS + wire::HEADER_BYTES);
        const { assert!(wire::ACK_BYTES < wire::FULL_SEGMENT) };
    }

    #[test]
    fn packet_predicates() {
        let mut p = Packet {
            id: 1,
            flow: FlowId(7),
            src: NodeId(0),
            dst: NodeId(1),
            src_port: 10,
            dst_port: 80,
            seq: 3,
            ack: 0,
            flags: Flags::empty(),
            size: wire::FULL_SEGMENT,
            sent_at: Time::ZERO,
            echo: Time::ZERO,
            sack: SackBlocks::EMPTY,
        };
        assert!(!p.is_ack());
        p.flags = Flags::ACK.union(Flags::RETX);
        assert!(p.is_ack());
        assert!(p.is_retx());
        assert!(!p.is_fin());
    }

    #[test]
    fn display_ids() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(LinkId(1).to_string(), "l1");
        assert_eq!(AgentId(2).to_string(), "a2");
        assert_eq!(FlowId(9).to_string(), "f9");
    }
}
