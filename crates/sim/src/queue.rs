//! Link queues and queueing disciplines.
//!
//! The Phi paper's incentives story (Sections 2.2.3, 3.1, 3.2) hinges on
//! the prevalence of **drop-tail FIFO** queueing: a flow is not insulated
//! from the queue other flows build. We therefore isolate the discipline
//! behind the [`Discipline`] trait so tests can demonstrate that property
//! and ablations can swap disciplines, but drop-tail FIFO is the default
//! used by every experiment, matching ns-2's `DropTail`.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::packet::Packet;
use crate::time::Time;

/// How much a queue may hold before dropping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Capacity {
    /// At most this many packets (ns-2 counts packets by default).
    Packets(usize),
    /// At most this many bytes.
    Bytes(u64),
}

impl Capacity {
    /// True if a queue currently holding (`pkts`, `bytes`) can accept a
    /// packet of `size` bytes without exceeding this capacity.
    pub fn admits(self, pkts: usize, bytes: u64, size: u32) -> bool {
        match self {
            Capacity::Packets(limit) => pkts < limit,
            Capacity::Bytes(limit) => bytes + u64::from(size) <= limit,
        }
    }
}

/// Verdict of a queueing discipline for an arriving packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Packet admitted to the queue.
    Enqueued,
    /// Packet dropped.
    Dropped,
}

/// A queueing discipline: decides admission and service order.
pub trait Discipline: Send + core::fmt::Debug {
    /// Offer an arriving packet. Implementations either store it and return
    /// [`Verdict::Enqueued`] or refuse it and return [`Verdict::Dropped`].
    fn offer(&mut self, pkt: Packet, now: Time) -> Verdict;

    /// Remove the next packet to transmit, with the time it was enqueued.
    fn take(&mut self) -> Option<(Packet, Time)>;

    /// Packets currently queued.
    fn len_packets(&self) -> usize;

    /// Bytes currently queued.
    fn len_bytes(&self) -> u64;

    /// The configured capacity.
    fn capacity(&self) -> Capacity;
}

/// Classic drop-tail FIFO: admit until full, serve in arrival order.
#[derive(Debug)]
pub struct DropTail {
    capacity: Capacity,
    items: VecDeque<(Packet, Time)>,
    bytes: u64,
}

impl DropTail {
    /// A drop-tail queue with the given capacity.
    pub fn new(capacity: Capacity) -> Self {
        DropTail {
            capacity,
            items: VecDeque::new(),
            bytes: 0,
        }
    }
}

impl Discipline for DropTail {
    #[inline]
    fn offer(&mut self, pkt: Packet, now: Time) -> Verdict {
        if self.capacity.admits(self.items.len(), self.bytes, pkt.size) {
            self.bytes += u64::from(pkt.size);
            self.items.push_back((pkt, now));
            Verdict::Enqueued
        } else {
            Verdict::Dropped
        }
    }

    #[inline]
    fn take(&mut self) -> Option<(Packet, Time)> {
        let (pkt, at) = self.items.pop_front()?;
        self.bytes -= u64::from(pkt.size);
        Some((pkt, at))
    }

    #[inline]
    fn len_packets(&self) -> usize {
        self.items.len()
    }

    #[inline]
    fn len_bytes(&self) -> u64 {
        self.bytes
    }

    #[inline]
    fn capacity(&self) -> Capacity {
        self.capacity
    }
}

/// The queue installed on a link: either the ubiquitous drop-tail FIFO,
/// stored inline and dispatched statically, or any other [`Discipline`]
/// behind a trait object.
///
/// Every experiment in the paper runs drop-tail on every link (ns-2's
/// default), so the engine's per-packet `offer`/`take` calls sit on the
/// hottest path in the repo. The enum devirtualizes that common case —
/// no vtable indirection, no separate allocation — while [`LinkQueue::custom`]
/// keeps RED, scripted-drop fault injection, and any future discipline
/// pluggable at full fidelity.
#[derive(Debug)]
pub enum LinkQueue {
    /// Inline drop-tail FIFO (the fast path).
    DropTail(DropTail),
    /// Any other discipline, behind dynamic dispatch.
    Custom(Box<dyn Discipline>),
}

impl LinkQueue {
    /// A drop-tail queue of `capacity` (the devirtualized default).
    pub fn drop_tail(capacity: Capacity) -> Self {
        LinkQueue::DropTail(DropTail::new(capacity))
    }

    /// Wrap an arbitrary discipline.
    pub fn custom(discipline: impl Discipline + 'static) -> Self {
        LinkQueue::Custom(Box::new(discipline))
    }

    /// Offer an arriving packet (see [`Discipline::offer`]).
    #[inline]
    pub fn offer(&mut self, pkt: Packet, now: Time) -> Verdict {
        match self {
            LinkQueue::DropTail(q) => q.offer(pkt, now),
            LinkQueue::Custom(q) => q.offer(pkt, now),
        }
    }

    /// Remove the next packet to transmit (see [`Discipline::take`]).
    #[inline]
    pub fn take(&mut self) -> Option<(Packet, Time)> {
        match self {
            LinkQueue::DropTail(q) => q.take(),
            LinkQueue::Custom(q) => q.take(),
        }
    }

    /// Packets currently queued.
    #[inline]
    pub fn len_packets(&self) -> usize {
        match self {
            LinkQueue::DropTail(q) => q.len_packets(),
            LinkQueue::Custom(q) => q.len_packets(),
        }
    }

    /// Bytes currently queued.
    #[inline]
    pub fn len_bytes(&self) -> u64 {
        match self {
            LinkQueue::DropTail(q) => q.len_bytes(),
            LinkQueue::Custom(q) => q.len_bytes(),
        }
    }

    /// The configured capacity.
    #[inline]
    pub fn capacity(&self) -> Capacity {
        match self {
            LinkQueue::DropTail(q) => q.capacity(),
            LinkQueue::Custom(q) => q.capacity(),
        }
    }
}

/// A serializable queueing-discipline choice, materialized per link.
///
/// [`LinkQueue`] holds trait objects and cannot travel inside an
/// experiment spec, and the serial and parallel engines each take their
/// own per-link factory closure — before this enum existed, a run that
/// wanted RED under the partitioned engine had no spec-level way to say
/// so (`ParallelSimulator::new` installs drop-tail everywhere). Both
/// engines' factories can now route through [`DisciplineSpec::build`],
/// so any discipline expressible here installs identically under every
/// domain count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DisciplineSpec {
    /// Classic FIFO drop-tail (the engine default).
    DropTail,
    /// RED with explicit thresholds (average queue lengths in packets)
    /// and the drop probability reached at `max_th`.
    Red {
        /// Average-queue threshold where early drops begin, packets.
        min_th: f64,
        /// Average-queue threshold of maximum drop pressure, packets.
        max_th: f64,
        /// Early-drop probability at `max_th`, in (0, 1].
        max_p: f64,
    },
    /// Gentle RED auto-tuned to the link's physical buffer (thresholds
    /// at 20% / 60% of the packet capacity, `max_p` 0.1).
    RedGentle,
}

impl DisciplineSpec {
    /// Build the queue for a link of physical capacity `capacity`.
    ///
    /// Deterministic in its arguments, as both engines' factory
    /// contracts require (the parallel engine instantiates every link
    /// once per domain).
    pub fn build(&self, capacity: Capacity) -> LinkQueue {
        let pkts = match capacity {
            Capacity::Packets(p) => p,
            Capacity::Bytes(b) => (b / 1500).max(5) as usize,
        };
        match *self {
            DisciplineSpec::DropTail => LinkQueue::drop_tail(capacity),
            DisciplineSpec::Red {
                min_th,
                max_th,
                max_p,
            } => LinkQueue::custom(Red::new(capacity, min_th, max_th, max_p)),
            DisciplineSpec::RedGentle => LinkQueue::custom(Red::gentle(pkts)),
        }
    }
}

/// Random Early Detection (Floyd & Jacobson '93), the classic AQM
/// contrast to drop-tail: as the *average* queue grows between `min_th`
/// and `max_th`, arriving packets are dropped with rising probability,
/// desynchronizing flows and signalling congestion before the buffer is
/// full. Used by the incentives ablation (§3.1): early random drops give
/// aggressive senders less to gain from overrunning the queue.
///
/// Determinism: the drop decision hashes the packet id (splitmix64), so
/// RED runs are exactly reproducible like everything else in the
/// simulator.
#[derive(Debug)]
pub struct Red {
    capacity: Capacity,
    items: VecDeque<(Packet, Time)>,
    bytes: u64,
    /// EWMA of the queue length in packets.
    avg: f64,
    /// EWMA weight.
    w_q: f64,
    /// Minimum average-queue threshold (packets).
    min_th: f64,
    /// Maximum average-queue threshold (packets).
    max_th: f64,
    /// Drop probability at `max_th`.
    max_p: f64,
    /// Packets since the last early drop (for the spacing correction).
    since_drop: u64,
}

impl Red {
    /// A RED queue. `min_th`/`max_th` are in packets; `capacity` still
    /// bounds the physical buffer (forced drop when truly full).
    pub fn new(capacity: Capacity, min_th: f64, max_th: f64, max_p: f64) -> Self {
        assert!(min_th > 0.0 && max_th > min_th, "need 0 < min_th < max_th");
        assert!(max_p > 0.0 && max_p <= 1.0, "max_p must be in (0, 1]");
        Red {
            capacity,
            items: VecDeque::new(),
            bytes: 0,
            avg: 0.0,
            w_q: 0.002,
            min_th,
            max_th,
            max_p,
            since_drop: 0,
        }
    }

    /// Gentle defaults sized for a queue of `buffer_pkts` packets:
    /// thresholds at 20% and 60% of the buffer, max_p 0.1.
    pub fn gentle(buffer_pkts: usize) -> Self {
        let b = buffer_pkts.max(5) as f64;
        Red::new(Capacity::Packets(buffer_pkts), b * 0.2, b * 0.6, 0.1)
    }

    /// Current average queue estimate, packets.
    pub fn avg_queue(&self) -> f64 {
        self.avg
    }

    fn unit_hash(pkt_id: u64) -> f64 {
        // splitmix64 → [0, 1)
        let mut z = pkt_id.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Discipline for Red {
    fn offer(&mut self, pkt: Packet, now: Time) -> Verdict {
        // Update the average (classic RED EWMA on each arrival).
        self.avg += self.w_q * (self.items.len() as f64 - self.avg);

        // Physical overflow: forced drop.
        if !self.capacity.admits(self.items.len(), self.bytes, pkt.size) {
            self.since_drop = 0;
            return Verdict::Dropped;
        }

        // Early (probabilistic) drop between the thresholds.
        if self.avg >= self.max_th {
            self.since_drop = 0;
            return Verdict::Dropped;
        }
        if self.avg > self.min_th {
            let p_b = self.max_p * (self.avg - self.min_th) / (self.max_th - self.min_th);
            // Spacing correction: p_a = p_b / (1 - count * p_b).
            let denom = (1.0 - self.since_drop as f64 * p_b).max(1e-9);
            let p_a = (p_b / denom).min(1.0);
            if Self::unit_hash(pkt.id) < p_a {
                self.since_drop = 0;
                return Verdict::Dropped;
            }
            self.since_drop += 1;
        } else {
            self.since_drop = 0;
        }

        self.bytes += u64::from(pkt.size);
        self.items.push_back((pkt, now));
        Verdict::Enqueued
    }

    fn take(&mut self) -> Option<(Packet, Time)> {
        let (pkt, at) = self.items.pop_front()?;
        self.bytes -= u64::from(pkt.size);
        Some((pkt, at))
    }

    fn len_packets(&self) -> usize {
        self.items.len()
    }

    fn len_bytes(&self) -> u64 {
        self.bytes
    }

    fn capacity(&self) -> Capacity {
        self.capacity
    }
}

/// Fault injection: drops exactly the scripted occurrences of (flow, seq)
/// data segments, delegating everything else to an inner discipline.
///
/// `drops` maps (flow, seq) to how many arrivals of that segment to drop:
/// `1` kills the first transmission but lets a retransmission through;
/// `2` also kills the first retransmission, forcing deeper recovery.
/// ACKs are never scripted (they match on data segments only, by flag).
#[derive(Debug)]
pub struct ScriptedDrop<D: Discipline> {
    inner: D,
    drops: std::collections::HashMap<(u64, u64), u32>,
    scripted_drops: u64,
}

impl<D: Discipline> ScriptedDrop<D> {
    /// Wrap `inner`, dropping each `(flow, seq, count)` entry's first
    /// `count` arrivals.
    pub fn new(inner: D, script: &[(u64, u64, u32)]) -> Self {
        ScriptedDrop {
            inner,
            drops: script.iter().map(|&(f, s, c)| ((f, s), c)).collect(),
            scripted_drops: 0,
        }
    }

    /// Scripted drops executed so far.
    pub fn scripted_drops(&self) -> u64 {
        self.scripted_drops
    }
}

impl<D: Discipline> Discipline for ScriptedDrop<D> {
    fn offer(&mut self, pkt: Packet, now: Time) -> Verdict {
        if !pkt.is_ack() {
            if let Some(remaining) = self.drops.get_mut(&(pkt.flow.0, pkt.seq)) {
                if *remaining > 0 {
                    *remaining -= 1;
                    self.scripted_drops += 1;
                    return Verdict::Dropped;
                }
            }
        }
        self.inner.offer(pkt, now)
    }

    fn take(&mut self) -> Option<(Packet, Time)> {
        self.inner.take()
    }

    fn len_packets(&self) -> usize {
        self.inner.len_packets()
    }

    fn len_bytes(&self) -> u64 {
        self.inner.len_bytes()
    }

    fn capacity(&self) -> Capacity {
        self.inner.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Flags, FlowId, NodeId};

    fn pkt(id: u64, size: u32) -> Packet {
        Packet {
            id,
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            src_port: 0,
            dst_port: 0,
            seq: id,
            ack: 0,
            flags: Flags::empty(),
            size,
            sent_at: Time::ZERO,
            echo: Time::ZERO,
            sack: crate::packet::SackBlocks::EMPTY,
        }
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = DropTail::new(Capacity::Packets(10));
        for i in 0..5 {
            assert_eq!(q.offer(pkt(i, 100), Time::from_nanos(i)), Verdict::Enqueued);
        }
        for i in 0..5 {
            let (p, at) = q.take().unwrap();
            assert_eq!(p.id, i);
            assert_eq!(at, Time::from_nanos(i));
        }
        assert!(q.take().is_none());
    }

    #[test]
    fn packet_capacity_drops_tail() {
        let mut q = DropTail::new(Capacity::Packets(2));
        assert_eq!(q.offer(pkt(0, 100), Time::ZERO), Verdict::Enqueued);
        assert_eq!(q.offer(pkt(1, 100), Time::ZERO), Verdict::Enqueued);
        assert_eq!(q.offer(pkt(2, 100), Time::ZERO), Verdict::Dropped);
        assert_eq!(q.len_packets(), 2);
        // Draining frees space again.
        q.take().unwrap();
        assert_eq!(q.offer(pkt(3, 100), Time::ZERO), Verdict::Enqueued);
    }

    #[test]
    fn byte_capacity_accounts_sizes() {
        let mut q = DropTail::new(Capacity::Bytes(250));
        assert_eq!(q.offer(pkt(0, 100), Time::ZERO), Verdict::Enqueued);
        assert_eq!(q.offer(pkt(1, 100), Time::ZERO), Verdict::Enqueued);
        // 100 more would exceed 250.
        assert_eq!(q.offer(pkt(2, 100), Time::ZERO), Verdict::Dropped);
        // ...but 50 fits exactly.
        assert_eq!(q.offer(pkt(3, 50), Time::ZERO), Verdict::Enqueued);
        assert_eq!(q.len_bytes(), 250);
        q.take().unwrap();
        assert_eq!(q.len_bytes(), 150);
    }

    #[test]
    fn scripted_drop_kills_exact_occurrences() {
        let mut q = ScriptedDrop::new(
            DropTail::new(Capacity::Packets(100)),
            &[(0, 2, 1), (0, 4, 2)],
        );
        // seq 2: first arrival dropped, second accepted.
        assert_eq!(q.offer(pkt(2, 100), Time::ZERO), Verdict::Dropped);
        assert_eq!(q.offer(pkt(2, 100), Time::ZERO), Verdict::Enqueued);
        // seq 4: first two arrivals dropped, third accepted.
        assert_eq!(q.offer(pkt(4, 100), Time::ZERO), Verdict::Dropped);
        assert_eq!(q.offer(pkt(4, 100), Time::ZERO), Verdict::Dropped);
        assert_eq!(q.offer(pkt(4, 100), Time::ZERO), Verdict::Enqueued);
        // Unscripted segments sail through.
        assert_eq!(q.offer(pkt(3, 100), Time::ZERO), Verdict::Enqueued);
        assert_eq!(q.scripted_drops(), 3);
    }

    #[test]
    fn scripted_drop_never_touches_acks() {
        let mut q = ScriptedDrop::new(DropTail::new(Capacity::Packets(100)), &[(0, 2, 5)]);
        let mut ack = pkt(2, 52);
        ack.flags = Flags::ACK;
        assert_eq!(q.offer(ack, Time::ZERO), Verdict::Enqueued);
        assert_eq!(q.scripted_drops(), 0);
    }

    #[test]
    fn red_empty_queue_never_early_drops() {
        let mut q = Red::new(Capacity::Packets(100), 5.0, 15.0, 0.1);
        for i in 0..5 {
            assert_eq!(q.offer(pkt(i, 100), Time::ZERO), Verdict::Enqueued);
            q.take().unwrap(); // drain immediately: avg stays ~0
        }
        assert!(q.avg_queue() < 1.0);
    }

    #[test]
    fn red_drops_probabilistically_between_thresholds() {
        let mut q = Red::new(Capacity::Packets(1_000), 5.0, 15.0, 0.5);
        // Fill without draining: the average climbs past min_th and early
        // drops must appear well before the physical limit.
        let mut dropped = 0;
        for i in 0..3_000u64 {
            if q.offer(pkt(i, 100), Time::ZERO) == Verdict::Dropped {
                dropped += 1;
            }
        }
        assert!(dropped > 0, "no early drops despite sustained overload");
        assert!(
            q.len_packets() < 1_000,
            "RED should not rely on the physical limit"
        );
        assert!(q.avg_queue() > 5.0);
    }

    #[test]
    fn red_hard_caps_at_physical_capacity() {
        let mut q = Red::new(Capacity::Packets(10), 50.0, 100.0, 0.01);
        // Thresholds far above capacity: only forced drops apply.
        let mut accepted = 0;
        for i in 0..50u64 {
            if q.offer(pkt(i, 100), Time::ZERO) == Verdict::Enqueued {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 10);
        assert_eq!(q.len_packets(), 10);
    }

    #[test]
    fn red_is_deterministic() {
        let run = || {
            let mut q = Red::gentle(50);
            let mut verdicts = Vec::new();
            for i in 0..500u64 {
                verdicts.push(q.offer(pkt(i, 100), Time::ZERO) == Verdict::Enqueued);
                if i % 3 == 0 {
                    q.take();
                }
            }
            verdicts
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn byte_and_packet_accounting_consistent() {
        let mut q = DropTail::new(Capacity::Packets(100));
        let mut expect_bytes = 0u64;
        for i in 0..20 {
            let size = 40 + (i as u32) * 13;
            expect_bytes += u64::from(size);
            q.offer(pkt(i, size), Time::ZERO);
        }
        assert_eq!(q.len_packets(), 20);
        assert_eq!(q.len_bytes(), expect_bytes);
        while q.take().is_some() {}
        assert_eq!(q.len_bytes(), 0);
        assert_eq!(q.len_packets(), 0);
    }
}
