//! Simulation clock types.
//!
//! The simulator runs on an integer nanosecond clock. Integer time makes
//! event ordering exact and platform-independent, which is what makes every
//! experiment in this repository bit-reproducible: two events scheduled for
//! the same instant are further ordered by a monotone sequence number, so
//! there is never a floating-point tie to break.
//!
//! [`Time`] is an absolute instant (nanoseconds since simulation start) and
//! [`Dur`] is a span between instants. Both are thin wrappers over `u64`
//! with saturating arithmetic; a simulation that overflows `u64` nanoseconds
//! would have run for ~584 years of virtual time, which we treat as a bug.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An absolute instant on the simulation clock, in nanoseconds since start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Time(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Dur(u64);

impl Time {
    /// The simulation epoch (t = 0).
    pub const ZERO: Time = Time(0);
    /// The greatest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Time(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Time(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Time(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Time(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Negative or non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        Time(secs_to_nanos(s))
    }

    /// Raw nanoseconds since the simulation epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This instant expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span from `earlier` to `self`, or [`Dur::ZERO`] if `earlier` is later.
    pub fn saturating_since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }
}

impl Dur {
    /// The empty span.
    pub const ZERO: Dur = Dur(0);
    /// The greatest representable span; used as an "infinite" sentinel.
    pub const MAX: Dur = Dur(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Dur(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Dur(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Dur(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Dur(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Negative or non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        Dur(secs_to_nanos(s))
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This span expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This span expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scale the span by a non-negative factor, saturating on overflow.
    ///
    /// Non-finite or negative factors clamp to zero.
    pub fn mul_f64(self, factor: f64) -> Dur {
        if !factor.is_finite() || factor <= 0.0 {
            return Dur::ZERO;
        }
        let scaled = self.0 as f64 * factor;
        if scaled >= u64::MAX as f64 {
            Dur::MAX
        } else {
            Dur(scaled.round() as u64)
        }
    }

    /// The larger of the two spans.
    pub fn max(self, other: Dur) -> Dur {
        Dur(self.0.max(other.0))
    }

    /// The smaller of the two spans.
    pub fn min(self, other: Dur) -> Dur {
        Dur(self.0.min(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }

    /// The time a `bytes`-sized packet occupies a link of `rate_bps` bits/s.
    ///
    /// Returns [`Dur::MAX`] for a zero-rate link so that a misconfigured link
    /// visibly stalls rather than silently transmitting instantaneously.
    pub fn transmission(bytes: u32, rate_bps: u64) -> Dur {
        if rate_bps == 0 {
            return Dur::MAX;
        }
        let bits = u128::from(bytes) * 8;
        let nanos = bits * 1_000_000_000u128 / u128::from(rate_bps);
        if nanos >= u128::from(u64::MAX) {
            Dur::MAX
        } else {
            Dur(nanos as u64)
        }
    }
}

fn secs_to_nanos(s: f64) -> u64 {
    if s.is_nan() || s <= 0.0 {
        return 0;
    }
    if s.is_infinite() {
        return u64::MAX;
    }
    let ns = s * 1e9;
    if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        ns.round() as u64
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    fn add(self, rhs: Dur) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Dur> for Time {
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub<Dur> for Time {
    type Output = Time;
    fn sub(self, rhs: Dur) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    fn sub(self, rhs: Time) -> Dur {
        debug_assert!(self >= rhs, "negative duration: {self} - {rhs}");
        Dur(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Dur {
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        debug_assert!(self >= rhs, "negative duration: {self} - {rhs}");
        Dur(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Dur {
    fn sub_assign(&mut self, rhs: Dur) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.1}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Time::from_secs(1), Time::from_millis(1_000));
        assert_eq!(Time::from_millis(1), Time::from_micros(1_000));
        assert_eq!(Time::from_micros(1), Time::from_nanos(1_000));
        assert_eq!(Dur::from_secs(2).as_secs_f64(), 2.0);
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(Time::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(Time::from_secs_f64(-1.0), Time::ZERO);
        assert_eq!(Time::from_secs_f64(f64::NAN), Time::ZERO);
        assert_eq!(Dur::from_secs_f64(f64::INFINITY), Dur::MAX);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_millis(10) + Dur::from_millis(5);
        assert_eq!(t, Time::from_millis(15));
        assert_eq!(t - Time::from_millis(5), Dur::from_millis(10));
        assert_eq!(Dur::from_millis(3) * 4, Dur::from_millis(12));
        assert_eq!(Dur::from_millis(12) / 4, Dur::from_millis(3));
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(Time::MAX + Dur::from_secs(1), Time::MAX);
        assert_eq!(Time::ZERO.saturating_since(Time::from_secs(1)), Dur::ZERO);
        assert_eq!(
            Dur::from_secs(1).saturating_sub(Dur::from_secs(2)),
            Dur::ZERO
        );
    }

    #[test]
    fn transmission_time() {
        // 1500 bytes at 12 kbit/s = 1 second.
        assert_eq!(Dur::transmission(1500, 12_000), Dur::from_secs(1));
        // 1500 bytes at 15 Mbit/s = 0.8 ms.
        assert_eq!(Dur::transmission(1500, 15_000_000), Dur::from_micros(800));
        assert_eq!(Dur::transmission(1500, 0), Dur::MAX);
        assert_eq!(Dur::transmission(0, 1_000), Dur::ZERO);
    }

    #[test]
    fn mul_f64_clamps() {
        assert_eq!(Dur::from_secs(1).mul_f64(2.5), Dur::from_millis(2_500));
        assert_eq!(Dur::from_secs(1).mul_f64(-1.0), Dur::ZERO);
        assert_eq!(Dur::from_secs(1).mul_f64(f64::NAN), Dur::ZERO);
        assert_eq!(Dur::MAX.mul_f64(2.0), Dur::MAX);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Dur::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", Dur::from_micros(3)), "3.0us");
        assert_eq!(format!("{}", Dur::from_millis(7)), "7.000ms");
        assert_eq!(format!("{}", Dur::from_secs(2)), "2.000s");
    }
}
