//! Running statistics used by links and exposed to observers.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::time::{Dur, Time};

/// Exponentially-weighted moving average.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// An EWMA with smoothing factor `alpha` in (0, 1]; larger tracks faster.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma { alpha, value: None }
    }

    /// Fold in a new sample.
    pub fn update(&mut self, sample: f64) {
        self.value = Some(match self.value {
            None => sample,
            Some(v) => v + self.alpha * (sample - v),
        });
    }

    /// Current average, if any sample has been seen.
    pub fn get(&self) -> Option<f64> {
        self.value
    }

    /// Current average, or `default` before the first sample.
    pub fn get_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }

    /// Forget all samples.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

/// Incremental mean / min / max / variance over f64 samples (Welford).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n;
        self.m2 += other.m2 + delta * delta * self.n as f64 * other.n as f64 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Busy-fraction of a link over a sliding window of recent history.
///
/// Records the intervals during which the link was transmitting and
/// reports the fraction of the trailing `window` that was busy. This is
/// the "up-to-the-minute bottleneck utilization" oracle that
/// Remy-Phi-ideal consumes (paper Section 2.2.4).
#[derive(Debug, Clone)]
pub struct RollingUtil {
    window: Dur,
    /// Closed busy intervals, oldest first.
    intervals: VecDeque<(Time, Time)>,
    /// Sum of the full (unclipped) lengths of `intervals`, nanoseconds.
    /// Maintained on push and expiry, so a utilization query never scans
    /// the whole deque: it subtracts the few intervals that aged out
    /// since the last update and clips at most one straddler.
    busy_ns: u64,
    /// Start of an in-progress busy period, if the link is transmitting.
    open: Option<Time>,
}

impl RollingUtil {
    /// Track busy fraction over the trailing `window`.
    pub fn new(window: Dur) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        RollingUtil {
            window,
            intervals: VecDeque::new(),
            busy_ns: 0,
            open: None,
        }
    }

    /// The link started transmitting at `t`.
    pub fn begin_busy(&mut self, t: Time) {
        debug_assert!(self.open.is_none(), "begin_busy while already busy");
        self.open = Some(t);
    }

    /// The link finished transmitting at `t`.
    pub fn end_busy(&mut self, t: Time) {
        if let Some(start) = self.open.take() {
            self.intervals.push_back((start, t));
            self.busy_ns += (t - start).as_nanos();
        }
        self.expire(t);
    }

    fn expire(&mut self, now: Time) {
        let horizon = now - self.window;
        while let Some(&(start, end)) = self.intervals.front() {
            if end <= horizon {
                self.busy_ns -= (end - start).as_nanos();
                self.intervals.pop_front();
            } else {
                break;
            }
        }
    }

    /// Busy fraction of the window ending at `now`, in [0, 1].
    ///
    /// O(1) amortized: starts from the running sum and corrects only at
    /// the deque's front — intervals that aged out entirely since the
    /// last `end_busy` (usually none on an active link) plus at most one
    /// interval straddling the horizon.
    pub fn utilization(&self, now: Time) -> f64 {
        let horizon = now - self.window;
        let mut busy_ns = self.busy_ns;
        for &(start, end) in &self.intervals {
            if end <= horizon {
                busy_ns -= (end - start).as_nanos();
            } else {
                if start < horizon {
                    busy_ns -= (horizon - start).as_nanos();
                }
                break;
            }
        }
        if let Some(start) = self.open {
            let s = if start > horizon { start } else { horizon };
            if now > s {
                busy_ns += (now - s).as_nanos();
            }
        }
        // Before a full window has elapsed, normalize by elapsed time so
        // early readings are not biased low.
        let denom = if now.as_nanos() < self.window.as_nanos() {
            now.as_nanos().max(1)
        } else {
            self.window.as_nanos()
        };
        (busy_ns as f64 / denom as f64).min(1.0)
    }
}

/// Cumulative per-link counters, reported at the end of an experiment and
/// readable by agents mid-run (the ideal-oracle path).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkStats {
    /// Packets accepted into the queue.
    pub enqueued: u64,
    /// Packets dropped at the queue (drop-tail losses).
    pub dropped: u64,
    /// Packets fully transmitted.
    pub transmitted: u64,
    /// Bytes fully transmitted.
    pub bytes_transmitted: u64,
    /// Total time the transmitter was busy.
    pub busy: Dur,
    /// Per-packet wait between enqueue and transmission start, seconds.
    pub queue_wait: OnlineStats,
    /// Time-weighted integral of queued bytes (for mean occupancy).
    pub byte_time_integral: f64,
    /// Last instant the occupancy integral was advanced.
    pub last_change: Time,
}

impl LinkStats {
    pub(crate) fn new() -> Self {
        LinkStats {
            enqueued: 0,
            dropped: 0,
            transmitted: 0,
            bytes_transmitted: 0,
            busy: Dur::ZERO,
            queue_wait: OnlineStats::new(),
            byte_time_integral: 0.0,
            last_change: Time::ZERO,
        }
    }

    pub(crate) fn advance_occupancy(&mut self, now: Time, queued_bytes: u64) {
        let dt = now.saturating_since(self.last_change).as_secs_f64();
        self.byte_time_integral += dt * queued_bytes as f64;
        self.last_change = now;
    }

    /// Fraction of packet arrivals that were dropped.
    pub fn loss_rate(&self) -> f64 {
        let offered = self.enqueued + self.dropped;
        if offered == 0 {
            0.0
        } else {
            self.dropped as f64 / offered as f64
        }
    }

    /// Mean transmitter utilization over `elapsed` of simulated time.
    pub fn utilization(&self, elapsed: Dur) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            (self.busy.as_secs_f64() / elapsed.as_secs_f64()).min(1.0)
        }
    }

    /// Mean queue occupancy in bytes over `elapsed` of simulated time.
    pub fn mean_queue_bytes(&self, elapsed: Dur) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.byte_time_integral / elapsed.as_secs_f64()
        }
    }

    /// Mean per-packet queueing delay in seconds.
    pub fn mean_queue_wait(&self) -> f64 {
        self.queue_wait.mean()
    }

    /// Achieved throughput in bits/s over `elapsed`.
    pub fn throughput_bps(&self, elapsed: Dur) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.bytes_transmitted as f64 * 8.0 / elapsed.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_first_sample_wins() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.get(), None);
        e.update(10.0);
        assert_eq!(e.get(), Some(10.0));
        e.update(20.0);
        assert_eq!(e.get(), Some(15.0));
        e.reset();
        assert_eq!(e.get_or(3.0), 3.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        Ewma::new(0.0);
    }

    #[test]
    fn online_stats_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..57).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..20] {
            a.push(x);
        }
        for &x in &xs[20..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn rolling_util_full_busy() {
        let mut u = RollingUtil::new(Dur::from_millis(10));
        u.begin_busy(Time::ZERO);
        u.end_busy(Time::from_millis(10));
        assert!((u.utilization(Time::from_millis(10)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rolling_util_half_busy() {
        let mut u = RollingUtil::new(Dur::from_millis(10));
        // Busy 0-5ms, idle 5-10ms.
        u.begin_busy(Time::ZERO);
        u.end_busy(Time::from_millis(5));
        let got = u.utilization(Time::from_millis(10));
        assert!((got - 0.5).abs() < 1e-9, "got {got}");
    }

    #[test]
    fn rolling_util_expires_old_intervals() {
        let mut u = RollingUtil::new(Dur::from_millis(10));
        u.begin_busy(Time::ZERO);
        u.end_busy(Time::from_millis(10));
        // 20ms later the busy period has aged out entirely.
        assert_eq!(u.utilization(Time::from_millis(30)), 0.0);
    }

    #[test]
    fn rolling_util_counts_open_interval() {
        let mut u = RollingUtil::new(Dur::from_millis(10));
        u.begin_busy(Time::from_millis(95));
        let got = u.utilization(Time::from_millis(100));
        assert!((got - 0.5).abs() < 1e-9, "got {got}");
    }

    #[test]
    fn rolling_util_early_normalization() {
        let mut u = RollingUtil::new(Dur::from_secs(1));
        u.begin_busy(Time::ZERO);
        u.end_busy(Time::from_millis(5));
        // Only 10ms have elapsed; 5ms busy of 10ms elapsed = 0.5, not 0.005.
        let got = u.utilization(Time::from_millis(10));
        assert!((got - 0.5).abs() < 1e-9, "got {got}");
    }

    #[test]
    fn link_stats_derived_metrics() {
        let mut s = LinkStats::new();
        s.enqueued = 90;
        s.dropped = 10;
        s.bytes_transmitted = 1_000_000;
        s.busy = Dur::from_millis(500);
        assert!((s.loss_rate() - 0.1).abs() < 1e-12);
        assert!((s.utilization(Dur::from_secs(1)) - 0.5).abs() < 1e-12);
        assert!((s.throughput_bps(Dur::from_secs(1)) - 8e6).abs() < 1e-6);
        assert_eq!(s.utilization(Dur::ZERO), 0.0);
    }

    #[test]
    fn occupancy_integral() {
        let mut s = LinkStats::new();
        // 1000 bytes queued for 2 seconds then 0 for 2 seconds.
        s.advance_occupancy(Time::from_secs(2), 1000);
        s.advance_occupancy(Time::from_secs(4), 0);
        assert!((s.mean_queue_bytes(Dur::from_secs(4)) - 500.0).abs() < 1e-9);
    }
}
