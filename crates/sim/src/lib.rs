//! # phi-sim — deterministic packet-level network simulation
//!
//! The substrate under every experiment in this repository: a
//! discrete-event, packet-level network simulator playing the role ns-2
//! (v2.35) plays in the Phi paper (*Rethinking Networking for "Five
//! Computers"*, HotNets '18).
//!
//! Design goals, in order:
//!
//! 1. **Determinism.** Integer-nanosecond clock, total event order, no
//!    ambient randomness: the same configuration always produces the same
//!    packet trace, so every figure regenerates exactly.
//! 2. **Faithful queueing.** Drop-tail FIFO with byte- or packet-counted
//!    capacity, store-and-forward serialization at the link rate, and
//!    propagation delay — the three ingredients the paper's congestion
//!    experiments actually exercise.
//! 3. **Observability.** Links keep running statistics (utilization, loss,
//!    queue wait, occupancy) that double as the "ideal oracle" feed for
//!    Remy-Phi-ideal (§2.2.4 of the paper).
//!
//! Transport endpoints (TCP Cubic, NewReno, Remy) live in the `phi-tcp`
//! and `phi-remy` crates and plug in through the [`engine::Agent`] trait.
//!
//! ## Quick tour
//!
//! ```
//! use phi_sim::prelude::*;
//!
//! // The paper's Figure 1 dumbbell: 15 Mbit/s bottleneck, 150 ms RTT,
//! // buffer = 5 x BDP.
//! let spec = DumbbellSpec::paper(8);
//! let net = dumbbell(&spec);
//! let mut sim = Simulator::new(net.topology.clone());
//! // ... attach agents to net.senders / net.receivers, then:
//! sim.run_until(Time::from_secs(10));
//! let util = sim.link_stats(net.bottleneck).utilization(Dur::from_secs(10));
//! assert_eq!(util, 0.0); // no agents attached in this doc example
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod faults;
pub mod fluid;
pub mod packet;
pub mod par;
pub mod queue;
pub mod sched;
pub mod stats;
pub mod switch;
pub mod time;
pub mod topology;
pub mod trace;

/// The types almost every consumer needs.
pub mod prelude {
    pub use crate::engine::{
        packet_to, Agent, BudgetExceeded, Ctx, PacketCensus, RunBudget, SchedStats, Simulator,
        TimerHandle,
    };
    pub use crate::faults::{
        DownPolicy, FaultStats, Flapping, ImpairmentPlan, LossModel, OutageWindow, Reordering,
    };
    pub use crate::fluid::{FluidCensus, FluidFlowPlan, FluidFlowRecord, FluidSim};
    pub use crate::packet::{wire, AgentId, Flags, FlowId, LinkId, NodeId, Packet};
    pub use crate::par::{domains_from_env, ParallelSimulator};
    pub use crate::queue::{Capacity, DisciplineSpec, LinkQueue};
    pub use crate::stats::{Ewma, LinkStats, OnlineStats};
    pub use crate::switch::{EcnSpec, PfcSpec, SharedBuffer, SwitchSpec, SwitchStats};
    pub use crate::time::{Dur, Time};
    pub use crate::topology::{
        dumbbell, parking_lot, Dumbbell, DumbbellSpec, LinkSpec, ParkingLot, ParkingLotSpec,
        Partition, Topology, TopologyBuilder,
    };
    pub use crate::trace::{TraceCollector, TraceEvent, TraceOp, TraceWriter, Tracer};
}
