//! Conservative parallel discrete-event engine: domain-partitioned PDES.
//!
//! [`ParallelSimulator`] splits a topology into K domains (see
//! [`Partition`]), runs each domain's event loop on its own worker
//! thread, and exchanges cross-domain packets at barrier windows of
//! width `lookahead = min(cross-domain link delay)` — the classic
//! time-window scheme, which link propagation delays make safe with no
//! rollback:
//!
//! *Safety argument.* A packet crossing the partition cut during window
//! `[W, W + L)` leaves its domain at some `t < W + L` and arrives at
//! `t + delay ≥ t + L ≥ W + L` (fault-plane `extra` delay only adds).
//! So every message that can land inside a window is already sitting in
//! the receiving domain's queue before that window is pumped: each
//! domain processes its window against complete inputs, and the merged
//! execution is identical to the serial one-domain execution over the
//! same content-derived event keys.
//!
//! *Determinism contract.* The partition is computed from the topology
//! alone; event keys are content-derived (class, actor, per-agent
//! counters — see `Event::key_parts`); packet ids are partitioned by
//! agent; and trace buffers merge on [`TraceEvent::canonical_key`],
//! a total order over event content. Nothing observable depends on the
//! domain count or thread interleaving, so FNV trace digests,
//! [`PacketCensus`], and merged [`SchedStats`] conservation are
//! bit-identical for any `K`, including `K = 1`.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::engine::{Agent, BudgetExceeded, PacketCensus, RunBudget, SchedStats, Simulator};
use crate::faults::{FaultStats, ImpairmentPlan};
use crate::packet::{AgentId, LinkId, NodeId};
use crate::queue::LinkQueue;
use crate::stats::LinkStats;
use crate::time::{Dur, Time};
use crate::topology::{LinkSpec, Partition, Topology};
use crate::trace::{SharedTraceCollector, TraceEvent};
use phi_workload::SeedRng;

/// Number of domains requested via the `PHI_DOMAINS` environment
/// variable, if set and valid (`None` otherwise).
pub fn domains_from_env() -> Option<u32> {
    std::env::var("PHI_DOMAINS").ok()?.trim().parse().ok()
}

/// Marker returned by [`PoisonBarrier::wait`] once the barrier is
/// poisoned: a sibling worker panicked and no further round can complete.
struct Poisoned;

/// A reusable N-party barrier whose waiters can be released early.
///
/// `std::sync::Barrier` has no failure path: if one worker panics
/// between two waits, every sibling blocks forever and
/// `std::thread::scope` never joins — the whole process hangs. This
/// barrier adds [`PoisonBarrier::poison`]: a panicking worker marks the
/// barrier and wakes everyone, and every current and future `wait`
/// returns `Err(Poisoned)` so siblings can unwind their round loop
/// cleanly instead of stranding mid-protocol.
struct PoisonBarrier {
    state: Mutex<BarrierGen>,
    cond: Condvar,
    parties: usize,
}

struct BarrierGen {
    arrived: usize,
    generation: u64,
    poisoned: bool,
}

impl PoisonBarrier {
    fn new(parties: usize) -> Self {
        PoisonBarrier {
            state: Mutex::new(BarrierGen {
                arrived: 0,
                generation: 0,
                poisoned: false,
            }),
            cond: Condvar::new(),
            parties,
        }
    }

    /// Block until all parties arrive (Ok) or the barrier is poisoned
    /// (Err). The mutex is never held across a panic, so lock poisoning
    /// is recovered rather than propagated.
    fn wait(&self) -> Result<(), Poisoned> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.poisoned {
            return Err(Poisoned);
        }
        s.arrived += 1;
        if s.arrived == self.parties {
            s.arrived = 0;
            s.generation += 1;
            self.cond.notify_all();
            return Ok(());
        }
        let generation = s.generation;
        while s.generation == generation && !s.poisoned {
            s = self.cond.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        if s.poisoned {
            Err(Poisoned)
        } else {
            Ok(())
        }
    }

    /// Mark the barrier failed and wake every waiter, now and forever.
    fn poison(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.poisoned = true;
        self.cond.notify_all();
    }
}

/// Shared budget-decision codes voted through an `AtomicU64` (0 = none).
fn encode_stop(b: BudgetExceeded) -> u64 {
    match b {
        BudgetExceeded::Events => 1,
        BudgetExceeded::SimTime => 2,
        BudgetExceeded::WallClock => 3,
    }
}

fn decode_stop(v: u64) -> Option<BudgetExceeded> {
    match v {
        1 => Some(BudgetExceeded::Events),
        2 => Some(BudgetExceeded::SimTime),
        3 => Some(BudgetExceeded::WallClock),
        _ => None,
    }
}

/// A K-domain conservative parallel simulation.
///
/// Mirrors the [`Simulator`] API surface experiments use (agents,
/// impairments, tracing, stats) but runs `run_until` across worker
/// threads. With one domain it degrades to an inline serial run that
/// still uses the parallel engine's content-derived event keys, so
/// results for `K = 1` and `K > 1` are bit-identical.
pub struct ParallelSimulator {
    domains: Vec<Simulator<crate::engine::ParKey>>,
    partition: Partition,
    /// Owning domain of each global agent id.
    agent_domain: Vec<u32>,
    /// Per-domain shared trace buffers (present once tracing is enabled).
    trace_bufs: Vec<Arc<Mutex<Vec<TraceEvent>>>>,
    barrier_rounds: u64,
    /// Resource budget, enforced at barrier windows (multi-domain) or
    /// delegated to the engine's pop loop (single-domain).
    budget: Option<RunBudget>,
    /// Set once a budget limit fires; see [`ParallelSimulator::termination`].
    terminated: Option<BudgetExceeded>,
}

impl ParallelSimulator {
    /// Partition `topology` into (at most) `k` domains with drop-tail
    /// queues on every link, per the link specs.
    pub fn new(topology: Topology, k: u32) -> Self {
        ParallelSimulator::with_disciplines(topology, k, |_, spec| {
            LinkQueue::drop_tail(spec.capacity)
        })
    }

    /// Partition `topology` into (at most) `k` domains with a custom
    /// queueing discipline per link.
    ///
    /// The factory is invoked once per (domain, link) pair — every
    /// domain carries the full link array (foreign links stay inert) —
    /// so it must be deterministic in its arguments.
    pub fn with_disciplines(
        topology: Topology,
        k: u32,
        mut factory: impl FnMut(LinkId, &LinkSpec) -> LinkQueue,
    ) -> Self {
        let partition = Partition::compute(&topology, k);
        let domains = (0..partition.domains)
            .map(|d| {
                Simulator::for_domain(
                    topology.clone(),
                    |l, s| factory(l, s),
                    d,
                    partition.node_domain.clone(),
                )
            })
            .collect();
        ParallelSimulator {
            domains,
            partition,
            agent_domain: Vec::new(),
            trace_bufs: Vec::new(),
            barrier_rounds: 0,
            budget: None,
            terminated: None,
        }
    }

    /// Install a resource [`RunBudget`].
    ///
    /// Single-domain runs delegate to the engine's per-event enforcement.
    /// Multi-domain runs check limits at barrier windows: the sim-time
    /// cap is exact and invariant in the domain count; the event and
    /// wall-clock limits trip at the first window boundary at or past the
    /// limit, so *where* they stop depends on `K` (a budget-terminated
    /// run is partial either way and is quarantined from aggregates — see
    /// `phi_core::supervise`).
    pub fn set_budget(&mut self, budget: RunBudget) {
        self.budget = if budget.is_unlimited() {
            None
        } else {
            Some(budget)
        };
    }

    /// Why the run terminated early, if a [`RunBudget`] limit fired
    /// (`None` when no budget bound).
    pub fn termination(&self) -> Option<BudgetExceeded> {
        self.terminated
    }

    /// The partition in effect.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The topology under simulation.
    pub fn topology(&self) -> &Topology {
        self.domains[0].topology()
    }

    /// Attach an agent to `node`, listening on `port`. The agent lives
    /// in (and only runs on) the domain that owns `node`; every other
    /// domain records a placeholder so agent ids stay globally aligned.
    ///
    /// # Panics
    /// Panics if `(node, port)` is already bound or the sim has started.
    pub fn add_agent(&mut self, node: NodeId, port: u16, agent: Box<dyn Agent>) -> AgentId {
        let id = AgentId(self.agent_domain.len() as u32);
        let owner = self.partition.domain_of(node);
        self.agent_domain.push(owner);
        let mut agent = Some(agent);
        for (d, sim) in self.domains.iter_mut().enumerate() {
            let a = if d as u32 == owner {
                agent.take()
            } else {
                None
            };
            sim.add_agent_slot(id, node, port, a);
        }
        id
    }

    /// Install a fault-injection [`ImpairmentPlan`] on `link`, in the
    /// domain that owns the link's source node — the only domain that
    /// ever transmits on it, so egress verdicts and edge events stay
    /// domain-local and the impairment trace is unchanged by K.
    pub fn install_impairments(&mut self, link: LinkId, plan: ImpairmentPlan, root: &SeedRng) {
        let owner = self.link_owner(link);
        self.domains[owner].install_impairments(link, plan, root);
    }

    /// Per-link chaos-plane counters; all-zero when no plan is installed.
    pub fn fault_stats(&self, link: LinkId) -> FaultStats {
        self.domains[self.link_owner(link)].fault_stats(link)
    }

    /// Install a shared-buffer switch (see [`Simulator::install_switch`])
    /// on `node`, in the domain that owns it — the only domain that ever
    /// enqueues on the node's egress links, so admission, marking, and
    /// pause accounting stay domain-local. PAUSE/RESUME frames addressed
    /// to a foreign upstream node ride the barrier mailboxes like
    /// packets (their propagation delay is at least the lookahead).
    pub fn install_switch(&mut self, node: NodeId, spec: crate::switch::SwitchSpec) {
        let owner = self.partition.domain_of(node) as usize;
        self.domains[owner].install_switch(node, spec);
    }

    /// Per-switch backpressure counters; all-zero when no switch is
    /// installed on `node`.
    pub fn switch_stats(&self, node: NodeId) -> crate::switch::SwitchStats {
        let owner = self.partition.domain_of(node) as usize;
        self.domains[owner].switch_stats(node)
    }

    /// Whether `link` is currently up (always true without a plan).
    pub fn link_is_up(&self, link: LinkId) -> bool {
        self.domains[self.link_owner(link)].link_is_up(link)
    }

    /// Statistics of one link, read from its owning domain.
    pub fn link_stats(&self, link: LinkId) -> &LinkStats {
        self.domains[self.link_owner(link)].link_stats(link)
    }

    fn link_owner(&self, link: LinkId) -> usize {
        let from = self.domains[0].topology().link(link).from;
        self.partition.domain_of(from) as usize
    }

    /// Install a [`SharedTraceCollector`] on every domain. Call before
    /// the run; read the canonical merged sequence with
    /// [`ParallelSimulator::merged_trace`] afterwards.
    pub fn enable_tracing(&mut self) {
        self.trace_bufs.clear();
        for sim in &mut self.domains {
            let (tracer, buf) = SharedTraceCollector::new();
            sim.set_tracer(tracer);
            self.trace_bufs.push(buf);
        }
    }

    /// The canonical merged trace: per-domain buffers concatenated and
    /// sorted by [`TraceEvent::canonical_key`]. The key covers every
    /// field, so ties are byte-identical records and the merged order is
    /// independent of the domain count (the sort is applied for `K = 1`
    /// too, so all K agree). Empty unless tracing was enabled.
    pub fn merged_trace(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = self
            .trace_bufs
            .iter()
            .flat_map(|b| b.lock().expect("trace buffer").clone())
            .collect();
        all.sort_by_key(|e| e.canonical_key());
        all
    }

    /// Current simulated time (domains agree between runs).
    pub fn now(&self) -> Time {
        self.domains.iter().map(|s| s.now()).max().expect("k >= 1")
    }

    /// Total events dispatched, summed over domains.
    pub fn events_processed(&self) -> u64 {
        self.domains.iter().map(|s| s.events_processed()).sum()
    }

    /// Packets that reached a node with no agent bound to their port.
    pub fn undeliverable(&self) -> u64 {
        self.domains.iter().map(|s| s.undeliverable()).sum()
    }

    /// Scheduler accounting summed over domains. The conservation
    /// identity `scheduled == fired + skipped_stale + pending` holds for
    /// the sum exactly as it does per domain. `peak_pending` is the sum
    /// of per-domain peaks (an upper bound on the true global peak) and,
    /// like `overflowed`, depends on how events spread across domain
    /// wheels — those two fields are the only ones not invariant in K.
    pub fn sched_stats(&self) -> SchedStats {
        let mut total = SchedStats::default();
        for s in self.domains.iter().map(|d| d.sched_stats()) {
            total.scheduled += s.scheduled;
            total.fired += s.fired;
            total.skipped_stale += s.skipped_stale;
            total.cancelled += s.cancelled;
            total.overflowed += s.overflowed;
            total.peak_pending += s.peak_pending;
            total.pending += s.pending;
        }
        total
    }

    /// Packet census summed over domains. Between runs every packet is
    /// in exactly one domain (cross-domain mailboxes are provably empty
    /// at a barrier-loop exit), so the summed census conserves exactly
    /// as the serial one does.
    pub fn packet_census(&self) -> PacketCensus {
        let mut total = self.domains[0].packet_census();
        for c in self.domains[1..].iter().map(|d| d.packet_census()) {
            total.injected += c.injected;
            total.delivered += c.delivered;
            total.dropped += c.dropped;
            total.undeliverable += c.undeliverable;
            total.corrupted += c.corrupted;
            total.duplicated += c.duplicated;
            total.blackholed += c.blackholed;
            total.pfc_dropped += c.pfc_dropped;
            total.queued += c.queued;
            total.in_flight += c.in_flight;
            total.ecn_marked += c.ecn_marked;
            total.paused_ns += c.paused_ns;
        }
        total
    }

    /// Lifetime count of deliveries handed across the partition cut.
    pub fn cross_domain_messages(&self) -> u64 {
        self.domains.iter().map(|s| s.exported_count()).sum()
    }

    /// Barrier rounds executed so far (0 for single-domain runs).
    pub fn barrier_rounds(&self) -> u64 {
        self.barrier_rounds
    }

    /// Borrow an agent for post-run inspection (from its owning domain).
    pub fn agent_as<T: Agent>(&self, id: AgentId) -> Option<&T> {
        self.domains[self.agent_domain[id.0 as usize] as usize].agent_as(id)
    }

    /// Mutably borrow an agent.
    pub fn agent_as_mut<T: Agent>(&mut self, id: AgentId) -> Option<&mut T> {
        self.domains[self.agent_domain[id.0 as usize] as usize].agent_as_mut(id)
    }

    /// Run until every domain's queue drains or `deadline` passes.
    /// Returns the time the run stopped.
    ///
    /// Single-domain runs execute inline (no threads, no barriers).
    /// Multi-domain runs execute the windowed barrier protocol; see the
    /// module docs for the safety argument.
    ///
    /// # Panics
    /// If an agent panics inside a worker, the panic does **not** deadlock
    /// sibling domains: the panicking worker poisons the barrier, every
    /// sibling unwinds its round loop cleanly, and the *original* panic
    /// payload is re-raised on the calling thread once the scope joins —
    /// exactly as a serial `run_until` would have panicked.
    pub fn run_until(&mut self, deadline: Time) -> Time {
        if self.domains.len() == 1 {
            if let Some(b) = self.budget {
                self.domains[0].set_budget(b);
            }
            let t = self.domains[0].run_until(deadline);
            self.terminated = self.domains[0].termination();
            return t;
        }
        if self.terminated.is_some() {
            // A budget limit already fired; the run stays terminated.
            return self.now();
        }
        let k = self.domains.len();
        let lookahead = self.partition.lookahead;
        let node_domain = &self.partition.node_domain;
        let budget = self.budget.unwrap_or_default();
        let max_events = budget.max_events;
        let cap_ns = budget.max_sim_time.map(|d| d.as_nanos());
        let wall_deadline = budget
            .max_wall_ms
            .map(|ms| Instant::now() + Duration::from_millis(ms));

        // Two time-vote slots used alternately by consecutive rounds, so
        // a round's votes never race the previous round's reads: every
        // conflicting access pair is separated by a barrier.
        let slots = [AtomicU64::new(u64::MAX), AtomicU64::new(u64::MAX)];
        let inboxes: Vec<Mutex<Vec<crate::engine::Xmsg>>> =
            (0..k).map(|_| Mutex::new(Vec::new())).collect();
        let barrier = PoisonBarrier::new(k);
        let rounds = AtomicU64::new(0);
        // Budget bookkeeping shared across domains. Both are written in
        // step (4) and read after barrier (5), so every domain sees the
        // same snapshot and reaches the same verdict in step (6).
        let fired_total = AtomicU64::new(0);
        let wall_flag = AtomicU64::new(0);
        let decided = AtomicU64::new(0);
        // The first panic payload, captured so the caller sees the
        // original message instead of scope's generic "a scoped thread
        // panicked" replacement.
        let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

        std::thread::scope(|scope| {
            for (d, sim) in self.domains.iter_mut().enumerate() {
                let slots = &slots;
                let inboxes = &inboxes;
                let barrier = &barrier;
                let rounds = &rounds;
                let fired_total = &fired_total;
                let wall_flag = &wall_flag;
                let decided = &decided;
                let panic_slot = &panic_slot;
                scope.spawn(move || {
                    // Delta-tracking base for the shared fired-event count.
                    // Starting at zero folds events from earlier resumed
                    // runs into the first round's delta, so `max_events`
                    // bounds the run's lifetime total exactly as the
                    // serial engine's per-event check does.
                    let mut fired_seen = 0u64;
                    let round_loop = move || -> Result<(), Poisoned> {
                        sim.start_agents();
                        let mut r: u64 = 0;
                        loop {
                            // (1) Deposit last window's cross-domain packets
                            // into the owners' inboxes.
                            for m in sim.take_outbox() {
                                let owner = node_domain[m.node.0 as usize] as usize;
                                inboxes[owner].lock().expect("inbox").push(m);
                            }
                            // (2) All deposits visible before anyone drains.
                            barrier.wait()?;
                            // (3) Inject everything addressed to this domain.
                            for m in std::mem::take(&mut *inboxes[d].lock().expect("inbox")) {
                                sim.inject(m);
                            }
                            // (4) Vote the post-injection earliest event time;
                            // pre-clear the other slot for the next round.
                            // Budget inputs ride the same write-then-barrier
                            // slot protocol as the votes.
                            let vote = sim.next_event_time().map_or(u64::MAX, |t| t.as_nanos());
                            slots[(r % 2) as usize].fetch_min(vote, Ordering::AcqRel);
                            slots[((r + 1) % 2) as usize].store(u64::MAX, Ordering::Release);
                            let fired_now = sim.events_processed();
                            fired_total.fetch_add(fired_now - fired_seen, Ordering::AcqRel);
                            fired_seen = fired_now;
                            if wall_deadline.is_some_and(|wd| Instant::now() >= wd) {
                                wall_flag.store(1, Ordering::Release);
                            }
                            // (5) All votes in before anyone reads the min.
                            barrier.wait()?;
                            let m = slots[(r % 2) as usize].load(Ordering::Acquire);
                            // (6) Decide — identically in every domain: the
                            // inputs were all published before barrier (5).
                            // Budget limits stop the run mid-flight; clean
                            // quiescence squares the clock up to the
                            // deadline. Outboxes are empty at any exit —
                            // the last pump's exports were deposited in (1)
                            // and injected in (3).
                            if max_events
                                .is_some_and(|max| fired_total.load(Ordering::Acquire) >= max)
                            {
                                decided
                                    .store(encode_stop(BudgetExceeded::Events), Ordering::Release);
                                break;
                            }
                            if wall_flag.load(Ordering::Acquire) != 0 {
                                decided.store(
                                    encode_stop(BudgetExceeded::WallClock),
                                    Ordering::Release,
                                );
                                break;
                            }
                            if m == u64::MAX || m > deadline.as_nanos() {
                                // Quiescent: nothing left inside the caller's
                                // horizon. Square the clock up — but never
                                // past a sim-time cap, matching the serial
                                // engine's budget semantics.
                                let square_to =
                                    cap_ns.map_or(deadline, |c| deadline.min(Time::from_nanos(c)));
                                sim.advance_clock(square_to);
                                break;
                            }
                            if let Some(cap) = cap_ns {
                                if m > cap {
                                    decided.store(
                                        encode_stop(BudgetExceeded::SimTime),
                                        Ordering::Release,
                                    );
                                    sim.advance_clock(Time::from_nanos(cap));
                                    break;
                                }
                            }
                            // (7) Pump one lookahead-aligned window. Every
                            // event in [W, W+L) is locally known (see module
                            // docs), and exports from this window arrive at
                            // ≥ W+L, i.e. in a later round's windows. A
                            // sim-time cap clips the window so no event past
                            // the cap ever dispatches.
                            let horizon =
                                cap_ns.map_or(deadline.as_nanos(), |c| c.min(deadline.as_nanos()));
                            let upto = match lookahead {
                                Dur::MAX => Time::from_nanos(horizon),
                                l => {
                                    let l = l.as_nanos();
                                    let w = m / l * l;
                                    Time::from_nanos(w.saturating_add(l - 1).min(horizon))
                                }
                            };
                            sim.pump(upto);
                            if d == 0 {
                                rounds.fetch_add(1, Ordering::Relaxed);
                            }
                            r += 1;
                        }
                        Ok(())
                    };
                    // A panicking agent unwinds through here. Capturing the
                    // payload (instead of letting it tear through the scope)
                    // lets us poison the barrier so sibling domains exit
                    // their round loops instead of waiting forever, then
                    // re-raise the original payload after the scope joins.
                    // `AssertUnwindSafe` is sound: on a captured panic the
                    // whole run is abandoned via `resume_unwind`, so no
                    // half-updated domain state is ever observed.
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(round_loop)) {
                        let mut slot = panic_slot.lock().unwrap_or_else(|e| e.into_inner());
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                        drop(slot);
                        barrier.poison();
                    }
                });
            }
        });
        if let Some(payload) = panic_slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
            resume_unwind(payload);
        }
        self.barrier_rounds += rounds.into_inner();
        self.terminated = decode_stop(decided.into_inner());
        self.now()
    }

    /// Run until no events remain anywhere.
    pub fn run_to_completion(&mut self) -> Time {
        self.run_until(Time::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    use crate::engine::{packet_to, Ctx};
    use crate::packet::{FlowId, Packet};
    use crate::queue::Capacity;
    use crate::topology::{parking_lot, ParkingLotSpec};

    /// Fires `count` packets at a peer, one per `gap`, counting echoes.
    struct Blaster {
        peer: NodeId,
        peer_port: u16,
        gap: Dur,
        remaining: u32,
        flow: FlowId,
        got: u32,
    }

    impl Agent for Blaster {
        fn start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer_after(Dur::ZERO, 0);
        }
        fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {
            self.got += 1;
        }
        fn on_timer(&mut self, _token: u64, ctx: &mut Ctx<'_>) {
            if self.remaining == 0 {
                return;
            }
            self.remaining -= 1;
            ctx.send(packet_to(self.peer, self.peer_port, 1, self.flow, 1000));
            ctx.set_timer_after(self.gap, 0);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Counts arrivals.
    #[derive(Default)]
    struct Sink {
        got: u32,
    }

    impl Agent for Sink {
        fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {
            self.got += 1;
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn lot() -> crate::topology::ParkingLot {
        parking_lot(&ParkingLotSpec {
            hops: 3,
            backbone_bps: 10_000_000,
            hop_delay: Dur::from_millis(5),
            capacity: Capacity::Packets(50),
            access_bps: 100_000_000,
        })
    }

    fn blast(k: u32) -> (u64, PacketCensus, Vec<TraceEvent>, u64, u64) {
        let l = lot();
        let mut sim = ParallelSimulator::new(l.topology.clone(), k);
        sim.enable_tracing();
        let (src, dst) = l.long_path;
        sim.add_agent(
            src,
            1,
            Box::new(Blaster {
                peer: dst,
                peer_port: 2,
                gap: Dur::from_millis(2),
                remaining: 200,
                flow: FlowId(7),
                got: 0,
            }),
        );
        let sink = sim.add_agent(dst, 2, Box::new(Sink::default()));
        for (i, &(s, d)) in l.cross.iter().enumerate() {
            sim.add_agent(
                s,
                1,
                Box::new(Blaster {
                    peer: d,
                    peer_port: 2,
                    gap: Dur::from_millis(3),
                    remaining: 100,
                    flow: FlowId(100 + i as u64),
                    got: 0,
                }),
            );
            sim.add_agent(d, 2, Box::new(Sink::default()));
        }
        sim.run_until(Time::from_secs(2));
        let census = sim.packet_census();
        assert!(census.conserved(), "census must conserve: {census:?}");
        let sunk = sim.agent_as::<Sink>(sink).unwrap().got as u64;
        (
            sim.events_processed(),
            census,
            sim.merged_trace(),
            sunk,
            sim.cross_domain_messages(),
        )
    }

    #[test]
    fn domain_counts_agree_bit_for_bit() {
        let (e1, c1, t1, s1, x1) = blast(1);
        assert_eq!(x1, 0, "one domain exports nothing");
        assert!(s1 > 0, "long-path traffic must arrive");
        for k in [2, 4] {
            let (e, c, t, s, x) = blast(k);
            assert_eq!(e, e1, "events processed differ at K={k}");
            assert_eq!(c, c1, "census differs at K={k}");
            assert_eq!(s, s1, "sink count differs at K={k}");
            assert_eq!(t, t1, "merged trace differs at K={k}");
            assert!(x > 0, "multihop at K={k} must cross domains");
        }
    }

    #[test]
    fn multi_domain_run_counts_barrier_rounds() {
        let l = lot();
        let mut sim = ParallelSimulator::new(l.topology.clone(), 2);
        let (src, dst) = l.long_path;
        sim.add_agent(
            src,
            1,
            Box::new(Blaster {
                peer: dst,
                peer_port: 2,
                gap: Dur::from_millis(5),
                remaining: 10,
                flow: FlowId(1),
                got: 0,
            }),
        );
        sim.add_agent(dst, 2, Box::new(Sink::default()));
        sim.run_until(Time::from_millis(500));
        assert!(sim.barrier_rounds() > 0);
        assert_eq!(sim.now(), Time::from_millis(500));
    }

    #[test]
    fn resumable_runs_match_single_run() {
        let run = |split: bool| {
            let l = lot();
            let mut sim = ParallelSimulator::new(l.topology.clone(), 2);
            let (src, dst) = l.long_path;
            sim.add_agent(
                src,
                1,
                Box::new(Blaster {
                    peer: dst,
                    peer_port: 2,
                    gap: Dur::from_millis(2),
                    remaining: 100,
                    flow: FlowId(1),
                    got: 0,
                }),
            );
            let sink = sim.add_agent(dst, 2, Box::new(Sink::default()));
            if split {
                sim.run_until(Time::from_millis(137));
                sim.run_until(Time::from_millis(800));
            } else {
                sim.run_until(Time::from_millis(800));
            }
            (
                sim.events_processed(),
                sim.agent_as::<Sink>(sink).unwrap().got,
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn env_override_parses() {
        // Only checks the parser; the variable itself is read by callers.
        assert_eq!("4".trim().parse::<u32>().ok(), Some(4));
    }

    /// Panics on its `fuse`-th timer tick; sends a packet per tick so the
    /// run does real cross-domain work up to the explosion.
    struct TimeBomb {
        peer: NodeId,
        peer_port: u16,
        gap: Dur,
        fuse: u32,
        ticks: u32,
    }

    impl Agent for TimeBomb {
        fn start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer_after(Dur::ZERO, 0);
        }
        fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
        fn on_timer(&mut self, _token: u64, ctx: &mut Ctx<'_>) {
            assert!(self.ticks < self.fuse, "time bomb exploded");
            self.ticks += 1;
            ctx.send(packet_to(self.peer, self.peer_port, 1, FlowId(9), 500));
            ctx.set_timer_after(self.gap, 0);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn worker_panic_propagates_with_payload_instead_of_deadlocking() {
        // Pre-fix this test hung forever: the panicking worker left its
        // siblings blocked in `Barrier::wait` and the scope never joined.
        let l = lot();
        let mut sim = ParallelSimulator::new(l.topology.clone(), 4);
        let (src, dst) = l.long_path;
        sim.add_agent(
            src,
            1,
            Box::new(TimeBomb {
                peer: dst,
                peer_port: 2,
                gap: Dur::from_millis(2),
                fuse: 40,
                ticks: 0,
            }),
        );
        sim.add_agent(dst, 2, Box::new(Sink::default()));
        // Keep every other domain busy so siblings really are mid-protocol
        // when the bomb goes off.
        for (i, &(s, d)) in l.cross.iter().enumerate() {
            sim.add_agent(
                s,
                1,
                Box::new(Blaster {
                    peer: d,
                    peer_port: 2,
                    gap: Dur::from_millis(1),
                    remaining: 500,
                    flow: FlowId(200 + i as u64),
                    got: 0,
                }),
            );
            sim.add_agent(d, 2, Box::new(Sink::default()));
        }
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.run_until(Time::from_secs(2));
        }))
        .expect_err("the agent panic must reach the caller");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .expect("panic payload should be a message");
        assert!(
            msg.contains("time bomb exploded"),
            "original payload lost: {msg:?}"
        );
    }

    fn budget_blast(
        k: u32,
        budget: RunBudget,
    ) -> (u64, Option<BudgetExceeded>, Time, PacketCensus) {
        let l = lot();
        let mut sim = ParallelSimulator::new(l.topology.clone(), k);
        let (src, dst) = l.long_path;
        sim.add_agent(
            src,
            1,
            Box::new(Blaster {
                peer: dst,
                peer_port: 2,
                gap: Dur::from_millis(2),
                remaining: 200,
                flow: FlowId(7),
                got: 0,
            }),
        );
        sim.add_agent(dst, 2, Box::new(Sink::default()));
        sim.set_budget(budget);
        let end = sim.run_until(Time::from_secs(2));
        (
            sim.events_processed(),
            sim.termination(),
            end,
            sim.packet_census(),
        )
    }

    #[test]
    fn sim_time_budget_is_domain_count_invariant() {
        let budget = RunBudget::sim_time(Dur::from_millis(100));
        let (e1, t1, end1, c1) = budget_blast(1, budget);
        assert_eq!(t1, Some(BudgetExceeded::SimTime));
        assert_eq!(end1, Time::from_millis(100));
        assert!(c1.conserved(), "census must conserve: {c1:?}");
        for k in [2, 4] {
            let (e, t, end, c) = budget_blast(k, budget);
            assert_eq!(t, Some(BudgetExceeded::SimTime), "at K={k}");
            assert_eq!(end, end1, "clock differs at K={k}");
            assert_eq!(e, e1, "events differ at K={k}");
            assert_eq!(c, c1, "census differs at K={k}");
        }
    }

    #[test]
    fn event_budget_stops_multi_domain_runs_at_a_window() {
        let (events, terminated, _, census) = budget_blast(2, RunBudget::events(300));
        assert_eq!(terminated, Some(BudgetExceeded::Events));
        // Window granularity: the run overshoots the limit by at most the
        // final window, but it does stop, and the ledgers still balance.
        assert!(events >= 300, "stopped before the limit: {events}");
        assert!(census.conserved(), "census must conserve: {census:?}");
        // A fresh unbudgeted run of the same scenario goes much further.
        let (full, none, _, _) = budget_blast(2, RunBudget::UNLIMITED);
        assert_eq!(none, None);
        assert!(full > events, "budget had no effect: {full} vs {events}");
    }

    #[test]
    fn budget_termination_is_sticky_across_runs() {
        let l = lot();
        let mut sim = ParallelSimulator::new(l.topology.clone(), 2);
        let (src, dst) = l.long_path;
        sim.add_agent(
            src,
            1,
            Box::new(Blaster {
                peer: dst,
                peer_port: 2,
                gap: Dur::from_millis(2),
                remaining: 200,
                flow: FlowId(7),
                got: 0,
            }),
        );
        sim.add_agent(dst, 2, Box::new(Sink::default()));
        sim.set_budget(RunBudget::events(100));
        sim.run_until(Time::from_secs(1));
        assert_eq!(sim.termination(), Some(BudgetExceeded::Events));
        let events = sim.events_processed();
        let now = sim.now();
        sim.run_until(Time::from_secs(2));
        assert_eq!(sim.events_processed(), events, "terminated run resumed");
        assert_eq!(sim.now(), now);
    }

    /// Partitioned runs can install non-drop-tail disciplines through
    /// the same [`DisciplineSpec`] factory path the serial engine's
    /// tests use — and the result stays bit-identical across domain
    /// counts (RED's drop decision hashes packet ids, which the
    /// parallel engine derives content-deterministically).
    #[test]
    fn red_disciplines_install_on_partitioned_runs() {
        use crate::queue::DisciplineSpec;

        let run = |k: u32| {
            let l = lot();
            let mut sim = ParallelSimulator::with_disciplines(l.topology.clone(), k, |_, spec| {
                DisciplineSpec::Red {
                    min_th: 1.0,
                    max_th: 4.0,
                    max_p: 1.0,
                }
                .build(spec.capacity)
            });
            let (src, dst) = l.long_path;
            sim.add_agent(
                src,
                1,
                Box::new(Blaster {
                    peer: dst,
                    peer_port: 2,
                    gap: Dur::from_micros(200),
                    remaining: 400,
                    flow: FlowId(7),
                    got: 0,
                }),
            );
            sim.add_agent(dst, 2, Box::new(Sink::default()));
            sim.run_until(Time::from_secs(2));
            let census = sim.packet_census();
            assert!(census.conserved(), "census must conserve: {census:?}");
            let dropped: u64 = (0..l.topology.link_count())
                .map(|i| sim.link_stats(LinkId(i as u32)).dropped)
                .sum();
            (sim.events_processed(), dropped)
        };

        let (e1, d1) = run(1);
        let (e2, d2) = run(2);
        assert!(d1 > 0, "RED thresholds this low must drop early");
        assert_eq!(e1, e2, "events diverged across domain counts");
        assert_eq!(d1, d2, "drops diverged across domain counts");
    }
}
