//! Conservative parallel discrete-event engine: domain-partitioned PDES.
//!
//! [`ParallelSimulator`] splits a topology into K domains (see
//! [`Partition`]), runs each domain's event loop on its own worker
//! thread, and exchanges cross-domain packets at barrier windows of
//! width `lookahead = min(cross-domain link delay)` — the classic
//! time-window scheme, which link propagation delays make safe with no
//! rollback:
//!
//! *Safety argument.* A packet crossing the partition cut during window
//! `[W, W + L)` leaves its domain at some `t < W + L` and arrives at
//! `t + delay ≥ t + L ≥ W + L` (fault-plane `extra` delay only adds).
//! So every message that can land inside a window is already sitting in
//! the receiving domain's queue before that window is pumped: each
//! domain processes its window against complete inputs, and the merged
//! execution is identical to the serial one-domain execution over the
//! same content-derived event keys.
//!
//! *Determinism contract.* The partition is computed from the topology
//! alone; event keys are content-derived (class, actor, per-agent
//! counters — see `Event::key_parts`); packet ids are partitioned by
//! agent; and trace buffers merge on [`TraceEvent::canonical_key`],
//! a total order over event content. Nothing observable depends on the
//! domain count or thread interleaving, so FNV trace digests,
//! [`PacketCensus`], and merged [`SchedStats`] conservation are
//! bit-identical for any `K`, including `K = 1`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};

use crate::engine::{Agent, PacketCensus, SchedStats, Simulator};
use crate::faults::{FaultStats, ImpairmentPlan};
use crate::packet::{AgentId, LinkId, NodeId};
use crate::queue::LinkQueue;
use crate::stats::LinkStats;
use crate::time::{Dur, Time};
use crate::topology::{LinkSpec, Partition, Topology};
use crate::trace::{SharedTraceCollector, TraceEvent};
use phi_workload::SeedRng;

/// Number of domains requested via the `PHI_DOMAINS` environment
/// variable, if set and valid (`None` otherwise).
pub fn domains_from_env() -> Option<u32> {
    std::env::var("PHI_DOMAINS").ok()?.trim().parse().ok()
}

/// A K-domain conservative parallel simulation.
///
/// Mirrors the [`Simulator`] API surface experiments use (agents,
/// impairments, tracing, stats) but runs `run_until` across worker
/// threads. With one domain it degrades to an inline serial run that
/// still uses the parallel engine's content-derived event keys, so
/// results for `K = 1` and `K > 1` are bit-identical.
pub struct ParallelSimulator {
    domains: Vec<Simulator<crate::engine::ParKey>>,
    partition: Partition,
    /// Owning domain of each global agent id.
    agent_domain: Vec<u32>,
    /// Per-domain shared trace buffers (present once tracing is enabled).
    trace_bufs: Vec<Arc<Mutex<Vec<TraceEvent>>>>,
    barrier_rounds: u64,
}

impl ParallelSimulator {
    /// Partition `topology` into (at most) `k` domains with drop-tail
    /// queues on every link, per the link specs.
    pub fn new(topology: Topology, k: u32) -> Self {
        ParallelSimulator::with_disciplines(topology, k, |_, spec| {
            LinkQueue::drop_tail(spec.capacity)
        })
    }

    /// Partition `topology` into (at most) `k` domains with a custom
    /// queueing discipline per link.
    ///
    /// The factory is invoked once per (domain, link) pair — every
    /// domain carries the full link array (foreign links stay inert) —
    /// so it must be deterministic in its arguments.
    pub fn with_disciplines(
        topology: Topology,
        k: u32,
        mut factory: impl FnMut(LinkId, &LinkSpec) -> LinkQueue,
    ) -> Self {
        let partition = Partition::compute(&topology, k);
        let domains = (0..partition.domains)
            .map(|d| {
                Simulator::for_domain(
                    topology.clone(),
                    |l, s| factory(l, s),
                    d,
                    partition.node_domain.clone(),
                )
            })
            .collect();
        ParallelSimulator {
            domains,
            partition,
            agent_domain: Vec::new(),
            trace_bufs: Vec::new(),
            barrier_rounds: 0,
        }
    }

    /// The partition in effect.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The topology under simulation.
    pub fn topology(&self) -> &Topology {
        self.domains[0].topology()
    }

    /// Attach an agent to `node`, listening on `port`. The agent lives
    /// in (and only runs on) the domain that owns `node`; every other
    /// domain records a placeholder so agent ids stay globally aligned.
    ///
    /// # Panics
    /// Panics if `(node, port)` is already bound or the sim has started.
    pub fn add_agent(&mut self, node: NodeId, port: u16, agent: Box<dyn Agent>) -> AgentId {
        let id = AgentId(self.agent_domain.len() as u32);
        let owner = self.partition.domain_of(node);
        self.agent_domain.push(owner);
        let mut agent = Some(agent);
        for (d, sim) in self.domains.iter_mut().enumerate() {
            let a = if d as u32 == owner {
                agent.take()
            } else {
                None
            };
            sim.add_agent_slot(id, node, port, a);
        }
        id
    }

    /// Install a fault-injection [`ImpairmentPlan`] on `link`, in the
    /// domain that owns the link's source node — the only domain that
    /// ever transmits on it, so egress verdicts and edge events stay
    /// domain-local and the impairment trace is unchanged by K.
    pub fn install_impairments(&mut self, link: LinkId, plan: ImpairmentPlan, root: &SeedRng) {
        let owner = self.link_owner(link);
        self.domains[owner].install_impairments(link, plan, root);
    }

    /// Per-link chaos-plane counters; all-zero when no plan is installed.
    pub fn fault_stats(&self, link: LinkId) -> FaultStats {
        self.domains[self.link_owner(link)].fault_stats(link)
    }

    /// Whether `link` is currently up (always true without a plan).
    pub fn link_is_up(&self, link: LinkId) -> bool {
        self.domains[self.link_owner(link)].link_is_up(link)
    }

    /// Statistics of one link, read from its owning domain.
    pub fn link_stats(&self, link: LinkId) -> &LinkStats {
        self.domains[self.link_owner(link)].link_stats(link)
    }

    fn link_owner(&self, link: LinkId) -> usize {
        let from = self.domains[0].topology().link(link).from;
        self.partition.domain_of(from) as usize
    }

    /// Install a [`SharedTraceCollector`] on every domain. Call before
    /// the run; read the canonical merged sequence with
    /// [`ParallelSimulator::merged_trace`] afterwards.
    pub fn enable_tracing(&mut self) {
        self.trace_bufs.clear();
        for sim in &mut self.domains {
            let (tracer, buf) = SharedTraceCollector::new();
            sim.set_tracer(tracer);
            self.trace_bufs.push(buf);
        }
    }

    /// The canonical merged trace: per-domain buffers concatenated and
    /// sorted by [`TraceEvent::canonical_key`]. The key covers every
    /// field, so ties are byte-identical records and the merged order is
    /// independent of the domain count (the sort is applied for `K = 1`
    /// too, so all K agree). Empty unless tracing was enabled.
    pub fn merged_trace(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = self
            .trace_bufs
            .iter()
            .flat_map(|b| b.lock().expect("trace buffer").clone())
            .collect();
        all.sort_by_key(|e| e.canonical_key());
        all
    }

    /// Current simulated time (domains agree between runs).
    pub fn now(&self) -> Time {
        self.domains.iter().map(|s| s.now()).max().expect("k >= 1")
    }

    /// Total events dispatched, summed over domains.
    pub fn events_processed(&self) -> u64 {
        self.domains.iter().map(|s| s.events_processed()).sum()
    }

    /// Packets that reached a node with no agent bound to their port.
    pub fn undeliverable(&self) -> u64 {
        self.domains.iter().map(|s| s.undeliverable()).sum()
    }

    /// Scheduler accounting summed over domains. The conservation
    /// identity `scheduled == fired + skipped_stale + pending` holds for
    /// the sum exactly as it does per domain. `peak_pending` is the sum
    /// of per-domain peaks (an upper bound on the true global peak) and,
    /// like `overflowed`, depends on how events spread across domain
    /// wheels — those two fields are the only ones not invariant in K.
    pub fn sched_stats(&self) -> SchedStats {
        let mut total = SchedStats::default();
        for s in self.domains.iter().map(|d| d.sched_stats()) {
            total.scheduled += s.scheduled;
            total.fired += s.fired;
            total.skipped_stale += s.skipped_stale;
            total.cancelled += s.cancelled;
            total.overflowed += s.overflowed;
            total.peak_pending += s.peak_pending;
            total.pending += s.pending;
        }
        total
    }

    /// Packet census summed over domains. Between runs every packet is
    /// in exactly one domain (cross-domain mailboxes are provably empty
    /// at a barrier-loop exit), so the summed census conserves exactly
    /// as the serial one does.
    pub fn packet_census(&self) -> PacketCensus {
        let mut total = self.domains[0].packet_census();
        for c in self.domains[1..].iter().map(|d| d.packet_census()) {
            total.injected += c.injected;
            total.delivered += c.delivered;
            total.dropped += c.dropped;
            total.undeliverable += c.undeliverable;
            total.corrupted += c.corrupted;
            total.duplicated += c.duplicated;
            total.blackholed += c.blackholed;
            total.queued += c.queued;
            total.in_flight += c.in_flight;
        }
        total
    }

    /// Lifetime count of deliveries handed across the partition cut.
    pub fn cross_domain_messages(&self) -> u64 {
        self.domains.iter().map(|s| s.exported_count()).sum()
    }

    /// Barrier rounds executed so far (0 for single-domain runs).
    pub fn barrier_rounds(&self) -> u64 {
        self.barrier_rounds
    }

    /// Borrow an agent for post-run inspection (from its owning domain).
    pub fn agent_as<T: Agent>(&self, id: AgentId) -> Option<&T> {
        self.domains[self.agent_domain[id.0 as usize] as usize].agent_as(id)
    }

    /// Mutably borrow an agent.
    pub fn agent_as_mut<T: Agent>(&mut self, id: AgentId) -> Option<&mut T> {
        self.domains[self.agent_domain[id.0 as usize] as usize].agent_as_mut(id)
    }

    /// Run until every domain's queue drains or `deadline` passes.
    /// Returns the time the run stopped.
    ///
    /// Single-domain runs execute inline (no threads, no barriers).
    /// Multi-domain runs execute the windowed barrier protocol; see the
    /// module docs for the safety argument.
    pub fn run_until(&mut self, deadline: Time) -> Time {
        if self.domains.len() == 1 {
            return self.domains[0].run_until(deadline);
        }
        let k = self.domains.len();
        let lookahead = self.partition.lookahead;
        let node_domain = &self.partition.node_domain;

        // Two time-vote slots used alternately by consecutive rounds, so
        // a round's votes never race the previous round's reads: every
        // conflicting access pair is separated by a barrier.
        let slots = [AtomicU64::new(u64::MAX), AtomicU64::new(u64::MAX)];
        let inboxes: Vec<Mutex<Vec<crate::engine::Xmsg>>> =
            (0..k).map(|_| Mutex::new(Vec::new())).collect();
        let barrier = Barrier::new(k);
        let rounds = AtomicU64::new(0);

        std::thread::scope(|scope| {
            for (d, sim) in self.domains.iter_mut().enumerate() {
                let slots = &slots;
                let inboxes = &inboxes;
                let barrier = &barrier;
                let rounds = &rounds;
                scope.spawn(move || {
                    sim.start_agents();
                    let mut r: u64 = 0;
                    loop {
                        // (1) Deposit last window's cross-domain packets
                        // into the owners' inboxes.
                        for m in sim.take_outbox() {
                            let owner = node_domain[m.node.0 as usize] as usize;
                            inboxes[owner].lock().expect("inbox").push(m);
                        }
                        // (2) All deposits visible before anyone drains.
                        barrier.wait();
                        // (3) Inject everything addressed to this domain.
                        for m in std::mem::take(&mut *inboxes[d].lock().expect("inbox")) {
                            sim.inject(m);
                        }
                        // (4) Vote the post-injection earliest event time;
                        // pre-clear the other slot for the next round.
                        let vote = sim.next_event_time().map_or(u64::MAX, |t| t.as_nanos());
                        slots[(r % 2) as usize].fetch_min(vote, Ordering::AcqRel);
                        slots[((r + 1) % 2) as usize].store(u64::MAX, Ordering::Release);
                        // (5) All votes in before anyone reads the min.
                        barrier.wait();
                        let m = slots[(r % 2) as usize].load(Ordering::Acquire);
                        // (6) Quiescent (or out of budget): square up the
                        // clock and stop. Outboxes are empty here — the
                        // last pump's exports were deposited in step (1)
                        // and injected in step (3), and votes still said
                        // nothing is pending before the deadline.
                        if m == u64::MAX || m > deadline.as_nanos() {
                            sim.advance_clock(deadline);
                            break;
                        }
                        // (7) Pump one lookahead-aligned window. Every
                        // event in [W, W+L) is locally known (see module
                        // docs), and exports from this window arrive at
                        // ≥ W+L, i.e. in a later round's windows.
                        let upto = match lookahead {
                            Dur::MAX => deadline,
                            l => {
                                let l = l.as_nanos();
                                let w = m / l * l;
                                Time::from_nanos(w.saturating_add(l - 1).min(deadline.as_nanos()))
                            }
                        };
                        sim.pump(upto);
                        if d == 0 {
                            rounds.fetch_add(1, Ordering::Relaxed);
                        }
                        r += 1;
                    }
                });
            }
        });
        self.barrier_rounds += rounds.into_inner();
        self.now()
    }

    /// Run until no events remain anywhere.
    pub fn run_to_completion(&mut self) -> Time {
        self.run_until(Time::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    use crate::engine::{packet_to, Ctx};
    use crate::packet::{FlowId, Packet};
    use crate::queue::Capacity;
    use crate::topology::{parking_lot, ParkingLotSpec};

    /// Fires `count` packets at a peer, one per `gap`, counting echoes.
    struct Blaster {
        peer: NodeId,
        peer_port: u16,
        gap: Dur,
        remaining: u32,
        flow: FlowId,
        got: u32,
    }

    impl Agent for Blaster {
        fn start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer_after(Dur::ZERO, 0);
        }
        fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {
            self.got += 1;
        }
        fn on_timer(&mut self, _token: u64, ctx: &mut Ctx<'_>) {
            if self.remaining == 0 {
                return;
            }
            self.remaining -= 1;
            ctx.send(packet_to(self.peer, self.peer_port, 1, self.flow, 1000));
            ctx.set_timer_after(self.gap, 0);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Counts arrivals.
    #[derive(Default)]
    struct Sink {
        got: u32,
    }

    impl Agent for Sink {
        fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {
            self.got += 1;
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn lot() -> crate::topology::ParkingLot {
        parking_lot(&ParkingLotSpec {
            hops: 3,
            backbone_bps: 10_000_000,
            hop_delay: Dur::from_millis(5),
            capacity: Capacity::Packets(50),
            access_bps: 100_000_000,
        })
    }

    fn blast(k: u32) -> (u64, PacketCensus, Vec<TraceEvent>, u64, u64) {
        let l = lot();
        let mut sim = ParallelSimulator::new(l.topology.clone(), k);
        sim.enable_tracing();
        let (src, dst) = l.long_path;
        sim.add_agent(
            src,
            1,
            Box::new(Blaster {
                peer: dst,
                peer_port: 2,
                gap: Dur::from_millis(2),
                remaining: 200,
                flow: FlowId(7),
                got: 0,
            }),
        );
        let sink = sim.add_agent(dst, 2, Box::new(Sink::default()));
        for (i, &(s, d)) in l.cross.iter().enumerate() {
            sim.add_agent(
                s,
                1,
                Box::new(Blaster {
                    peer: d,
                    peer_port: 2,
                    gap: Dur::from_millis(3),
                    remaining: 100,
                    flow: FlowId(100 + i as u64),
                    got: 0,
                }),
            );
            sim.add_agent(d, 2, Box::new(Sink::default()));
        }
        sim.run_until(Time::from_secs(2));
        let census = sim.packet_census();
        assert!(census.conserved(), "census must conserve: {census:?}");
        let sunk = sim.agent_as::<Sink>(sink).unwrap().got as u64;
        (
            sim.events_processed(),
            census,
            sim.merged_trace(),
            sunk,
            sim.cross_domain_messages(),
        )
    }

    #[test]
    fn domain_counts_agree_bit_for_bit() {
        let (e1, c1, t1, s1, x1) = blast(1);
        assert_eq!(x1, 0, "one domain exports nothing");
        assert!(s1 > 0, "long-path traffic must arrive");
        for k in [2, 4] {
            let (e, c, t, s, x) = blast(k);
            assert_eq!(e, e1, "events processed differ at K={k}");
            assert_eq!(c, c1, "census differs at K={k}");
            assert_eq!(s, s1, "sink count differs at K={k}");
            assert_eq!(t, t1, "merged trace differs at K={k}");
            assert!(x > 0, "multihop at K={k} must cross domains");
        }
    }

    #[test]
    fn multi_domain_run_counts_barrier_rounds() {
        let l = lot();
        let mut sim = ParallelSimulator::new(l.topology.clone(), 2);
        let (src, dst) = l.long_path;
        sim.add_agent(
            src,
            1,
            Box::new(Blaster {
                peer: dst,
                peer_port: 2,
                gap: Dur::from_millis(5),
                remaining: 10,
                flow: FlowId(1),
                got: 0,
            }),
        );
        sim.add_agent(dst, 2, Box::new(Sink::default()));
        sim.run_until(Time::from_millis(500));
        assert!(sim.barrier_rounds() > 0);
        assert_eq!(sim.now(), Time::from_millis(500));
    }

    #[test]
    fn resumable_runs_match_single_run() {
        let run = |split: bool| {
            let l = lot();
            let mut sim = ParallelSimulator::new(l.topology.clone(), 2);
            let (src, dst) = l.long_path;
            sim.add_agent(
                src,
                1,
                Box::new(Blaster {
                    peer: dst,
                    peer_port: 2,
                    gap: Dur::from_millis(2),
                    remaining: 100,
                    flow: FlowId(1),
                    got: 0,
                }),
            );
            let sink = sim.add_agent(dst, 2, Box::new(Sink::default()));
            if split {
                sim.run_until(Time::from_millis(137));
                sim.run_until(Time::from_millis(800));
            } else {
                sim.run_until(Time::from_millis(800));
            }
            (
                sim.events_processed(),
                sim.agent_as::<Sink>(sink).unwrap().got,
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn env_override_parses() {
        // Only checks the parser; the variable itself is read by callers.
        assert_eq!("4".trim().parse::<u32>().ok(), Some(4));
    }
}
