//! Shared-buffer switch model: Dynamic-Threshold admission, ECN marking,
//! and PFC backpressure with a pause-storm watchdog.
//!
//! The WAN scenarios in this repo treat every link queue as an island
//! with its own private buffer. Datacenter switches do not work that
//! way: all egress ports draw from **one shared buffer pool**, admission
//! is governed by the Dynamic-Threshold (DT) algorithm (Choudhury &
//! Hahne '98), congestion is signalled by **ECN marks** instead of (or
//! before) drops, and lossless fabrics add **PFC** PAUSE frames per
//! ingress — which introduces head-of-line blocking and, in the worst
//! case, cyclic buffer dependencies that deadlock the fabric. A
//! deterministic **watchdog** detects sustained pause and breaks the
//! cycle with a census-accounted drain, mirroring the pause-storm
//! watchdogs production fabrics deploy.
//!
//! Installing a [`SwitchSpec`] on a node (see
//! `Simulator::install_switch`) layers this model over the node's
//! egress link queues:
//!
//! * **DT admission** — a packet bound for egress port *i* is admitted
//!   iff `q_i + size ≤ α · (B − ΣQ)` and `ΣQ + size ≤ B`, where `B` is
//!   the pool and `ΣQ` the total occupancy. Rejections count as queue
//!   drops on the egress link (and as `shared_drops` in
//!   [`SwitchStats`]).
//! * **ECN marking** — on admission of an ECN-capable (`ECT`) packet,
//!   the egress queue length is compared against [`EcnSpec`]: below
//!   `min_bytes` never mark, above `max_bytes` always mark, in between
//!   mark with linearly rising probability (RED-style). A step marking
//!   threshold (DCTCP's `K`) is the degenerate `min == max` case.
//!   The probabilistic draw hashes the packet id, so marking is
//!   deterministic and bit-identical for any domain count.
//! * **PFC** — per-ingress occupancy is tracked by attributing each
//!   admitted packet to the link it arrived on. Crossing
//!   [`PfcSpec::xoff_bytes`] sends a PAUSE upstream (taking effect one
//!   propagation delay later); falling to [`PfcSpec::xon_bytes`]
//!   resumes. A paused link finishes the frame in flight but starts no
//!   new serialization — head-of-line blocking emerges naturally.
//! * **Watchdog** — every PAUSE arms a deterministic watchdog timer; if
//!   the ingress is still continuously paused when it fires (a pause
//!   storm or a cyclic buffer dependency), the switch drains its egress
//!   queues (ascending link id, FIFO order) until the stuck ingress
//!   clears its resume threshold, counts the victims as `pfc_dropped`,
//!   and force-resumes — bounding deadlock to one watchdog period.
//!
//! Determinism contract: admission, marking, pause edges, and watchdog
//! drains are pure functions of the (deterministic) event order and
//! packet contents. Pause frames crossing a partition cut ride the same
//! barrier mailboxes as packets, and a cut link's propagation delay is
//! at least the lookahead, so parallel runs are bit-identical for any
//! domain count.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::packet::{LinkId, NodeId, Packet};
use crate::time::Dur;
use crate::topology::Topology;

/// ECN marking policy for one switch, in bytes of egress-queue depth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EcnSpec {
    /// Queue depth below which arrivals are never marked.
    pub min_bytes: u64,
    /// Queue depth at or above which every ECT arrival is marked. With
    /// `min_bytes == max_bytes` this is a DCTCP-style step threshold.
    pub max_bytes: u64,
}

impl EcnSpec {
    /// A DCTCP-style step threshold: mark every ECT arrival that finds
    /// at least `k_bytes` queued at its egress port.
    pub fn step(k_bytes: u64) -> Self {
        EcnSpec {
            min_bytes: k_bytes,
            max_bytes: k_bytes,
        }
    }

    /// Whether an ECT packet arriving to `queued` bytes is marked.
    /// Deterministic: the in-between band hashes the packet id.
    pub fn marks(&self, queued: u64, pkt_id: u64) -> bool {
        if queued < self.min_bytes {
            return false;
        }
        if queued >= self.max_bytes {
            return true;
        }
        let p = (queued - self.min_bytes) as f64 / (self.max_bytes - self.min_bytes) as f64;
        unit_hash(pkt_id ^ ECN_SALT) < p
    }
}

/// PFC configuration for one switch (single priority class: each link
/// is one port/priority lane).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PfcSpec {
    /// Per-ingress occupancy at which a PAUSE is sent upstream.
    pub xoff_bytes: u64,
    /// Per-ingress occupancy at or below which a RESUME is sent.
    pub xon_bytes: u64,
    /// Continuous-pause duration after which the watchdog declares a
    /// pause storm (or deadlock cycle) and fires the drain.
    pub watchdog: Dur,
}

/// A shared-buffer switch installed on one node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchSpec {
    /// Total shared buffer pool, bytes, across all egress ports.
    pub pool_bytes: u64,
    /// Dynamic-Threshold α: an egress port may occupy at most
    /// `α · (pool − total occupancy)` bytes.
    pub dt_alpha: f64,
    /// ECN marking policy, if any.
    #[serde(default)]
    pub ecn: Option<EcnSpec>,
    /// PFC pause/resume policy, if any.
    #[serde(default)]
    pub pfc: Option<PfcSpec>,
}

impl SwitchSpec {
    /// A shared buffer of `pool_bytes` under DT admission with `α = 1`,
    /// no ECN, no PFC.
    pub fn shared(pool_bytes: u64) -> Self {
        SwitchSpec {
            pool_bytes,
            dt_alpha: 1.0,
            ecn: None,
            pfc: None,
        }
    }

    /// Builder: set the DT α.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.dt_alpha = alpha;
        self
    }

    /// Builder: enable ECN marking.
    pub fn with_ecn(mut self, ecn: EcnSpec) -> Self {
        self.ecn = Some(ecn);
        self
    }

    /// Builder: enable PFC.
    pub fn with_pfc(mut self, pfc: PfcSpec) -> Self {
        self.pfc = Some(pfc);
        self
    }
}

/// Per-switch counters, `fault_stats()`-style: all-zero when nothing
/// noteworthy happened, readable mid-run or after completion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchStats {
    /// Packets admitted to the shared buffer.
    pub admitted: u64,
    /// Packets rejected by DT/pool admission (also counted as drops on
    /// the egress link).
    pub shared_drops: u64,
    /// ECT packets marked Congestion Experienced on admission.
    pub ecn_marked: u64,
    /// PAUSE (XOFF) frames sent upstream.
    pub pauses: u64,
    /// RESUME (XON) frames sent upstream.
    pub resumes: u64,
    /// Watchdog firings (pause storms / deadlock cycles broken).
    pub watchdog_fires: u64,
    /// Packets destroyed by watchdog drains.
    pub pfc_dropped: u64,
}

const ECN_SALT: u64 = 0xEC4E_11AB_5EED_0001;

/// SplitMix64 of `x`, folded to a unit float in `[0, 1)`.
fn unit_hash(x: u64) -> f64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// The Dynamic-Threshold shared-buffer admission core: one pool, one
/// occupancy counter per egress port. Exposed publicly so property
/// tests can hammer the invariant (total occupancy never exceeds the
/// pool under any arrival/drain interleaving) without driving a full
/// simulation.
#[derive(Debug, Clone)]
pub struct SharedBuffer {
    pool: u64,
    alpha: f64,
    total: u64,
    ports: Vec<u64>,
}

impl SharedBuffer {
    /// A pool of `pool_bytes` shared by `ports` egress ports under DT
    /// parameter `alpha`.
    ///
    /// # Panics
    /// Panics if the pool is zero or `alpha` is not positive.
    pub fn new(pool_bytes: u64, alpha: f64, ports: usize) -> Self {
        assert!(pool_bytes > 0, "pool must be positive");
        assert!(alpha > 0.0, "DT alpha must be positive");
        SharedBuffer {
            pool: pool_bytes,
            alpha,
            total: 0,
            ports: vec![0; ports],
        }
    }

    /// Try to admit `bytes` to `port`: true and accounted on success,
    /// false (state unchanged) on a DT or pool rejection.
    pub fn try_admit(&mut self, port: usize, bytes: u32) -> bool {
        let bytes = u64::from(bytes);
        let free = self.pool - self.total;
        if self.total + bytes > self.pool {
            return false;
        }
        let threshold = self.alpha * free as f64;
        if (self.ports[port] + bytes) as f64 > threshold {
            return false;
        }
        self.total += bytes;
        self.ports[port] += bytes;
        true
    }

    /// Release `bytes` previously admitted to `port`.
    pub fn release(&mut self, port: usize, bytes: u32) {
        let bytes = u64::from(bytes);
        debug_assert!(self.ports[port] >= bytes && self.total >= bytes);
        self.ports[port] -= bytes;
        self.total -= bytes;
    }

    /// Total occupancy, bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total
    }

    /// Occupancy of one port, bytes.
    pub fn port_bytes(&self, port: usize) -> u64 {
        self.ports[port]
    }

    /// The configured pool size, bytes.
    pub fn pool_bytes(&self) -> u64 {
        self.pool
    }
}

/// A pause-plane transition produced by switch accounting; the engine
/// turns these into scheduled PAUSE/RESUME frames (one propagation
/// delay upstream) and watchdog timers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PfcEdge {
    /// Send PAUSE upstream on `link` and arm the watchdog.
    Xoff {
        /// The ingress link to pause.
        link: LinkId,
        /// Deterministic per-link edge counter (event tie-break key).
        seq: u64,
        /// Epoch validating the matching watchdog timer.
        epoch: u64,
        /// Watchdog delay to arm.
        watchdog: Dur,
    },
    /// Send RESUME upstream on `link`.
    Xon {
        /// The ingress link to resume.
        link: LinkId,
        /// Deterministic per-link edge counter (event tie-break key).
        seq: u64,
    },
}

/// Outcome of offering a packet to switch admission.
pub(crate) enum AdmitOutcome {
    /// DT/pool rejection: the caller drops the packet.
    Rejected,
    /// Admitted (and accounted); possibly with a pause edge to emit.
    Admitted(Option<PfcEdge>),
}

/// In-pool attribution of one packet id: which ingress it arrived on
/// and how many identical copies are pooled (fault-plane duplicates
/// share ids).
#[derive(Debug, Clone, Copy)]
struct PoolEntry {
    ingress: u32,
    count: u32,
}

/// Engine-side runtime state of one installed switch.
#[derive(Debug)]
pub(crate) struct SwitchState {
    pub(crate) spec: SwitchSpec,
    buffer: SharedBuffer,
    /// Egress links of this node, ascending id (port index order).
    egress: Vec<LinkId>,
    /// Egress link id → port index.
    port_of: HashMap<u32, usize>,
    /// Ingress links of this node, ascending id.
    ingress: Vec<LinkId>,
    /// Ingress link id → ingress index.
    ing_of: HashMap<u32, usize>,
    /// Pooled bytes attributed to each ingress.
    ing_bytes: Vec<u64>,
    /// Whether an XOFF is outstanding toward each ingress.
    ing_paused: Vec<bool>,
    /// Per-ingress pause-edge counter: bumped on every XOFF and XON
    /// decision. Doubles as the watchdog epoch.
    pause_seq: Vec<u64>,
    /// Packet id → ingress attribution for pooled packets.
    in_pool: HashMap<u64, PoolEntry>,
    pub(crate) stats: SwitchStats,
}

const NO_INGRESS: u32 = u32::MAX;

impl SwitchState {
    pub(crate) fn new(node: NodeId, spec: SwitchSpec, topology: &Topology) -> Self {
        if let Some(p) = &spec.pfc {
            assert!(
                p.xon_bytes <= p.xoff_bytes,
                "PFC resume threshold must not exceed the pause threshold"
            );
            assert!(!p.watchdog.is_zero(), "PFC watchdog must be positive");
        }
        let mut egress = Vec::new();
        let mut ingress = Vec::new();
        for (idx, l) in topology.links().iter().enumerate() {
            if l.from == node {
                egress.push(LinkId(idx as u32));
            }
            if l.to == node {
                ingress.push(LinkId(idx as u32));
            }
        }
        let port_of = egress.iter().enumerate().map(|(i, l)| (l.0, i)).collect();
        let ing_of = ingress.iter().enumerate().map(|(i, l)| (l.0, i)).collect();
        let n_ing = ingress.len();
        SwitchState {
            buffer: SharedBuffer::new(spec.pool_bytes, spec.dt_alpha, egress.len()),
            spec,
            egress,
            port_of,
            ingress,
            ing_of,
            ing_bytes: vec![0; n_ing],
            ing_paused: vec![false; n_ing],
            pause_seq: vec![0; n_ing],
            in_pool: HashMap::new(),
            stats: SwitchStats::default(),
        }
    }

    /// Offer `pkt` (bound for `egress`, having arrived on `via`) to DT
    /// admission. On success the packet is accounted (and possibly
    /// CE-marked in place) and an XOFF edge may be returned.
    pub(crate) fn admit(&mut self, egress: LinkId, via: LinkId, pkt: &mut Packet) -> AdmitOutcome {
        let port = self.port_of[&egress.0];
        let queued = self.buffer.port_bytes(port);
        if !self.buffer.try_admit(port, pkt.size) {
            self.stats.shared_drops += 1;
            return AdmitOutcome::Rejected;
        }
        self.stats.admitted += 1;
        if let Some(ecn) = &self.spec.ecn {
            if pkt.is_ect() && ecn.marks(queued, pkt.id) {
                pkt.flags = pkt.flags.union(crate::packet::Flags::CE);
                self.stats.ecn_marked += 1;
            }
        }
        let mut edge = None;
        if let Some(pfc) = &self.spec.pfc {
            if let Some(&i) = self.ing_of.get(&via.0) {
                self.in_pool
                    .entry(pkt.id)
                    .and_modify(|e| e.count += 1)
                    .or_insert(PoolEntry {
                        ingress: i as u32,
                        count: 1,
                    });
                self.ing_bytes[i] += u64::from(pkt.size);
                if !self.ing_paused[i] && self.ing_bytes[i] >= pfc.xoff_bytes {
                    self.ing_paused[i] = true;
                    self.pause_seq[i] += 1;
                    self.stats.pauses += 1;
                    edge = Some(PfcEdge::Xoff {
                        link: self.ingress[i],
                        seq: self.pause_seq[i],
                        epoch: self.pause_seq[i],
                        watchdog: pfc.watchdog,
                    });
                }
            }
        }
        AdmitOutcome::Admitted(edge)
    }

    /// Release a pooled packet (it started serializing on `egress`, or
    /// the egress queue refused it after admission). May return an XON
    /// edge when the packet's ingress falls to the resume threshold.
    pub(crate) fn release(&mut self, egress: LinkId, pkt: &Packet) -> Option<PfcEdge> {
        let port = self.port_of[&egress.0];
        self.buffer.release(port, pkt.size);
        let i = self.detach_ingress(pkt)?;
        let pfc = self.spec.pfc.as_ref()?;
        if self.ing_paused[i] && self.ing_bytes[i] <= pfc.xon_bytes {
            self.ing_paused[i] = false;
            self.pause_seq[i] += 1;
            self.stats.resumes += 1;
            return Some(PfcEdge::Xon {
                link: self.ingress[i],
                seq: self.pause_seq[i],
            });
        }
        None
    }

    /// Remove one pooled copy of `pkt` from its ingress attribution,
    /// returning the ingress index (if the packet was attributed).
    fn detach_ingress(&mut self, pkt: &Packet) -> Option<usize> {
        let e = self.in_pool.get_mut(&pkt.id)?;
        let i = e.ingress as usize;
        e.count -= 1;
        if e.count == 0 {
            self.in_pool.remove(&pkt.id);
        }
        debug_assert!(i != NO_INGRESS as usize);
        self.ing_bytes[i] -= u64::from(pkt.size);
        Some(i)
    }

    /// Whether the watchdog timer `(link, epoch)` is still valid: the
    /// ingress has been continuously paused since the XOFF that armed it.
    pub(crate) fn watchdog_pending(&self, link: LinkId, epoch: u64) -> bool {
        match self.ing_of.get(&link.0) {
            Some(&i) => self.ing_paused[i] && self.pause_seq[i] == epoch,
            None => false,
        }
    }

    /// Count one watchdog firing (a pause storm declared).
    pub(crate) fn note_watchdog_fire(&mut self) {
        self.stats.watchdog_fires += 1;
    }

    /// Release accounting for a packet destroyed by a watchdog drain.
    pub(crate) fn drain_release(&mut self, egress: LinkId, pkt: &Packet) {
        let port = self.port_of[&egress.0];
        self.buffer.release(port, pkt.size);
        self.detach_ingress(pkt);
        self.stats.pfc_dropped += 1;
    }

    /// After a watchdog drain: force-resume the stuck ingress and any
    /// other paused ingress now at or below the resume threshold.
    pub(crate) fn watchdog_resumes(&mut self, stuck: LinkId) -> Vec<PfcEdge> {
        let Some(pfc) = self.spec.pfc else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for i in 0..self.ingress.len() {
            if self.ing_paused[i]
                && (self.ingress[i] == stuck || self.ing_bytes[i] <= pfc.xon_bytes)
            {
                self.ing_paused[i] = false;
                self.pause_seq[i] += 1;
                self.stats.resumes += 1;
                out.push(PfcEdge::Xon {
                    link: self.ingress[i],
                    seq: self.pause_seq[i],
                });
            }
        }
        out
    }

    /// Pooled bytes attributed to ingress `link` (0 if not an ingress).
    pub(crate) fn ingress_bytes(&self, link: LinkId) -> u64 {
        self.ing_of.get(&link.0).map_or(0, |&i| self.ing_bytes[i])
    }

    /// Egress links of this switch, ascending id.
    pub(crate) fn egress_links(&self) -> &[LinkId] {
        &self.egress
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dt_threshold_shrinks_as_pool_fills() {
        // α = 1, pool 10_000: an empty pool admits up to 5_000 per port
        // (threshold equals free space, which shrinks as you admit).
        let mut b = SharedBuffer::new(10_000, 1.0, 2);
        let mut admitted = 0u64;
        while b.try_admit(0, 1_000) {
            admitted += 1_000;
        }
        // q0 + 1000 > 1.0 * (10_000 - q0) first fails at q0 = 5_000.
        assert_eq!(admitted, 5_000);
        // The other port still gets a (smaller) share.
        assert!(b.try_admit(1, 1_000));
        assert!(b.total_bytes() <= b.pool_bytes());
    }

    #[test]
    fn dt_never_exceeds_pool_even_with_large_alpha() {
        let mut b = SharedBuffer::new(5_000, 64.0, 1);
        while b.try_admit(0, 999) {}
        assert!(b.total_bytes() <= 5_000);
        // Release makes room again.
        b.release(0, 999);
        assert!(b.try_admit(0, 999));
        assert!(b.total_bytes() <= 5_000);
    }

    #[test]
    fn ecn_step_marks_at_and_above_k() {
        let e = EcnSpec::step(30_000);
        assert!(!e.marks(29_999, 7));
        assert!(e.marks(30_000, 7));
        assert!(e.marks(1 << 40, 7));
    }

    #[test]
    fn ecn_ramp_is_deterministic_and_monotone_in_expectation() {
        let e = EcnSpec {
            min_bytes: 10_000,
            max_bytes: 50_000,
        };
        assert!(!e.marks(9_999, 1));
        assert!(e.marks(50_000, 1));
        let frac = |q: u64| (0..2_000u64).filter(|&id| e.marks(q, id)).count() as f64 / 2_000.0;
        let low = frac(15_000);
        let high = frac(45_000);
        assert!(
            low < high,
            "marking must rise with queue depth: {low} vs {high}"
        );
        // Re-evaluation gives bit-identical decisions.
        assert_eq!(
            (0..500u64)
                .map(|id| e.marks(20_000, id))
                .collect::<Vec<_>>(),
            (0..500u64)
                .map(|id| e.marks(20_000, id))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "resume threshold")]
    fn pfc_spec_validated_on_install() {
        use crate::queue::Capacity;
        use crate::topology::TopologyBuilder;
        let mut b = TopologyBuilder::new();
        let a = b.add_node();
        let z = b.add_node();
        b.add_duplex(a, z, 1_000_000, Dur::from_millis(1), Capacity::Packets(100));
        let spec = SwitchSpec::shared(100_000).with_pfc(PfcSpec {
            xoff_bytes: 1_000,
            xon_bytes: 2_000, // invalid: xon > xoff
            watchdog: Dur::from_millis(10),
        });
        SwitchState::new(a, spec, &b.build());
    }
}
