//! Deterministic link fault injection — the chaos plane.
//!
//! An [`ImpairmentPlan`] installed on a link (via
//! [`crate::engine::Simulator::install_impairments`]) subjects every
//! packet crossing that link to a configurable fault model:
//!
//! * **Hard outages** — absolute down/up windows ([`OutageWindow`]).
//! * **Flapping** — alternating up/down periods with seeded random
//!   durations ([`Flapping`]).
//! * **Random loss** — Bernoulli or Gilbert–Elliott ([`LossModel`]).
//! * **Bit corruption** — the packet arrives damaged and is discarded at
//!   the link egress, as a failed checksum would be.
//! * **Duplication** — the packet is delivered twice.
//! * **Bounded reordering** — a random extra propagation delay up to a
//!   configured bound, letting later packets overtake.
//!
//! ## Determinism contract
//!
//! Every random draw comes from a per-link stream forked off the
//! experiment's root `SeedRng` (`fork_indexed("faults/link", link)`), so
//! installing a plan on one link never perturbs another link's stream,
//! and the whole impairment trace is bit-reproducible for any worker
//! count (`PHI_JOBS`). Flap edges are drawn *at install time* and
//! scheduled as engine events, so their randomness does not interleave
//! with per-packet draws. Per-packet draws happen in a fixed order
//! (loss → corruption → duplication → reordering) in link-egress event
//! order, which the engine's total `(time, seq)` event order makes
//! deterministic.
//!
//! The backpressure plane composes with this contract rather than
//! perturbing it: switch ECN marking (see [`crate::switch::EcnSpec`])
//! draws **nothing** from any `SeedRng` stream — its probabilistic band
//! hashes the packet id — and it happens at *admission* (enqueue),
//! while every per-packet fault draw happens at *egress* (end of
//! serialization), in the fixed order above. So installing an
//! [`ImpairmentPlan`] on a link whose upstream switch also marks ECN
//! neither consumes from nor reorders the link's fault stream: the draw
//! order is pinned, and the combined fault + marking trace is
//! bit-identical across reruns (asserted by
//! `ecn_marking_does_not_perturb_fault_draws` in this module's tests).
//!
//! ## Accounting
//!
//! Packets destroyed by the chaos plane are counted per link in
//! [`FaultStats`] and roll up into the engine's
//! [`crate::engine::PacketCensus`] so the extended conservation law still
//! closes — see [`crate::engine::PacketCensus::conserved`].

use phi_workload::SeedRng;

use crate::time::{Dur, Time};

/// One hard outage: the link goes down at `down` and heals at `up`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageWindow {
    /// When the link fails.
    pub down: Time,
    /// When the link heals.
    pub up: Time,
}

/// Seeded link flapping: alternating up/down periods between `start` and
/// `end`, with each period's duration drawn uniformly from
/// `[0.5, 1.5] ×` the configured mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flapping {
    /// First down edge.
    pub start: Time,
    /// No more down edges at or after this instant (the link is forced up).
    pub end: Time,
    /// Mean duration of a down period.
    pub mean_down: Dur,
    /// Mean duration of an up period between flaps.
    pub mean_up: Dur,
}

/// Random per-packet loss at the link egress.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LossModel {
    /// No random loss.
    #[default]
    None,
    /// Independent loss with probability `p` per packet.
    Bernoulli {
        /// Loss probability in `[0, 1]`.
        p: f64,
    },
    /// Two-state Gilbert–Elliott burst loss: the channel flips between a
    /// good and a bad state per packet, each state with its own loss
    /// probability.
    GilbertElliott {
        /// P(good → bad) per packet.
        p_enter_bad: f64,
        /// P(bad → good) per packet.
        p_exit_bad: f64,
        /// Loss probability while good (usually ~0).
        good_loss: f64,
        /// Loss probability while bad (usually high).
        bad_loss: f64,
    },
}

/// Bounded random reordering: with probability `p` a packet's propagation
/// is stretched by a uniform extra delay in `[0, max_extra]`, letting
/// packets behind it overtake.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reordering {
    /// Probability a packet is delayed.
    pub p: f64,
    /// Upper bound on the extra delay.
    pub max_extra: Dur,
}

/// What a downed link does with traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DownPolicy {
    /// Queued and arriving packets are destroyed (counted `blackholed`).
    #[default]
    Drop,
    /// Queued and arriving packets wait in the queue (subject to its
    /// normal capacity) and resume transmission when the link heals.
    /// Packets already serializing when the link fails are still lost.
    Park,
}

/// A per-link fault schedule plus per-packet impairment model.
///
/// Build with [`ImpairmentPlan::new`] and the chained setters, then
/// install with [`crate::engine::Simulator::install_impairments`]:
///
/// ```
/// use phi_sim::faults::{ImpairmentPlan, LossModel};
/// use phi_sim::time::{Dur, Time};
///
/// let plan = ImpairmentPlan::new()
///     .outage(Time::from_secs(60), Time::from_secs(100))
///     .loss(LossModel::Bernoulli { p: 0.01 })
///     .duplicate(0.001);
/// assert_eq!(plan.outages.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ImpairmentPlan {
    /// Hard outage windows, in ascending, non-overlapping order.
    pub outages: Vec<OutageWindow>,
    /// Optional flapping regime.
    pub flapping: Option<Flapping>,
    /// Random loss model.
    pub loss: LossModel,
    /// Per-packet corruption probability.
    pub corrupt: f64,
    /// Per-packet duplication probability.
    pub duplicate: f64,
    /// Optional bounded reordering.
    pub reorder: Option<Reordering>,
    /// What a downed link does with traffic.
    pub down_policy: DownPolicy,
}

impl ImpairmentPlan {
    /// An empty plan (no impairments).
    pub fn new() -> Self {
        ImpairmentPlan::default()
    }

    /// Add a hard outage window.
    ///
    /// # Panics
    /// Panics if the window is empty or overlaps/precedes an existing one.
    pub fn outage(mut self, down: Time, up: Time) -> Self {
        assert!(down < up, "outage window must have down < up");
        if let Some(last) = self.outages.last() {
            assert!(
                last.up <= down,
                "outage windows must be ordered and disjoint"
            );
        }
        self.outages.push(OutageWindow { down, up });
        self
    }

    /// Enable flapping between `start` and `end`.
    pub fn flap(mut self, start: Time, end: Time, mean_down: Dur, mean_up: Dur) -> Self {
        assert!(start < end, "flapping needs start < end");
        assert!(
            !mean_down.is_zero() && !mean_up.is_zero(),
            "flapping periods must be positive"
        );
        self.flapping = Some(Flapping {
            start,
            end,
            mean_down,
            mean_up,
        });
        self
    }

    /// Set the random loss model.
    pub fn loss(mut self, model: LossModel) -> Self {
        self.loss = model;
        self
    }

    /// Set the per-packet corruption probability.
    pub fn corrupt(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.corrupt = p;
        self
    }

    /// Set the per-packet duplication probability.
    pub fn duplicate(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.duplicate = p;
        self
    }

    /// Enable bounded reordering.
    pub fn reorder(mut self, p: f64, max_extra: Dur) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.reorder = Some(Reordering { p, max_extra });
        self
    }

    /// Set the down-link policy (drop or park).
    pub fn down_policy(mut self, policy: DownPolicy) -> Self {
        self.down_policy = policy;
        self
    }

    /// True if the plan can ever destroy, duplicate, or delay a packet.
    pub fn is_noop(&self) -> bool {
        self.outages.is_empty()
            && self.flapping.is_none()
            && matches!(self.loss, LossModel::None)
            && self.corrupt == 0.0
            && self.duplicate == 0.0
            && self.reorder.is_none()
    }
}

/// Per-link chaos-plane counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Packets destroyed by the fault plane: killed by a down link
    /// (queued, arriving, or mid-serialization) or by random loss.
    pub blackholed: u64,
    /// Packets corrupted in transit and discarded at the link egress.
    pub corrupted: u64,
    /// Extra packet copies created by duplication.
    pub duplicated: u64,
    /// Packets handed a reordering delay.
    pub reordered: u64,
    /// Down/up state transitions executed.
    pub edges: u64,
}

/// What the fault plane decided for one packet leaving the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EgressVerdict {
    /// Deliver; `extra` delays propagation, `duplicate` clones the packet.
    Forward {
        /// Extra propagation delay (reordering).
        extra: Dur,
        /// Deliver a second copy too.
        duplicate: bool,
    },
    /// Destroyed (down link or random loss).
    Blackhole,
    /// Corrupted in transit; discarded at egress.
    Corrupt,
}

/// Runtime fault state of one link: the plan, its private random stream,
/// and the counters.
#[derive(Debug)]
pub(crate) struct LinkFault {
    pub(crate) plan: ImpairmentPlan,
    rng: SeedRng,
    /// Current link state.
    pub(crate) up: bool,
    /// Gilbert–Elliott channel state.
    ge_bad: bool,
    pub(crate) stats: FaultStats,
}

impl LinkFault {
    /// Build the runtime state and the full edge schedule (time, up)
    /// derived from outage windows and flapping draws. All flapping
    /// randomness is consumed here, at install time.
    pub(crate) fn new(plan: ImpairmentPlan, mut rng: SeedRng) -> (Self, Vec<(Time, bool)>) {
        let mut edges: Vec<(Time, bool)> = Vec::new();
        for w in &plan.outages {
            edges.push((w.down, false));
            edges.push((w.up, true));
        }
        if let Some(f) = plan.flapping {
            let mut t = f.start;
            let mut up = true;
            while t < f.end {
                edges.push((t, !up));
                up = !up;
                let mean = if up { f.mean_up } else { f.mean_down };
                let frac = rng.range_f64(0.5, 1.5);
                t += mean.mul_f64(frac).max(Dur::from_nanos(1));
            }
            // Force the link up when the flapping regime ends (redundant
            // up edges are no-ops at apply time).
            edges.push((f.end, true));
        }
        edges.sort_unstable();
        (
            LinkFault {
                plan,
                rng,
                up: true,
                ge_bad: false,
                stats: FaultStats::default(),
            },
            edges,
        )
    }

    /// Apply a scheduled state edge. Returns false if it was redundant.
    pub(crate) fn apply_edge(&mut self, up: bool) -> bool {
        if self.up == up {
            return false;
        }
        self.up = up;
        self.stats.edges += 1;
        true
    }

    /// Decide the fate of one packet leaving the link. Draw order is
    /// fixed (loss → corrupt → duplicate → reorder) so streams are
    /// reproducible; draws are only consumed for enabled features.
    pub(crate) fn egress(&mut self) -> EgressVerdict {
        if !self.up {
            self.stats.blackholed += 1;
            return EgressVerdict::Blackhole;
        }
        let lost = match self.plan.loss {
            LossModel::None => false,
            LossModel::Bernoulli { p } => self.rng.chance(p),
            LossModel::GilbertElliott {
                p_enter_bad,
                p_exit_bad,
                good_loss,
                bad_loss,
            } => {
                let flip = self
                    .rng
                    .chance(if self.ge_bad { p_exit_bad } else { p_enter_bad });
                if flip {
                    self.ge_bad = !self.ge_bad;
                }
                let p = if self.ge_bad { bad_loss } else { good_loss };
                self.rng.chance(p)
            }
        };
        if lost {
            self.stats.blackholed += 1;
            return EgressVerdict::Blackhole;
        }
        if self.plan.corrupt > 0.0 && self.rng.chance(self.plan.corrupt) {
            self.stats.corrupted += 1;
            return EgressVerdict::Corrupt;
        }
        let duplicate = self.plan.duplicate > 0.0 && self.rng.chance(self.plan.duplicate);
        if duplicate {
            self.stats.duplicated += 1;
        }
        let mut extra = Dur::ZERO;
        if let Some(r) = self.plan.reorder {
            if r.p > 0.0 && self.rng.chance(r.p) && !r.max_extra.is_zero() {
                extra = Dur::from_nanos(self.rng.range_u64(0, r.max_extra.as_nanos() + 1));
                self.stats.reordered += 1;
            }
        }
        EgressVerdict::Forward { extra, duplicate }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SeedRng {
        SeedRng::new(7).fork_indexed("faults/link", 0)
    }

    #[test]
    fn outage_edges_scheduled_in_order() {
        let plan = ImpairmentPlan::new()
            .outage(Time::from_secs(1), Time::from_secs(2))
            .outage(Time::from_secs(5), Time::from_secs(6));
        let (_, edges) = LinkFault::new(plan, rng());
        assert_eq!(
            edges,
            vec![
                (Time::from_secs(1), false),
                (Time::from_secs(2), true),
                (Time::from_secs(5), false),
                (Time::from_secs(6), true),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "ordered and disjoint")]
    fn overlapping_outages_rejected() {
        let _ = ImpairmentPlan::new()
            .outage(Time::from_secs(1), Time::from_secs(3))
            .outage(Time::from_secs(2), Time::from_secs(4));
    }

    #[test]
    fn flap_edges_alternate_and_end_up() {
        let plan = ImpairmentPlan::new().flap(
            Time::from_secs(1),
            Time::from_secs(10),
            Dur::from_millis(500),
            Dur::from_millis(500),
        );
        let (_, edges) = LinkFault::new(plan, rng());
        assert!(edges.len() >= 4, "expected several flaps: {edges:?}");
        assert_eq!(edges[0], (Time::from_secs(1), false));
        let last = edges.last().unwrap();
        assert_eq!(*last, (Time::from_secs(10), true));
        assert!(edges.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn flap_edges_deterministic_per_seed() {
        let plan = || {
            ImpairmentPlan::new().flap(
                Time::ZERO,
                Time::from_secs(30),
                Dur::from_millis(200),
                Dur::from_millis(800),
            )
        };
        let (_, a) = LinkFault::new(plan(), rng());
        let (_, b) = LinkFault::new(plan(), rng());
        assert_eq!(a, b);
        let other = SeedRng::new(8).fork_indexed("faults/link", 0);
        let (_, c) = LinkFault::new(plan(), other);
        assert_ne!(a, c, "different seeds should flap differently");
    }

    #[test]
    fn bernoulli_loss_rate_matches() {
        let plan = ImpairmentPlan::new().loss(LossModel::Bernoulli { p: 0.2 });
        let (mut f, _) = LinkFault::new(plan, rng());
        let n: u32 = 20_000;
        let mut lost: u32 = 0;
        for _ in 0..n {
            if f.egress() == EgressVerdict::Blackhole {
                lost += 1;
            }
        }
        let frac = f64::from(lost) / f64::from(n);
        assert!((frac - 0.2).abs() < 0.02, "loss frac {frac}");
        assert_eq!(u64::from(lost), f.stats.blackholed);
    }

    #[test]
    fn gilbert_elliott_loss_is_bursty() {
        let plan = ImpairmentPlan::new().loss(LossModel::GilbertElliott {
            p_enter_bad: 0.01,
            p_exit_bad: 0.2,
            good_loss: 0.0,
            bad_loss: 0.8,
        });
        let (mut f, _) = LinkFault::new(plan, rng());
        let outcomes: Vec<bool> = (0..50_000)
            .map(|_| f.egress() == EgressVerdict::Blackhole)
            .collect();
        let losses = outcomes.iter().filter(|&&l| l).count();
        assert!(losses > 500, "GE model never entered the bad state");
        // Burstiness: P(loss | previous loss) far above the marginal rate.
        let pairs = outcomes.windows(2).filter(|w| w[0]).count();
        let both = outcomes.windows(2).filter(|w| w[0] && w[1]).count();
        let cond = both as f64 / pairs as f64;
        let marginal = losses as f64 / outcomes.len() as f64;
        assert!(
            cond > 2.0 * marginal,
            "losses not bursty: P(loss|loss)={cond:.3} vs marginal {marginal:.3}"
        );
    }

    #[test]
    fn downed_link_blackholes_everything() {
        let plan = ImpairmentPlan::new().outage(Time::ZERO, Time::from_secs(1));
        let (mut f, _) = LinkFault::new(plan, rng());
        assert!(f.apply_edge(false));
        assert!(!f.apply_edge(false), "redundant edge must be a no-op");
        for _ in 0..10 {
            assert_eq!(f.egress(), EgressVerdict::Blackhole);
        }
        assert!(f.apply_edge(true));
        assert!(matches!(f.egress(), EgressVerdict::Forward { .. }));
        assert_eq!(f.stats.blackholed, 10);
        assert_eq!(f.stats.edges, 2);
    }

    #[test]
    fn corrupt_duplicate_reorder_draws_accounted() {
        let plan = ImpairmentPlan::new()
            .corrupt(0.1)
            .duplicate(0.1)
            .reorder(0.5, Dur::from_millis(5));
        let (mut f, _) = LinkFault::new(plan, rng());
        let mut corrupted = 0u64;
        let mut duplicated = 0u64;
        let mut reordered = 0u64;
        for _ in 0..10_000 {
            match f.egress() {
                EgressVerdict::Corrupt => corrupted += 1,
                EgressVerdict::Forward { extra, duplicate } => {
                    if duplicate {
                        duplicated += 1;
                    }
                    if !extra.is_zero() {
                        assert!(extra <= Dur::from_millis(5));
                        reordered += 1;
                    }
                }
                EgressVerdict::Blackhole => panic!("no loss configured"),
            }
        }
        assert_eq!(f.stats.corrupted, corrupted);
        assert_eq!(f.stats.duplicated, duplicated);
        assert!(corrupted > 500 && duplicated > 500 && reordered > 2000);
        assert!(f.stats.reordered >= reordered);
    }

    #[test]
    fn noop_plan_detected() {
        assert!(ImpairmentPlan::new().is_noop());
        assert!(!ImpairmentPlan::new().corrupt(0.1).is_noop());
    }

    /// The backpressure/fault composition pin from the module docs: an
    /// impaired link whose upstream switch also marks ECN has a fixed
    /// per-packet draw order (marking hashes packet ids at admission,
    /// fault draws fire at egress), so reruns are bit-identical — and
    /// enabling the marking does not shift the link's fault stream at
    /// all.
    #[test]
    fn ecn_marking_does_not_perturb_fault_draws() {
        use std::any::Any;

        use crate::engine::{packet_to, Agent, Ctx, Simulator};
        use crate::packet::{Flags, FlowId, NodeId, Packet};
        use crate::queue::Capacity;
        use crate::switch::{EcnSpec, SwitchSpec};
        use crate::topology::TopologyBuilder;
        use crate::trace::SharedTraceCollector;

        /// Blasts ECT-flagged packets so switch ECN has something to mark.
        struct EctBlaster {
            peer: NodeId,
            remaining: u32,
        }
        impl Agent for EctBlaster {
            fn start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer_after(Dur::ZERO, 0);
            }
            fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
            fn on_timer(&mut self, _token: u64, ctx: &mut Ctx<'_>) {
                if self.remaining == 0 {
                    return;
                }
                self.remaining -= 1;
                let mut p = packet_to(self.peer, 80, 1, FlowId(9), 1_000);
                p.flags = Flags::ECT;
                ctx.send(p);
                ctx.set_timer_after(Dur::from_micros(200), 0);
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        /// Swallows arrivals.
        struct Null;
        impl Agent for Null {
            fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        // a → r → z; the r→z hop is slow (queue builds at r, exercising
        // the ECN ramp) and impaired (loss, duplication, reordering).
        let run = |ecn: bool| {
            let mut b = TopologyBuilder::new();
            let a = b.add_node();
            let r = b.add_node();
            let z = b.add_node();
            b.add_duplex(
                a,
                r,
                100_000_000,
                Dur::from_micros(50),
                Capacity::Packets(1_000),
            );
            let (rz, _) = b.add_duplex(
                r,
                z,
                2_000_000,
                Dur::from_millis(1),
                Capacity::Packets(1_000),
            );
            let mut sim = Simulator::new(b.build());
            let mut spec = SwitchSpec::shared(200_000);
            if ecn {
                spec = spec.with_ecn(EcnSpec {
                    min_bytes: 2_000,
                    max_bytes: 40_000,
                });
            }
            sim.install_switch(r, spec);
            let plan = ImpairmentPlan::new()
                .loss(LossModel::Bernoulli { p: 0.05 })
                .duplicate(0.03)
                .reorder(0.2, Dur::from_millis(2));
            sim.install_impairments(rz, plan, &SeedRng::new(4242));
            let (tracer, events) = SharedTraceCollector::new();
            sim.set_tracer(tracer);
            sim.add_agent(
                a,
                1,
                Box::new(EctBlaster {
                    peer: z,
                    remaining: 400,
                }),
            );
            sim.add_agent(z, 80, Box::new(Null));
            sim.run_until(Time::from_secs(2));
            let trace: Vec<String> = events
                .lock()
                .expect("trace buffer")
                .iter()
                .map(|ev| format!("{ev:?}"))
                .collect();
            (
                trace,
                sim.packet_census(),
                sim.fault_stats(rz),
                sim.switch_stats(r),
            )
        };

        // Both planes actually engaged.
        let (trace, census, faults, switch) = run(true);
        assert!(switch.ecn_marked > 0, "the ramp must mark: {switch:?}");
        assert!(faults.blackholed > 0 && faults.duplicated > 0, "{faults:?}");
        assert!(census.conserved(), "census must close: {census:?}");

        // Rerun: bit-identical trace and accounting.
        let (trace2, census2, faults2, switch2) = run(true);
        assert_eq!(trace, trace2, "rerun must be bit-identical");
        assert_eq!(census, census2);
        assert_eq!(faults, faults2);
        assert_eq!(switch, switch2);

        // Marking consumes nothing from the fault stream: the same
        // packets meet the same draws with ECN off.
        let (_, census3, faults3, switch3) = run(false);
        assert_eq!(switch3.ecn_marked, 0);
        assert_eq!(faults, faults3, "ECN marking shifted the fault stream");
        assert_eq!(census.delivered, census3.delivered);
        assert_eq!(census.blackholed, census3.blackholed);
    }
}
