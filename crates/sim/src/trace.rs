//! Packet-level tracing, ns-2 style.
//!
//! A [`Tracer`] installed on the simulator observes every queue
//! admission, drop, transmission, and delivery. [`TraceWriter`] renders
//! the classic ns-2 trace line format (`+`/`d`/`-`/`r` operations) so
//! traces can be eyeballed or diffed; [`TraceCollector`] buffers events
//! for programmatic assertions in tests.

use std::fmt::Write as _;

use crate::packet::{LinkId, NodeId, Packet};
use crate::time::Time;

/// One observable packet event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// Packet admitted to a link queue.
    Enqueue,
    /// Packet dropped at a link queue.
    Drop,
    /// Packet finished serializing onto the link (dequeued).
    Transmit,
    /// Packet delivered to its destination node.
    Deliver,
    /// Packet destroyed by the fault plane (down link or random loss).
    Blackhole,
    /// Packet corrupted in transit and discarded at the link egress.
    Corrupt,
    /// An extra copy of the packet was created by the fault plane.
    Duplicate,
    /// Packet destroyed by a PFC pause-storm watchdog drain.
    PfcDrop,
}

/// A traced event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub at: Time,
    /// What happened.
    pub op: TraceOp,
    /// The link involved (`None` for deliveries, which happen at nodes).
    pub link: Option<LinkId>,
    /// The node involved (deliveries only).
    pub node: Option<NodeId>,
    /// Packet identity fields (copied out; the packet itself moves on).
    pub packet_id: u64,
    /// Flow id.
    pub flow: u64,
    /// Sequence number.
    pub seq: u64,
    /// Wire size, bytes.
    pub size: u32,
    /// True for ACK packets.
    pub is_ack: bool,
}

impl TraceEvent {
    pub(crate) fn new(
        at: Time,
        op: TraceOp,
        link: Option<LinkId>,
        node: Option<NodeId>,
        pkt: &Packet,
    ) -> Self {
        TraceEvent {
            at,
            op,
            link,
            node,
            packet_id: pkt.id,
            flow: pkt.flow.0,
            seq: pkt.seq,
            size: pkt.size,
            is_ack: pkt.is_ack(),
        }
    }
}

impl TraceEvent {
    /// Content-derived total-order key, used by the parallel engine to
    /// merge per-domain trace buffers into one canonical sequence.
    ///
    /// The key covers *every* field, so two events comparing equal are
    /// byte-identical records (this happens only for fault-plane
    /// duplicate deliveries) and the merged order is independent of how
    /// the run was partitioned into domains.
    #[allow(clippy::type_complexity)]
    pub fn canonical_key(&self) -> (Time, u64, u8, u32, u32, u64, u64, u32, bool) {
        let op = match self.op {
            TraceOp::Enqueue => 0u8,
            TraceOp::Drop => 1,
            TraceOp::Transmit => 2,
            TraceOp::Deliver => 3,
            TraceOp::Blackhole => 4,
            TraceOp::Corrupt => 5,
            TraceOp::Duplicate => 6,
            TraceOp::PfcDrop => 7,
        };
        (
            self.at,
            self.packet_id,
            op,
            self.link.map_or(u32::MAX, |l| l.0),
            self.node.map_or(u32::MAX, |n| n.0),
            self.flow,
            self.seq,
            self.size,
            self.is_ack,
        )
    }
}

/// Observes simulator packet events.
///
/// `Send` because the parallel engine moves per-domain tracers onto
/// worker threads; tracers are still called synchronously from exactly
/// one event loop at a time.
pub trait Tracer: Send {
    /// One event; called synchronously from the event loop.
    fn event(&mut self, ev: &TraceEvent);
}

/// Buffers every event (tests, small runs — this grows unboundedly).
#[derive(Debug, Default)]
pub struct TraceCollector {
    /// The recorded events, in simulation order.
    pub events: Vec<TraceEvent>,
}

impl Tracer for TraceCollector {
    fn event(&mut self, ev: &TraceEvent) {
        self.events.push(ev.clone());
    }
}

/// A collector whose buffer is shared with the caller, so events can be
/// inspected while (or after) the simulator owns the tracer half.
///
/// The buffer is an `Arc<Mutex<_>>` (rather than `Rc<RefCell<_>>`) so the
/// tracer half can ride a domain simulator onto a parallel-engine worker
/// thread; the lock is uncontended in serial runs.
#[derive(Debug, Default)]
pub struct SharedTraceCollector {
    events: std::sync::Arc<std::sync::Mutex<Vec<TraceEvent>>>,
}

impl SharedTraceCollector {
    /// Returns the tracer to install and the shared buffer to read.
    #[allow(clippy::type_complexity, clippy::new_ret_no_self)]
    pub fn new() -> (
        Box<dyn Tracer>,
        std::sync::Arc<std::sync::Mutex<Vec<TraceEvent>>>,
    ) {
        let events = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        (
            Box::new(SharedTraceCollector {
                events: events.clone(),
            }),
            events,
        )
    }
}

impl Tracer for SharedTraceCollector {
    fn event(&mut self, ev: &TraceEvent) {
        self.events.lock().expect("trace buffer").push(ev.clone());
    }
}

/// Renders ns-2-style trace lines into a growing string:
///
/// ```text
/// + 1.234567 l0 f3 seq 41 1500 tcp
/// d 1.234567 l0 f3 seq 42 1500 tcp
/// - 1.235367 l0 f3 seq 41 1500 tcp
/// r 1.310367 n5 f3 seq 41 1500 tcp
/// ```
#[derive(Debug, Default)]
pub struct TraceWriter {
    out: String,
}

impl TraceWriter {
    /// An empty writer.
    pub fn new() -> Self {
        TraceWriter::default()
    }

    /// The rendered trace so far.
    pub fn as_str(&self) -> &str {
        &self.out
    }

    /// Take the rendered trace.
    pub fn into_string(self) -> String {
        self.out
    }
}

impl Tracer for TraceWriter {
    fn event(&mut self, ev: &TraceEvent) {
        let op = match ev.op {
            TraceOp::Enqueue => '+',
            TraceOp::Drop => 'd',
            TraceOp::Transmit => '-',
            TraceOp::Deliver => 'r',
            TraceOp::Blackhole => 'x',
            TraceOp::Corrupt => 'c',
            TraceOp::Duplicate => '2',
            TraceOp::PfcDrop => 'w',
        };
        let place = match (ev.link, ev.node) {
            (Some(l), _) => format!("{l}"),
            (None, Some(n)) => format!("{n}"),
            _ => "?".into(),
        };
        let kind = if ev.is_ack { "ack" } else { "tcp" };
        let _ = writeln!(
            self.out,
            "{op} {:.6} {place} f{} seq {} {} {kind}",
            ev.at.as_secs_f64(),
            ev.flow,
            ev.seq,
            ev.size,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Flags, FlowId, SackBlocks};

    fn pkt(id: u64, ack: bool) -> Packet {
        Packet {
            id,
            flow: FlowId(3),
            src: NodeId(0),
            dst: NodeId(1),
            src_port: 1,
            dst_port: 2,
            seq: 41,
            ack: 0,
            flags: if ack { Flags::ACK } else { Flags::empty() },
            size: 1500,
            sent_at: Time::ZERO,
            echo: Time::ZERO,
            sack: SackBlocks::EMPTY,
        }
    }

    #[test]
    fn writer_renders_ns2_style_lines() {
        let mut w = TraceWriter::new();
        let t = Time::from_millis(1_234);
        w.event(&TraceEvent::new(
            t,
            TraceOp::Enqueue,
            Some(LinkId(0)),
            None,
            &pkt(7, false),
        ));
        w.event(&TraceEvent::new(
            t,
            TraceOp::Deliver,
            None,
            Some(NodeId(5)),
            &pkt(7, true),
        ));
        let lines: Vec<&str> = w.as_str().lines().collect();
        assert_eq!(lines[0], "+ 1.234000 l0 f3 seq 41 1500 tcp");
        assert_eq!(lines[1], "r 1.234000 n5 f3 seq 41 1500 ack");
    }

    #[test]
    fn collector_buffers_in_order() {
        let mut c = TraceCollector::default();
        for i in 0..5 {
            c.event(&TraceEvent::new(
                Time::from_millis(i),
                TraceOp::Transmit,
                Some(LinkId(1)),
                None,
                &pkt(i, false),
            ));
        }
        assert_eq!(c.events.len(), 5);
        assert!(c.events.windows(2).all(|w| w[0].at <= w[1].at));
    }
}
