//! # Phi — rethinking networking for "five computers"
//!
//! A complete Rust reproduction of *Rethinking Networking for "Five
//! Computers"* (Renganathan, Padmanabhan & Nambi, HotNets-XVII 2018):
//! information sharing and coordination across the senders of a large
//! cloud provider, together with every substrate the paper's evaluation
//! rests on.
//!
//! This facade crate re-exports the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`sim`] | deterministic packet-level network simulator (the ns-2 stand-in) |
//! | [`workload`] | seeded RNG streams, distributions, the on/off traffic model |
//! | [`tcp`] | TCP transport: Cubic, NewReno, sender/receiver agents, loss recovery |
//! | [`remy`] | learned congestion control (TCP ex Machina) + offline trainer + Phi's shared-utilization extension |
//! | [`core`] | the Phi system: congestion context, context server (in-proc and over TCP), parameter optimizer, prioritization, informed adaptation |
//! | [`telemetry`] | IPFIX-style sampled flow export and the §2.1 path-sharing analysis |
//! | [`diagnosis`] | request-volume anomaly detection and outage localization (Figure 5) |
//! | [`predict`] | per-path performance prediction: download times and VoIP MOS (§3.5) |
//!
//! ## Quickstart
//!
//! Run default Cubic and Phi-tuned Cubic over the paper's dumbbell and
//! compare the power metric:
//!
//! ```
//! use phi::core::{provision_cubic, run_experiment, score, ExperimentSpec, Objective};
//! use phi::sim::time::Dur;
//! use phi::tcp::CubicParams;
//! use phi::workload::OnOffConfig;
//!
//! let spec = ExperimentSpec::new(4, OnOffConfig::fig2(), Dur::from_secs(10), 42);
//! let default = run_experiment(&spec, provision_cubic(CubicParams::default()));
//! let tuned = run_experiment(&spec, provision_cubic(CubicParams::tuned(32.0, 64.0, 0.2)));
//! let s = |r: &phi::core::RunResult| score(Objective::PowerLoss, &r.metrics, spec.base_rtt_ms());
//! // Both runs saw the identical workload; only the parameters differ.
//! assert!(s(&tuned).is_finite() && s(&default).is_finite());
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! harnesses that regenerate every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use phi_core as core;
pub use phi_diagnosis as diagnosis;
pub use phi_predict as predict;
pub use phi_remy as remy;
pub use phi_sim as sim;
pub use phi_tcp as tcp;
pub use phi_telemetry as telemetry;
pub use phi_workload as workload;
