//! `phi` — command-line front end for the Phi library.
//!
//! ```text
//! phi serve  [--addr 127.0.0.1:7777] [--capacity-mbps 1000] [--window-secs 10]
//!     Run a context server until Ctrl-C (or forever). Senders connect with
//!     the wire protocol in `phi::core::wire` / `phi::core::ContextClient`.
//!
//! phi lookup --addr HOST:PORT [--path N]
//!     One context lookup against a running server (prints u, q, n).
//!
//! phi top    --addr HOST:PORT [--limit 10]
//!     The busiest paths the server knows about, like `top` for the
//!     network weather.
//!
//! phi report --addr HOST:PORT [--path N] --bytes B --duration-ms D
//!            [--mean-rtt-ms R] [--min-rtt-ms M]
//!     Report one finished connection to a running server.
//!
//! phi demo   [--senders 8] [--seconds 30] [--scheme default|tuned|phi]
//!            [--seed 42] [--queue droptail|red]
//!     Run the Figure 1 dumbbell with the chosen provisioning and print
//!     the paper's metrics.
//! ```
//!
//! Argument parsing is deliberately dependency-free (`--key value` pairs).

use std::collections::HashMap;
use std::process::ExitCode;

use phi::core::harness::BottleneckQueue;
use phi::core::{
    provision_cubic, provision_cubic_phi, run_experiment, score, sync_store, ContextClient,
    ContextServer, ContextStore, ExperimentSpec, FlowSummary, Objective, PathKey, PolicyTable,
    StoreConfig,
};
use phi::sim::time::Dur;
use phi::tcp::CubicParams;
use phi::workload::OnOffConfig;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "serve" => cmd_serve(&opts),
        "lookup" => cmd_lookup(&opts),
        "top" => cmd_top(&opts),
        "report" => cmd_report(&opts),
        "demo" => cmd_demo(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  phi serve  [--addr 127.0.0.1:7777] [--capacity-mbps 1000] [--window-secs 10]
  phi lookup --addr HOST:PORT [--path 1]
  phi top    --addr HOST:PORT [--limit 10]
  phi report --addr HOST:PORT [--path 1] --bytes B --duration-ms D
             [--mean-rtt-ms R] [--min-rtt-ms M]
  phi demo   [--senders 8] [--seconds 30] [--scheme default|tuned|phi]
             [--seed 42] [--queue droptail|red]";

type Opts = HashMap<String, String>;

fn parse_opts(rest: &[String]) -> Result<Opts, String> {
    let mut opts = HashMap::new();
    let mut it = rest.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected --option, got `{key}`"));
        };
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        opts.insert(name.to_string(), value.clone());
    }
    Ok(opts)
}

fn get_parse<T: std::str::FromStr>(opts: &Opts, key: &str, default: T) -> Result<T, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key}: cannot parse `{v}`")),
    }
}

fn cmd_serve(opts: &Opts) -> Result<(), String> {
    let addr = opts
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7777".into());
    let capacity_mbps: f64 = get_parse(opts, "capacity-mbps", 1000.0)?;
    let window_secs: u64 = get_parse(opts, "window-secs", 10)?;

    let store = sync_store(ContextStore::new(StoreConfig {
        window_ns: window_secs * 1_000_000_000,
        capacity_bps: Some(capacity_mbps * 1e6),
        queue_alpha: 0.3,
    }));
    let server = ContextServer::start(addr.as_str(), store).map_err(|e| e.to_string())?;
    println!(
        "phi context server on {} (capacity {capacity_mbps} Mbit/s, window {window_secs} s)",
        server.addr()
    );
    println!("press Ctrl-C to stop");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn cmd_lookup(opts: &Opts) -> Result<(), String> {
    let addr = opts.get("addr").ok_or("--addr is required")?;
    let path: u64 = get_parse(opts, "path", 1)?;
    let mut client = ContextClient::connect(addr.as_str()).map_err(|e| e.to_string())?;
    let ctx = client.lookup(PathKey(path)).map_err(|e| e.to_string())?;
    println!(
        "path {path}: utilization {:.3}, queue {:.2} ms, competing {}",
        ctx.utilization, ctx.queue_ms, ctx.competing
    );
    Ok(())
}

fn cmd_top(opts: &Opts) -> Result<(), String> {
    let addr = opts.get("addr").ok_or("--addr is required")?;
    let limit: u16 = get_parse(opts, "limit", 10)?;
    let mut client = ContextClient::connect(addr.as_str()).map_err(|e| e.to_string())?;
    let paths = client.snapshot(limit).map_err(|e| e.to_string())?;
    if paths.is_empty() {
        println!("no paths known yet");
        return Ok(());
    }
    println!(
        "{:<20} {:>12} {:>12} {:>10}",
        "path", "utilization", "queue (ms)", "competing"
    );
    for (key, ctx) in paths {
        println!(
            "{:<20} {:>12.3} {:>12.2} {:>10}",
            key.0, ctx.utilization, ctx.queue_ms, ctx.competing
        );
    }
    Ok(())
}

fn cmd_report(opts: &Opts) -> Result<(), String> {
    let addr = opts.get("addr").ok_or("--addr is required")?;
    let path: u64 = get_parse(opts, "path", 1)?;
    let bytes: u64 = get_parse(opts, "bytes", 0)?;
    if bytes == 0 {
        return Err("--bytes is required".into());
    }
    let duration_ms: u64 = get_parse(opts, "duration-ms", 0)?;
    if duration_ms == 0 {
        return Err("--duration-ms is required".into());
    }
    let mean_rtt_ms: f64 = get_parse(opts, "mean-rtt-ms", 0.0)?;
    let min_rtt_ms: f64 = get_parse(opts, "min-rtt-ms", 0.0)?;
    let mut client = ContextClient::connect(addr.as_str()).map_err(|e| e.to_string())?;
    client
        .report(
            PathKey(path),
            FlowSummary {
                bytes,
                duration_ns: duration_ms * 1_000_000,
                mean_rtt_ms,
                min_rtt_ms,
                retransmits: get_parse(opts, "retransmits", 0u32)?,
                timeouts: get_parse(opts, "timeouts", 0u32)?,
            },
        )
        .map_err(|e| e.to_string())?;
    println!("reported {bytes} bytes over {duration_ms} ms on path {path}");
    Ok(())
}

fn cmd_demo(opts: &Opts) -> Result<(), String> {
    let senders: usize = get_parse(opts, "senders", 8)?;
    let seconds: u64 = get_parse(opts, "seconds", 30)?;
    let seed: u64 = get_parse(opts, "seed", 42)?;
    let scheme = opts
        .get("scheme")
        .map(String::as_str)
        .unwrap_or("phi")
        .to_string();
    let queue = match opts.get("queue").map(String::as_str).unwrap_or("droptail") {
        "droptail" => BottleneckQueue::DropTail,
        "red" => BottleneckQueue::Red,
        other => return Err(format!("--queue: unknown discipline `{other}`")),
    };

    let mut spec = ExperimentSpec::new(senders, OnOffConfig::fig2(), Dur::from_secs(seconds), seed);
    spec.queue = queue;
    println!(
        "dumbbell: {senders} senders, {} Mbit/s, {} ms RTT, {seconds}s, scheme `{scheme}`, queue {queue:?}",
        spec.dumbbell.bottleneck_bps / 1_000_000,
        spec.base_rtt_ms()
    );

    let result = match scheme.as_str() {
        "default" => run_experiment(&spec, provision_cubic(CubicParams::default())),
        "tuned" => run_experiment(&spec, provision_cubic(CubicParams::tuned(32.0, 64.0, 0.2))),
        "phi" => run_experiment(&spec, provision_cubic_phi(PolicyTable::reference())),
        other => return Err(format!("--scheme: unknown scheme `{other}`")),
    };
    let m = &result.metrics;
    println!(
        "throughput {:.2} Mbit/s | queueing {:.2} ms | loss {:.3}% | util {:.2} | flows {} | P_l {:.4}",
        m.throughput_mbps,
        m.queueing_delay_ms,
        m.loss_rate * 100.0,
        m.utilization,
        m.flows_completed,
        score(Objective::PowerLoss, m, spec.base_rtt_ms()),
    );
    if scheme == "phi" {
        let (lookups, reports) = result.store.traffic_counters(phi::core::DUMBBELL_PATH);
        println!("context store: {lookups} lookups, {reports} reports");
    }
    Ok(())
}
